//! The `ja batch` grid-config format: a line-oriented `key = value` TOML
//! subset describing a [`ScenarioGrid`].
//!
//! ```text
//! # Axes accumulate: repeat a key to add a value, the grid is the
//! # cartesian product of all axes (empty axes fall back to defaults).
//! material   = date2006                            # see `ja help batch`
//! backend    = direct                              # direct|systemc|ams|time-domain|all|timeless
//! dh_max     = 10                                  # one model config per value (A/m)
//! excitation = major peak=10000 step=100 cycles=1  # triangular major loop
//! excitation = fig1 step=50                        # paper's Fig. 1 stimulus
//! excitation = biased bias=1000 amplitude=500 cycles=1 step=10
//! excitation = circuit source=sine amplitude=30 frequency=50 r=1 \
//!              turns=200 area=1e-4 path=0.1 t_end=0.04 dt=5e-5 control=fixed
//! ```
//!
//! (`excitation = circuit` takes its parameters on one line; the backslash
//! continuation above is for readability only.)
//!
//! `#` starts a comment, blank lines are ignored.  Only axes live in the
//! file; execution knobs (`--workers`, `--fail-fast`) stay on the command
//! line so the same grid can be run under different policies.

use std::collections::BTreeMap;

use hdl_models::scenario::ScenarioGrid;
use ja_hysteresis::config::JaConfig;

use crate::common::{
    backend_set_by_name, circuit_excitation, config_name, material_by_name, CircuitSpecArgs,
    NamedExcitation,
};
use crate::CliError;

/// Parses grid-config text into a [`ScenarioGrid`].
///
/// # Errors
///
/// Usage error naming the offending line for unknown keys, malformed
/// values, unknown excitation kinds/parameters or invalid `dh_max`.
pub fn parse_grid(text: &str) -> Result<ScenarioGrid, CliError> {
    let mut grid = ScenarioGrid::new();
    for (lineno, line) in crate::common::config_lines(text) {
        let at = |message: String| CliError::usage(format!("grid config line {lineno}: {message}"));
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| at(format!("expected `key = value`, got `{line}`")))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "material" => {
                let params = material_by_name(value).map_err(|err| at(err.message))?;
                grid = grid.material(value, params);
            }
            "backend" => {
                let backends = backend_set_by_name(value).map_err(|err| at(err.message))?;
                grid = grid.backends(backends);
            }
            "dh_max" => {
                let dh_max: f64 = value
                    .parse()
                    .map_err(|_| at(format!("`{value}` is not a number")))?;
                let config = JaConfig::default().with_dh_max(dh_max);
                config.validate().map_err(|err| at(err.to_string()))?;
                grid = grid.config(config_name(dh_max), config);
            }
            "excitation" => {
                let named = parse_excitation(value).map_err(|err| at(err.message))?;
                grid = grid.excitation(named.name, named.excitation);
            }
            other => {
                return Err(at(format!(
                    "unknown key `{other}` (expected material | backend | dh_max | excitation)"
                )))
            }
        }
    }
    Ok(grid)
}

/// Parses an excitation spec: a kind token followed by `key=value`
/// parameters, e.g. `major peak=10000 step=100 cycles=1`.  Also the
/// backbone of the serve API's excitation objects (`serve_api` renders
/// them to this exact format), so the two surfaces can never drift on
/// parameter names, defaults, or scenario-key naming.
pub(crate) fn parse_excitation(spec: &str) -> Result<NamedExcitation, CliError> {
    let mut tokens = spec.split_whitespace();
    let kind = tokens
        .next()
        .ok_or_else(|| CliError::usage("empty excitation spec".to_owned()))?;
    let mut params: BTreeMap<&str, &str> = BTreeMap::new();
    for token in tokens {
        let (key, value) = token.split_once('=').ok_or_else(|| {
            CliError::usage(format!("excitation parameter `{token}` is not `key=value`"))
        })?;
        if params.insert(key, value).is_some() {
            return Err(CliError::usage(format!(
                "excitation parameter `{key}` given twice"
            )));
        }
    }
    fn f64_param(
        params: &mut BTreeMap<&str, &str>,
        name: &str,
        default: f64,
    ) -> Result<f64, CliError> {
        match params.remove(name) {
            None => Ok(default),
            Some(text) => text.parse::<f64>().map_err(|_| {
                CliError::usage(format!(
                    "excitation parameter `{name}={text}` is not a number"
                ))
            }),
        }
    }
    fn optional_f64_param(
        params: &mut BTreeMap<&str, &str>,
        name: &str,
    ) -> Result<Option<f64>, CliError> {
        match params.remove(name) {
            None => Ok(None),
            Some(text) => text.parse::<f64>().map(Some).map_err(|_| {
                CliError::usage(format!(
                    "excitation parameter `{name}={text}` is not a number"
                ))
            }),
        }
    }
    // Cycle counts are whole numbers: parse as usize directly so `cycles=1.9`
    // is rejected instead of silently truncated (and `cycles=1e20` instead of
    // saturating into a capacity-overflow panic downstream).
    fn cycles_param(params: &mut BTreeMap<&str, &str>) -> Result<usize, CliError> {
        match params.remove("cycles") {
            None => Ok(1),
            Some(text) => text.parse::<usize>().map_err(|_| {
                CliError::usage(format!(
                    "excitation parameter `cycles={text}` is not an unsigned integer"
                ))
            }),
        }
    }
    let named = match kind {
        "major" => {
            let cycles = cycles_param(&mut params)?;
            let peak = f64_param(&mut params, "peak", 10_000.0)?;
            let step = f64_param(&mut params, "step", 10.0)?;
            NamedExcitation::major(peak, step, cycles)?
        }
        "fig1" => {
            let step = f64_param(&mut params, "step", 10.0)?;
            NamedExcitation::fig1(step)?
        }
        "biased" => {
            let cycles = cycles_param(&mut params)?;
            let bias = f64_param(&mut params, "bias", 1_000.0)?;
            let amplitude = f64_param(&mut params, "amplitude", 500.0)?;
            let step = f64_param(&mut params, "step", 10.0)?;
            NamedExcitation::biased(bias, amplitude, cycles, step)?
        }
        "circuit" => {
            let source = params.remove("source");
            let control = params.remove("control").unwrap_or("fixed");
            let adaptive = match control {
                "fixed" => false,
                "adaptive" => true,
                other => {
                    return Err(CliError::usage(format!(
                        "excitation parameter `control={other}` must be fixed | adaptive"
                    )))
                }
            };
            // Omitted parameters fall back to the inrush preset inside
            // `circuit_excitation` — the defaults live in exactly one
            // place (`CircuitExcitation::inrush`).
            let args = CircuitSpecArgs {
                source,
                amplitude: optional_f64_param(&mut params, "amplitude")?,
                frequency: optional_f64_param(&mut params, "frequency")?,
                resistance: optional_f64_param(&mut params, "r")?,
                turns: optional_f64_param(&mut params, "turns")?,
                area: optional_f64_param(&mut params, "area")?,
                path: optional_f64_param(&mut params, "path")?,
                t_end: optional_f64_param(&mut params, "t_end")?,
                dt: optional_f64_param(&mut params, "dt")?,
                adaptive,
                rel_tol: optional_f64_param(&mut params, "rel_tol")?,
                abs_tol: optional_f64_param(&mut params, "abs_tol")?,
                max_step: optional_f64_param(&mut params, "max_step")?,
            };
            circuit_excitation(&args, "set control=adaptive")?
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown excitation kind `{other}` (expected major | fig1 | biased | circuit)"
            )))
        }
    };
    if let Some((stray, _)) = params.iter().next() {
        return Err(CliError::usage(format!(
            "excitation kind `{kind}` does not take parameter `{stray}`"
        )));
    }
    Ok(named)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_grid() {
        let grid = parse_grid(
            "# demo grid\n\
             material = date2006\n\
             material = soft-ferrite   # second material axis value\n\
             backend = timeless\n\
             dh_max = 10\n\
             dh_max = 25\n\
             excitation = major peak=10000 step=200 cycles=1\n\
             excitation = fig1 step=100\n",
        )
        .unwrap();
        // 2 excitations x 3 backends x 2 configs x 2 materials.
        assert_eq!(grid.len(), 24);
        let scenarios = grid.scenarios().unwrap();
        assert!(scenarios[0]
            .name
            .starts_with("major(peak=10000,step=200,cycles=1)/"));
        assert!(scenarios.iter().any(|s| s.name.contains("/dh25/")));
        assert!(scenarios.iter().any(|s| s.name.ends_with("/soft-ferrite")));
    }

    #[test]
    fn axes_fall_back_to_defaults() {
        let grid = parse_grid("excitation = fig1 step=100\n").unwrap();
        assert_eq!(grid.len(), 1);
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(
            scenarios[0].name,
            "fig1(step=100)/direct-timeless/default/date2006"
        );
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("material\n", "line 1"),
            ("material = mu-metal\n", "unknown material"),
            ("backend = verilog\n", "unknown backend"),
            ("dh_max = fast\n", "not a number"),
            ("dh_max = -1\n", "dh_max"),
            ("speed = 9\n", "unknown key `speed`"),
            ("excitation = sawtooth step=1\n", "unknown excitation kind"),
            ("excitation = major step\n", "not `key=value`"),
            ("excitation = major step=a\n", "not a number"),
            ("excitation = major step=1 step=2\n", "given twice"),
            ("excitation = major cycles=1.9\n", "not an unsigned integer"),
            (
                "excitation = major cycles=1e20\n",
                "not an unsigned integer",
            ),
            ("excitation = fig1 peak=10\n", "does not take parameter"),
            ("\nexcitation = major step=0\n", "line 2"),
        ] {
            let err = parse_grid(text).expect_err(text);
            assert!(err.message.contains(needle), "`{text}` -> {}", err.message);
            assert_eq!(err.code, 2, "{text}");
        }
    }

    #[test]
    fn parses_circuit_excitations() {
        let grid = parse_grid(
            "excitation = circuit source=sine amplitude=30 frequency=50 r=1 \
             turns=200 area=1e-4 path=0.1 t_end=0.04 dt=5e-5 control=fixed\n\
             excitation = circuit control=adaptive rel_tol=0.05\n",
        )
        .unwrap();
        assert_eq!(grid.len(), 2);
        let scenarios = grid.scenarios().unwrap();
        assert!(scenarios[0]
            .name
            .starts_with("circuit(sine(amplitude=30,frequency=50),r=1,turns=200,"));
        assert!(scenarios[0].name.contains("fixed(dt=0.00005)"));
        assert!(scenarios[1].name.contains("adaptive(rel=0.05,abs=0.1,"));

        for (text, needle) in [
            ("excitation = circuit source=square\n", "unknown source"),
            ("excitation = circuit control=maybe\n", "fixed | adaptive"),
            ("excitation = circuit dt=0\n", "dt"),
            ("excitation = circuit r=zero\n", "not a number"),
            ("excitation = circuit rel_tol=0.1\n", "control=adaptive"),
            ("excitation = circuit cycles=2\n", "does not take parameter"),
        ] {
            let err = parse_grid(text).expect_err(text);
            assert!(err.message.contains(needle), "`{text}` -> {}", err.message);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let grid = parse_grid("\n  # only a comment\nexcitation = fig1 step=250 # tail\n").unwrap();
        assert_eq!(grid.len(), 1);
    }
}
