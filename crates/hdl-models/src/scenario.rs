//! Scenario engine: declarative experiment descriptions and a batch runner.
//!
//! A [`Scenario`] is the cross product the experiments of the paper are
//! built from — **material × excitation × backend × configuration**.  The
//! engine turns one scenario into a [`ScenarioOutcome`] (BH curve, loop
//! metrics, model cost counters and wall-clock runtime) through the
//! [`HysteresisBackend`] trait, so the same runner serves every
//! implementation style.  [`ScenarioGrid`] expands whole grids of
//! scenarios, and [`run_batch`] executes them uniformly — since the
//! introduction of [`crate::exec`] it does so in parallel, one worker per
//! available core, with a deterministic (input-ordered, bit-identical)
//! [`BatchReport`] regardless of the worker count.
//!
//! The Fig.-1/E1–E6 experiment drivers in [`crate::comparison`] are thin
//! wrappers over this module.

use std::time::{Duration, Instant};

use analog_solver::circuit::elements::{NonlinearInductor, Resistor, VoltageSource};
use analog_solver::circuit::{Circuit, Node, TransientAnalysis};
use ja_hysteresis::backend::{HysteresisBackend, TimeDomainBackend};
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::error::JaError;
use ja_hysteresis::model::{JaStatistics, JilesAtherton};
use magnetics::bh::BhCurve;
use magnetics::geometry::CoreGeometry;
use magnetics::loop_analysis::{self, LoopMetrics};
use magnetics::losses::{self, CoreLoss, LaminationSpec};
use magnetics::material::JaParameters;
use magnetics::thermal::ThermalCoefficients;
use waveform::schedule::FieldSchedule;
use waveform::Waveform;

use crate::ams::AmsTimelessModel;
use crate::circuit_adapter::JaCoreAdapter;
use crate::exec::{BatchRunner, RunScratch};
use crate::systemc::SystemCJaCore;

// Circuit-driven scenarios are described and reported in terms of the
// analogue solver's step-control types; re-export them so scenario
// consumers (the CLI, benches) need no direct `analog-solver` dependency.
pub use analog_solver::circuit::{StepControl, TransientStats};
pub use analog_solver::ode::adaptive::AdaptiveOptions;

/// Which implementation style runs a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The direct library model ([`JilesAtherton`]).
    DirectTimeless,
    /// The SystemC-style port on the discrete-event kernel
    /// ([`SystemCJaCore`]).
    SystemC,
    /// The equation-style AMS model ([`AmsTimelessModel`]).
    AmsTimeless,
    /// The conventional time-domain formulation driven per sample
    /// ([`TimeDomainBackend`]).
    TimeDomainBaseline,
}

impl BackendKind {
    /// All four implementation styles.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::DirectTimeless,
        BackendKind::SystemC,
        BackendKind::AmsTimeless,
        BackendKind::TimeDomainBaseline,
    ];

    /// The three implementations of the paper's timeless technique (the
    /// ones expected to agree sample-for-sample).
    pub const TIMELESS: [BackendKind; 3] = [
        BackendKind::DirectTimeless,
        BackendKind::SystemC,
        BackendKind::AmsTimeless,
    ];

    /// Stable display name.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::DirectTimeless => "direct-timeless",
            BackendKind::SystemC => "systemc-event-kernel",
            BackendKind::AmsTimeless => "ams-timeless",
            BackendKind::TimeDomainBaseline => "time-domain-baseline",
        }
    }

    /// Instantiates the backend for a material and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`JaError`] for invalid parameters/configuration or a
    /// substrate construction failure.  The SystemC port is a faithful
    /// transcription of the paper's listing and only honours `dh_max`; a
    /// configuration that deviates from the paper's defaults in any other
    /// field is rejected rather than silently ignored.
    pub fn build(
        self,
        params: JaParameters,
        config: JaConfig,
    ) -> Result<Box<dyn HysteresisBackend>, JaError> {
        match self {
            BackendKind::DirectTimeless => {
                Ok(Box::new(JilesAtherton::with_config(params, config)?))
            }
            BackendKind::SystemC => {
                config.validate()?;
                params.validate()?;
                let paper = JaConfig::default().with_dh_max(config.dh_max);
                if config != paper {
                    return Err(JaError::Backend {
                        backend: BackendKind::SystemC.label(),
                        reason: "the SystemC port hard-codes the paper's listing (guards on, \
                                 forward Euler, Date2006 formulation, modified Langevin); only \
                                 dh_max is configurable"
                            .to_owned(),
                    });
                }
                let core =
                    SystemCJaCore::new(params, config.dh_max).map_err(|err| JaError::Backend {
                        backend: BackendKind::SystemC.label(),
                        reason: err.to_string(),
                    })?;
                Ok(Box::new(core))
            }
            BackendKind::AmsTimeless => Ok(Box::new(AmsTimelessModel::new(params, config)?)),
            BackendKind::TimeDomainBaseline => {
                Ok(Box::new(TimeDomainBackend::new(params, config)?))
            }
        }
    }
}

/// The stimulus a scenario drives its backend with.
///
/// Every form reduces to an ordered sequence of applied-field samples — the
/// timeless view of an excitation.  Time-domain waveforms enter through
/// [`Excitation::sampled`], which fixes the sampling grid up front so every
/// backend sees the identical stimulus.  Circuit-driven excitations
/// ([`Excitation::Circuit`]) produce their field sequence at run time: the
/// transient engine simulates the drive circuit (with the scenario's
/// material wound on the core) and the solver-chosen winding-current
/// trajectory becomes the applied-field sequence — the "model inside an
/// analogue solver" setting the paper contrasts its timeless ports
/// against.
#[derive(Debug, Clone, PartialEq)]
pub enum Excitation {
    /// A timeless field schedule with explicit reversal points.
    Schedule(FieldSchedule),
    /// Raw field samples (A/m).
    Samples(Vec<f64>),
    /// A declarative drive circuit whose transient solution produces the
    /// field sequence.
    Circuit(CircuitExcitation),
}

/// Source waveform of a circuit-driven excitation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceWaveform {
    /// `amplitude · sin(2π · frequency · t)` volts.
    Sine {
        /// Peak voltage (V).
        amplitude: f64,
        /// Frequency (Hz).
        frequency: f64,
    },
    /// A symmetric triangular voltage of the given peak and frequency.
    Triangular {
        /// Peak voltage (V).
        amplitude: f64,
        /// Frequency (Hz).
        frequency: f64,
    },
    /// A bipolar PWM voltage: `+amplitude` for the first `duty` fraction
    /// of every switching period, `−amplitude` for the remainder — the
    /// drive an H-bridge converter applies to a magnetic component.
    Pwm {
        /// Rail voltage (V).
        amplitude: f64,
        /// Switching frequency (Hz).
        frequency: f64,
        /// Duty cycle in the open interval `(0, 1)`.
        duty: f64,
    },
}

impl SourceWaveform {
    /// Stable display name of the waveform kind.
    pub fn label(self) -> &'static str {
        match self {
            SourceWaveform::Sine { .. } => "sine",
            SourceWaveform::Triangular { .. } => "triangular",
            SourceWaveform::Pwm { .. } => "pwm",
        }
    }

    /// Peak voltage (V).
    pub fn amplitude(self) -> f64 {
        match self {
            SourceWaveform::Sine { amplitude, .. }
            | SourceWaveform::Triangular { amplitude, .. }
            | SourceWaveform::Pwm { amplitude, .. } => amplitude,
        }
    }

    /// Frequency (Hz).
    pub fn frequency(self) -> f64 {
        match self {
            SourceWaveform::Sine { frequency, .. }
            | SourceWaveform::Triangular { frequency, .. }
            | SourceWaveform::Pwm { frequency, .. } => frequency,
        }
    }

    /// Duty cycle — `Some` only for the PWM waveform.
    pub fn duty(self) -> Option<f64> {
        match self {
            SourceWaveform::Pwm { duty, .. } => Some(duty),
            _ => None,
        }
    }
}

/// Declarative description of a circuit-driven excitation: an independent
/// voltage source in series with a resistor and an `N`-turn winding on the
/// scenario's core material.
///
/// ```text
///   source ──── R_series ──── N-turn winding on the JA core ──── ground
/// ```
///
/// Running the scenario simulates this netlist with the transient engine
/// ([`TransientAnalysis`], fixed-step or adaptive per [`StepControl`]) and
/// the in-circuit core model built from the scenario's material and
/// configuration; the winding-current trajectory `H(t) = N·i(t)/l` then
/// drives the scenario's backend sample-by-sample, exactly like a
/// prescribed field sequence.  For [`BackendKind::DirectTimeless`] the
/// resulting BH trace is identical to the trajectory of the in-circuit
/// core.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitExcitation {
    /// Source waveform.
    pub source: SourceWaveform,
    /// Series resistance (Ω).
    pub series_resistance: f64,
    /// Winding turns.
    pub turns: f64,
    /// Core cross-section (m²).
    pub area: f64,
    /// Magnetic path length (m).
    pub path_length: f64,
    /// Transient end time (s); the run starts at `t = 0`.
    pub t_end: f64,
    /// Fixed-step size (s); under [`StepControl::Adaptive`] the controller
    /// options supply the step sizes and this value is unused.
    pub dt: f64,
    /// Step controller of the transient engine.
    pub control: StepControl,
}

/// The product of simulating a [`CircuitExcitation`]: the field sequence
/// its winding current traced, plus the transient-engine cost counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitRun {
    /// Applied-field sequence `H = N·i/l` (A/m), one value per accepted
    /// time point.
    pub field_samples: Vec<f64>,
    /// The transient engine's step/Newton statistics — deterministic, so
    /// batch reports may carry them unconditionally.
    pub stats: TransientStats,
}

impl CircuitExcitation {
    /// Creates a fixed-step circuit excitation.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] when a parameter is not finite
    /// and positive (`dt > t_end` is rejected by the transient engine at
    /// run time).
    pub fn new(
        source: SourceWaveform,
        series_resistance: f64,
        turns: f64,
        area: f64,
        path_length: f64,
        t_end: f64,
        dt: f64,
    ) -> Result<Self, JaError> {
        for (name, value) in [
            ("series_resistance", series_resistance),
            ("turns", turns),
            ("area", area),
            ("path_length", path_length),
            ("t_end", t_end),
            ("dt", dt),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(JaError::InvalidConfig {
                    name,
                    value,
                    requirement: "finite and > 0",
                });
            }
        }
        let (amplitude, frequency) = (source.amplitude(), source.frequency());
        if !amplitude.is_finite() || amplitude < 0.0 {
            return Err(JaError::InvalidConfig {
                name: "amplitude",
                value: amplitude,
                requirement: "finite and >= 0",
            });
        }
        if !frequency.is_finite() || frequency <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "frequency",
                value: frequency,
                requirement: "finite and > 0",
            });
        }
        if let SourceWaveform::Pwm { duty, .. } = source {
            // A duty of exactly 0 or 1 is a DC rail, not a switching
            // waveform.
            if !duty.is_finite() || duty <= 0.0 || duty >= 1.0 {
                return Err(JaError::InvalidConfig {
                    name: "duty",
                    value: duty,
                    requirement: "in (0, 1)",
                });
            }
        }
        Ok(Self {
            source,
            series_resistance,
            turns,
            area,
            path_length,
            t_end,
            dt,
            control: StepControl::Fixed,
        })
    }

    /// Overrides the step controller (fixed stepping is the default).
    #[must_use]
    pub fn with_step_control(mut self, control: StepControl) -> Self {
        self.control = control;
        self
    }

    /// Adaptive-controller options tuned for circuit workloads: per-mille
    /// loop accuracy at roughly half the fixed-step cost on the inrush
    /// workload.  Much looser than [`AdaptiveOptions::default`] (which
    /// serves the smooth ODE integrator): MNA unknowns span volts to tens
    /// of amps and the quantised core's update granularity makes
    /// ppm-level step control counterproductive.
    pub fn adaptive_defaults() -> AdaptiveOptions {
        AdaptiveOptions {
            rel_tol: 1e-1,
            abs_tol: 1e-1,
            initial_step: 1e-6,
            min_step: 1e-12,
            max_step: 1e-3,
        }
    }

    /// The classic magnetising-inrush setup on the paper's core geometry: a
    /// 30 V / 50 Hz sine through 1 Ω into a 200-turn winding (area 1 cm²,
    /// path 10 cm), two mains cycles at a 50 µs fixed step.  The low series
    /// resistance makes the winding current spike hard in saturation — the
    /// workload where adaptive stepping pays off.
    pub fn inrush() -> Self {
        Self::new(
            SourceWaveform::Sine {
                amplitude: 30.0,
                frequency: 50.0,
            },
            1.0,
            200.0,
            1.0e-4,
            0.1,
            0.04,
            5e-5,
        )
        .expect("inrush preset parameters are valid")
    }

    /// A resistance-dominated circuit whose winding current — and therefore
    /// the applied field — sweeps a triangle to ±`h_peak` A/m: one cycle of
    /// triangular voltage through a series resistance large enough that the
    /// inductive drop is negligible.  `steps_per_cycle` fixes the transient
    /// grid.  This is the circuit-driven twin of
    /// [`Excitation::major_loop`], used by the field-vs-circuit agreement
    /// tests.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] for a non-positive `h_peak` or a
    /// zero `steps_per_cycle`.
    pub fn triangular_sweep(h_peak: f64, steps_per_cycle: usize) -> Result<Self, JaError> {
        if !h_peak.is_finite() || h_peak <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "h_peak",
                value: h_peak,
                requirement: "finite and > 0",
            });
        }
        if steps_per_cycle == 0 {
            return Err(JaError::InvalidConfig {
                name: "steps_per_cycle",
                value: 0.0,
                requirement: "> 0",
            });
        }
        let turns = 100.0;
        let path_length = 0.1;
        let resistance = 100.0;
        // Slow sweep (10 s period): the N·A·dB/dt drop across the winding
        // stays ppm-level against the resistive drop, so H follows the
        // source triangle.
        let period = 10.0;
        let amplitude = h_peak * path_length / turns * resistance;
        Self::new(
            SourceWaveform::Triangular {
                amplitude,
                frequency: 1.0 / period,
            },
            resistance,
            turns,
            1.0e-4,
            path_length,
            period,
            period / steps_per_cycle as f64,
        )
    }

    /// Simulates the drive circuit with the given core material and model
    /// configuration, returning the applied-field trajectory and the
    /// transient statistics.
    ///
    /// # Errors
    ///
    /// Returns [`JaError`] for invalid material/configuration and
    /// [`JaError::Solver`] for transient-engine failures (invalid step
    /// sizes, singular MNA matrix, adaptive step-size underflow).
    pub fn simulate(&self, params: JaParameters, config: JaConfig) -> Result<CircuitRun, JaError> {
        let core = JaCoreAdapter::new(params, config)?;
        let mut circuit = Circuit::new();
        let v_in = circuit.node();
        let v_core = circuit.node();
        match self.source {
            SourceWaveform::Sine {
                amplitude,
                frequency,
            } => circuit.add(
                "V1",
                VoltageSource::new(
                    v_in,
                    Node::GROUND,
                    waveform::sine::Sine::new(amplitude, frequency)?,
                ),
            )?,
            SourceWaveform::Triangular {
                amplitude,
                frequency,
            } => circuit.add(
                "V1",
                VoltageSource::new(
                    v_in,
                    Node::GROUND,
                    waveform::triangular::Triangular::new(amplitude, 1.0 / frequency)?,
                ),
            )?,
            SourceWaveform::Pwm {
                amplitude,
                frequency,
                duty,
            } => circuit.add(
                "V1",
                VoltageSource::new(
                    v_in,
                    Node::GROUND,
                    waveform::pwm::Pwm::new(amplitude, frequency, duty)?,
                ),
            )?,
        };
        circuit.add("R1", Resistor::new(v_in, v_core, self.series_resistance)?)?;
        let core_index = circuit.add(
            "CORE",
            NonlinearInductor::new(
                v_core,
                Node::GROUND,
                self.turns,
                self.area,
                self.path_length,
                core,
            )?,
        )?;

        let analysis = match self.control {
            StepControl::Fixed => TransientAnalysis::new(self.dt, self.t_end)?,
            StepControl::Adaptive(options) => TransientAnalysis::adaptive(options, self.t_end)?,
        };
        let result = analysis.run(&mut circuit)?;
        let field_samples = result
            .branch_current(core_index, 0)?
            .into_iter()
            .map(|i| self.turns * i / self.path_length)
            .collect();
        Ok(CircuitRun {
            field_samples,
            stats: result.stats(),
        })
    }
}

impl Excitation {
    /// The paper's Fig. 1 stimulus: triangular major sweep to ±10 kA/m
    /// followed by non-biased minor loops of decreasing amplitude.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Waveform`] for an invalid step.
    pub fn fig1(step: f64) -> Result<Self, JaError> {
        Ok(Excitation::Schedule(FieldSchedule::nested_minor_loops(
            crate::comparison::FIG1_H_PEAK,
            &crate::comparison::FIG1_MINOR_AMPLITUDES,
            step,
        )?))
    }

    /// A triangular major loop of `cycles` full cycles.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Waveform`] for invalid schedule parameters.
    pub fn major_loop(peak: f64, step: f64, cycles: usize) -> Result<Self, JaError> {
        Ok(Excitation::Schedule(FieldSchedule::major_loop(
            peak, step, cycles,
        )?))
    }

    /// A biased minor loop (loop centre `bias`, amplitude `amplitude`).
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Waveform`] for invalid schedule parameters.
    pub fn biased_minor_loop(
        bias: f64,
        amplitude: f64,
        cycles: usize,
        step: f64,
    ) -> Result<Self, JaError> {
        Ok(Excitation::Schedule(FieldSchedule::biased_minor_loop(
            bias, amplitude, cycles, step,
        )?))
    }

    /// A degaussing schedule: triangular cycles whose amplitude decays
    /// geometrically from `h_start` by the factor `decay` per cycle until
    /// it falls below `h_stop`, finishing at `H = 0` — the classic
    /// demagnetisation procedure, driving the remanent state towards zero.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Waveform`] for invalid schedule parameters
    /// (`h_start`/`h_stop` must be finite and positive with
    /// `h_stop < h_start`, `decay` in `(0, 1)`, `step` finite and
    /// positive).
    pub fn demagnetisation(
        h_start: f64,
        h_stop: f64,
        decay: f64,
        step: f64,
    ) -> Result<Self, JaError> {
        Ok(Excitation::Schedule(FieldSchedule::demagnetisation(
            h_start, h_stop, decay, step,
        )?))
    }

    /// A time-domain waveform sampled every `dt` seconds over `[0, t_end]`
    /// — the transient stimulus reduced to the field samples every backend
    /// can consume.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] for non-positive `dt`/`t_end`.
    pub fn sampled<W: Waveform>(waveform: &W, t_end: f64, dt: f64) -> Result<Self, JaError> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "dt",
                value: dt,
                requirement: "finite and > 0",
            });
        }
        if !t_end.is_finite() || t_end <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "t_end",
                value: t_end,
                requirement: "finite and > 0",
            });
        }
        let steps = (t_end / dt).ceil() as usize;
        let samples = (0..=steps)
            .map(|i| waveform.value((i as f64 * dt).min(t_end)))
            .collect();
        Ok(Excitation::Samples(samples))
    }

    /// Number of prescribed field samples, or `None` when the count is
    /// solver-determined: a circuit-driven excitation produces its field
    /// sequence only at run time (and it depends on the scenario's
    /// material), so it has no prescribed count — yet it still drives a
    /// full sweep.
    ///
    /// This replaces the earlier `len()`/`is_empty()` pair, which violated
    /// the standard invariant (`len() == 0` while `is_empty()` was `false`
    /// for circuit excitations).  `Option` makes "no prescribed count"
    /// unrepresentable as a misleading zero.
    pub fn sample_count(&self) -> Option<usize> {
        match self {
            Excitation::Schedule(schedule) => Some(schedule.len()),
            Excitation::Samples(samples) => Some(samples.len()),
            Excitation::Circuit(_) => None,
        }
    }

    /// The prescribed stimulus as a flat sample vector (empty for
    /// circuit-driven excitations — use
    /// [`CircuitExcitation::simulate`] to obtain their material-dependent
    /// field trajectory).
    pub fn to_samples(&self) -> Vec<f64> {
        match self {
            Excitation::Schedule(schedule) => schedule.to_samples(),
            Excitation::Samples(samples) => samples.clone(),
            Excitation::Circuit(_) => Vec::new(),
        }
    }
}

/// The environment a scenario runs in: operating temperature, excitation
/// frequency and core geometry.
///
/// Every field is optional, and an all-`None` operating point is exactly
/// today's behaviour — the scenario runs the material's reference
/// parameters and reports no loss figures.  A temperature derives the
/// material parameters through [`JaParameters::at_temperature`] (see
/// [`Scenario::resolved_params`]); a geometry plus a frequency enables the
/// per-scenario core-loss breakdown ([`ScenarioOutcome::loss`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OperatingPoint {
    /// Operating temperature (°C); `None` runs the material's reference
    /// parameters unchanged.
    pub temperature_c: Option<f64>,
    /// Excitation frequency (Hz) used to convert per-cycle loop energy
    /// into dissipated power.
    pub frequency_hz: Option<f64>,
    /// Core geometry converting field-axis loop area into volumetric
    /// loss.
    pub geometry: Option<CoreGeometry>,
    /// Lamination stack enabling the classical eddy-current estimate on
    /// top of the hysteresis loss.
    pub lamination: Option<LaminationSpec>,
}

impl OperatingPoint {
    /// An empty operating point (reference temperature, no loss
    /// reporting).
    pub fn new() -> Self {
        Self::default()
    }

    /// An operating point at temperature `t_c` (°C).
    #[must_use]
    pub fn at_temperature(t_c: f64) -> Self {
        Self::new().with_temperature(t_c)
    }

    /// Sets the operating temperature (°C).
    #[must_use]
    pub fn with_temperature(mut self, t_c: f64) -> Self {
        self.temperature_c = Some(t_c);
        self
    }

    /// Sets the excitation frequency (Hz).
    #[must_use]
    pub fn with_frequency(mut self, frequency_hz: f64) -> Self {
        self.frequency_hz = Some(frequency_hz);
        self
    }

    /// Sets the core geometry.
    #[must_use]
    pub fn with_geometry(mut self, geometry: CoreGeometry) -> Self {
        self.geometry = Some(geometry);
        self
    }

    /// Sets the lamination stack.
    #[must_use]
    pub fn with_lamination(mut self, lamination: LaminationSpec) -> Self {
        self.lamination = Some(lamination);
        self
    }

    /// Whether every field is `None` — an empty operating point behaves
    /// exactly like no operating point at all.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Validates the point's scalar fields.
    ///
    /// The temperature is only range-checked against a material's thermal
    /// coefficients at resolution time ([`Scenario::resolved_params`]);
    /// this checks what can be checked without a material: finite
    /// temperature, finite positive frequency.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), JaError> {
        if let Some(t_c) = self.temperature_c {
            if !t_c.is_finite() {
                return Err(JaError::InvalidConfig {
                    name: "temperature_c",
                    value: t_c,
                    requirement: "finite",
                });
            }
        }
        if let Some(frequency) = self.frequency_hz {
            if !frequency.is_finite() || frequency <= 0.0 {
                return Err(JaError::InvalidConfig {
                    name: "frequency_hz",
                    value: frequency,
                    requirement: "finite and > 0",
                });
            }
        }
        Ok(())
    }
}

/// One experiment: a named (material, configuration, backend, excitation)
/// tuple, optionally pinned to an [`OperatingPoint`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (used in batch reports).
    pub name: String,
    /// Material parameters, quoted at the 20 °C reference temperature.
    pub params: JaParameters,
    /// Model configuration.
    pub config: JaConfig,
    /// Implementation style.
    pub backend: BackendKind,
    /// Stimulus.
    pub excitation: Excitation,
    /// Operating point; `None` (the default) runs the reference
    /// parameters and reports no loss figures.
    pub operating_point: Option<OperatingPoint>,
    /// Thermal coefficients used to derive the material parameters when
    /// the operating point carries a temperature.  Defaults to
    /// [`ThermalCoefficients::generic`]; irrelevant (but carried) when no
    /// temperature is set.
    pub thermal: ThermalCoefficients,
}

impl Scenario {
    /// Creates a scenario at the reference operating point.
    pub fn new(
        name: impl Into<String>,
        params: JaParameters,
        config: JaConfig,
        backend: BackendKind,
        excitation: Excitation,
    ) -> Self {
        Self {
            name: name.into(),
            params,
            config,
            backend,
            excitation,
            operating_point: None,
            thermal: ThermalCoefficients::generic(),
        }
    }

    /// Pins the scenario to an operating point.
    #[must_use]
    pub fn with_operating_point(mut self, operating_point: OperatingPoint) -> Self {
        self.operating_point = Some(operating_point);
        self
    }

    /// Overrides the thermal coefficients (material-specific Curie point
    /// and drift constants).
    #[must_use]
    pub fn with_thermal(mut self, thermal: ThermalCoefficients) -> Self {
        self.thermal = thermal;
        self
    }

    /// The material parameters the backends actually run: the reference
    /// parameters when no operating temperature is set, otherwise the
    /// thermally derived set of [`JaParameters::at_temperature`].
    ///
    /// This is the **only** place thermal scaling is applied — every
    /// backend, the circuit transient engine and the SoA lockstep path
    /// all consume the value returned here, so scalar and lockstep
    /// execution see bit-identical derived parameters.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Material`] when the temperature or the derived
    /// parameter set is out of range.
    pub fn resolved_params(&self) -> Result<JaParameters, JaError> {
        match self
            .operating_point
            .as_ref()
            .and_then(|op| op.temperature_c)
        {
            Some(t_c) => Ok(self.params.at_temperature(t_c, &self.thermal)?),
            None => Ok(self.params),
        }
    }

    /// The loss breakdown of a finished trace, when the operating point
    /// carries both a geometry and a frequency.  Mirrors the loop-metrics
    /// policy: a trace the loss analysis cannot handle (too few points,
    /// open loop) yields `None`, not a scenario failure.
    pub(crate) fn loss_breakdown(&self, curve: &BhCurve) -> Option<CoreLoss> {
        let op = self.operating_point.as_ref()?;
        let geometry = op.geometry.as_ref()?;
        let frequency = op.frequency_hz?;
        losses::core_loss(curve, geometry, frequency, op.lamination).ok()
    }

    /// The paper's Fig. 1 experiment on the given backend: paper material,
    /// default configuration (the paper's `ΔH_max` of 10 A/m — the stimulus
    /// step is a property of the excitation, not of the model), Fig. 1
    /// stimulus with field step `step`.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Waveform`] for an invalid step.
    pub fn fig1(backend: BackendKind, step: f64) -> Result<Self, JaError> {
        Ok(Self::new(
            format!("fig1/{}", backend.label()),
            JaParameters::date2006(),
            JaConfig::default(),
            backend,
            Excitation::fig1(step)?,
        ))
    }

    /// Runs the scenario: builds the backend, drives it through the
    /// stimulus, extracts the loop metrics.
    ///
    /// # Errors
    ///
    /// Propagates backend construction, sweep and analysis errors.
    pub fn run(&self) -> Result<ScenarioOutcome, JaError> {
        self.run_with_scratch(&mut RunScratch::new())
    }

    /// Runs the scenario reusing worker-local scratch state: when the
    /// scratch's cached backend matches this scenario's (backend, material,
    /// configuration) triple it is reset and reused instead of rebuilt, and
    /// the flattened sample vector of a prescribed excitation is cached
    /// keyed by excitation identity — a grid repeats the same excitation
    /// across every (material, config, backend) combination, so
    /// re-flattening it per scenario was pure waste.  The outcome is
    /// bit-identical to [`Scenario::run`].
    ///
    /// # Errors
    ///
    /// Propagates backend construction, reset, sweep and analysis errors.
    pub fn run_with_scratch(&self, scratch: &mut RunScratch) -> Result<ScenarioOutcome, JaError> {
        let (backend, cached_samples) = scratch.backend_and_samples(self)?;
        let started = Instant::now();
        let (curve, transient) = match &self.excitation {
            Excitation::Schedule(_) | Excitation::Samples(_) => {
                (backend.run_samples(cached_samples)?, None)
            }
            Excitation::Circuit(spec) => {
                // The transient engine solves the drive circuit around the
                // in-circuit core (built from this scenario's material and
                // configuration, thermally derived when an operating
                // temperature is set); the solver-chosen H trajectory then
                // drives the scenario's backend like any prescribed
                // sample sequence.
                let run = spec.simulate(self.resolved_params()?, self.config)?;
                (backend.run_samples(&run.field_samples)?, Some(run.stats))
            }
        };
        let runtime = started.elapsed();
        // Not every stimulus produces a closable loop (a biased minor loop
        // never crosses B = 0, so coercivity is undefined): metric
        // extraction failure is not a scenario failure.
        let metrics = loop_analysis::loop_metrics(&curve).ok();
        let loss = self.loss_breakdown(&curve);
        Ok(ScenarioOutcome {
            name: self.name.clone(),
            backend: self.backend,
            curve,
            metrics,
            loss,
            operating_point: self.operating_point,
            stats: backend.statistics(),
            kernel: backend.kernel_statistics(),
            transient,
            runtime,
            lockstep_lanes: None,
        })
    }
}

/// Everything a scenario run produces.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Name of the scenario that produced this outcome.
    pub name: String,
    /// Backend that ran it.
    pub backend: BackendKind,
    /// The BH trace.
    pub curve: BhCurve,
    /// Loop metrics extracted from the trace; `None` when the trace does
    /// not form a closable loop (e.g. a biased minor loop that never
    /// crosses `B = 0`, leaving coercivity undefined).
    pub metrics: Option<LoopMetrics>,
    /// Core-loss breakdown; `Some` only when the scenario's operating
    /// point carries both a geometry and a frequency and the trace
    /// supports the loss analysis.  Deterministic (pure float
    /// arithmetic over the trace).
    pub loss: Option<CoreLoss>,
    /// The operating point the scenario ran at, carried through so
    /// reports can echo temperature and frequency next to the loss.
    pub operating_point: Option<OperatingPoint>,
    /// The backend's cost counters for this run.
    pub stats: JaStatistics,
    /// The simulation kernel's cost counters (delta cycles, events
    /// scheduled, process activations) — `Some` only for event-driven
    /// backends.  Deterministic outcomes, but reported only in the opt-in
    /// timing block because they describe substrate work, not model
    /// results.
    pub kernel: Option<ja_hysteresis::backend::KernelStatistics>,
    /// The transient engine's step/Newton counters — present only for
    /// circuit-driven excitations.  Deterministic (pure float-arithmetic
    /// step control), so reports carry them unconditionally.
    pub transient: Option<TransientStats>,
    /// Wall-clock time of the sweep (for circuit-driven excitations this
    /// includes the transient circuit solve; backend construction and
    /// metric extraction stay excluded).
    pub runtime: Duration,
    /// `Some(lane count)` when this outcome was produced by a
    /// structure-of-arrays lockstep group of [`crate::exec::BatchRunner`],
    /// `None` for a scalar run.  Routing never changes result content (the
    /// SoA `f64` lanes are bit-identical to scalar execution), so this is
    /// reported only in the opt-in timing block.
    pub lockstep_lanes: Option<usize>,
}

impl ScenarioOutcome {
    /// The loop metrics, failing loudly when the trace does not form a
    /// closable loop.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Material`] with the underlying extraction error.
    pub fn full_metrics(&self) -> Result<LoopMetrics, JaError> {
        match self.metrics {
            Some(metrics) => Ok(metrics),
            None => Ok(loop_analysis::loop_metrics(&self.curve)?),
        }
    }
}

/// A grid of scenario dimensions, expanded as a cartesian product.
///
/// Dimensions left empty fall back to a single default: the paper's
/// material, the default configuration, the [`BackendKind::DirectTimeless`]
/// backend.  The operating-point axis is special: left empty it
/// contributes no name segment and no derived parameters, so grids that
/// never mention it expand **byte-identically** to the four-axis grids of
/// earlier versions.  At least one excitation must be supplied.
#[derive(Debug, Clone, Default)]
pub struct ScenarioGrid {
    materials: Vec<(String, JaParameters, ThermalCoefficients)>,
    configs: Vec<(String, JaConfig)>,
    backends: Vec<BackendKind>,
    excitations: Vec<(String, Excitation)>,
    operating_points: Vec<(String, OperatingPoint)>,
}

impl ScenarioGrid {
    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a material with the generic thermal coefficients.
    #[must_use]
    pub fn material(mut self, name: impl Into<String>, params: JaParameters) -> Self {
        self.materials
            .push((name.into(), params, ThermalCoefficients::generic()));
        self
    }

    /// Adds a material together with its thermal coefficients, used to
    /// derive the parameters when a scenario's operating point carries a
    /// temperature.
    #[must_use]
    pub fn material_with_thermal(
        mut self,
        name: impl Into<String>,
        params: JaParameters,
        thermal: ThermalCoefficients,
    ) -> Self {
        self.materials.push((name.into(), params, thermal));
        self
    }

    /// Adds an operating point.  A non-empty operating-point axis appends
    /// a fifth `/`-separated segment to every scenario name.
    #[must_use]
    pub fn operating_point(
        mut self,
        name: impl Into<String>,
        operating_point: OperatingPoint,
    ) -> Self {
        self.operating_points.push((name.into(), operating_point));
        self
    }

    /// Adds a configuration.
    #[must_use]
    pub fn config(mut self, name: impl Into<String>, config: JaConfig) -> Self {
        self.configs.push((name.into(), config));
        self
    }

    /// Adds a backend.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backends.push(backend);
        self
    }

    /// Adds several backends.
    #[must_use]
    pub fn backends(mut self, backends: impl IntoIterator<Item = BackendKind>) -> Self {
        self.backends.extend(backends);
        self
    }

    /// Adds an excitation.
    #[must_use]
    pub fn excitation(mut self, name: impl Into<String>, excitation: Excitation) -> Self {
        self.excitations.push((name.into(), excitation));
        self
    }

    /// Expands the grid into concrete scenarios
    /// (excitation-major, then backend, config, material, operating
    /// point).
    ///
    /// # Errors
    ///
    /// Returns [`JaError::EmptyGrid`] when the grid expands to zero
    /// scenarios.  Materials, configurations and backends fall back to a
    /// single default when left empty, so in practice only a missing
    /// excitation axis can empty the product — but silently returning zero
    /// scenarios made a misconfigured batch look like a successful one.
    pub fn scenarios(&self) -> Result<Vec<Scenario>, JaError> {
        if self.excitations.is_empty() {
            return Err(JaError::EmptyGrid {
                axis: "excitations",
            });
        }
        let materials: Vec<(String, JaParameters, ThermalCoefficients)> =
            if self.materials.is_empty() {
                vec![(
                    "date2006".to_owned(),
                    JaParameters::date2006(),
                    ThermalCoefficients::date2006(),
                )]
            } else {
                self.materials.clone()
            };
        let configs: Vec<(String, JaConfig)> = if self.configs.is_empty() {
            vec![("default".to_owned(), JaConfig::default())]
        } else {
            self.configs.clone()
        };
        let backends: Vec<BackendKind> = if self.backends.is_empty() {
            vec![BackendKind::DirectTimeless]
        } else {
            self.backends.clone()
        };
        // An empty axis means "no operating point at all" — not a default
        // point — so names and derived parameters stay byte-identical to
        // the four-axis expansion.
        let operating_points: Vec<Option<&(String, OperatingPoint)>> =
            if self.operating_points.is_empty() {
                vec![None]
            } else {
                self.operating_points.iter().map(Some).collect()
            };

        let mut scenarios = Vec::with_capacity(
            materials.len()
                * configs.len()
                * backends.len()
                * self.excitations.len()
                * operating_points.len(),
        );
        for (excitation_name, excitation) in &self.excitations {
            for &backend in &backends {
                for (config_name, config) in &configs {
                    for (material_name, params, thermal) in &materials {
                        for op_entry in &operating_points {
                            let base = format!(
                                "{excitation_name}/{}/{config_name}/{material_name}",
                                backend.label()
                            );
                            let mut scenario = Scenario::new(
                                match op_entry {
                                    Some((op_name, _)) => format!("{base}/{op_name}"),
                                    None => base,
                                },
                                *params,
                                *config,
                                backend,
                                excitation.clone(),
                            )
                            .with_thermal(*thermal);
                            if let Some((_, op)) = op_entry {
                                scenario = scenario.with_operating_point(*op);
                            }
                            scenarios.push(scenario);
                        }
                    }
                }
            }
        }
        Ok(scenarios)
    }

    /// Number of scenarios the grid expands to, without materialising them
    /// (empty dimensions count as their single default).
    pub fn len(&self) -> usize {
        self.excitations.len()
            * self.backends.len().max(1)
            * self.configs.len().max(1)
            * self.materials.len().max(1)
            * self.operating_points.len().max(1)
    }

    /// Whether the grid expands to no scenarios.
    pub fn is_empty(&self) -> bool {
        self.excitations.is_empty()
    }
}

/// Result of one batch entry: the scenario together with its outcome or
/// error (under the default collect-all policy a failing scenario does not
/// abort the batch).
#[derive(Debug)]
pub struct BatchEntry {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Its outcome.
    pub outcome: Result<ScenarioOutcome, JaError>,
    /// Wall-clock time this entry spent on its worker, including backend
    /// construction and metric extraction ([`ScenarioOutcome::runtime`]
    /// covers the sweep only).  Zero for cancelled entries.
    pub wall_clock: Duration,
}

/// Report of a batch run.
///
/// Entries come back in input order with bit-identical content regardless
/// of the worker count; only the timing fields (`wall_clock`, `elapsed`,
/// [`ScenarioOutcome::runtime`]) vary between runs.
#[derive(Debug)]
pub struct BatchReport {
    /// One entry per scenario, in input order.
    pub entries: Vec<BatchEntry>,
    /// Number of worker threads the batch ran on.
    pub workers: usize,
    /// Wall-clock time of the whole batch, from scheduling the first
    /// scenario to joining the last worker.
    pub elapsed: Duration,
}

impl BatchReport {
    /// Successful outcomes, in input order.
    pub fn successes(&self) -> impl Iterator<Item = &ScenarioOutcome> {
        self.entries.iter().filter_map(|e| e.outcome.as_ref().ok())
    }

    /// Failed entries, in input order.
    pub fn failures(&self) -> impl Iterator<Item = (&Scenario, &JaError)> {
        self.entries
            .iter()
            .filter_map(|e| e.outcome.as_ref().err().map(|err| (&e.scenario, err)))
    }

    /// Total sweep wall-clock across the successful entries.
    pub fn total_runtime(&self) -> Duration {
        self.successes().map(|o| o.runtime).sum()
    }

    /// Total per-entry wall-clock across all entries — the time a
    /// single-worker run would have spent executing scenarios.
    pub fn serial_runtime(&self) -> Duration {
        self.entries.iter().map(|e| e.wall_clock).sum()
    }

    /// Aggregate speedup estimate: [`BatchReport::serial_runtime`] over
    /// [`BatchReport::elapsed`] (0 when the batch was empty or too fast to
    /// measure).  Equivalently the average number of entries in flight, so
    /// it is bounded above by the worker count and matches the true
    /// speedup over a serial run only while workers are not oversubscribed
    /// (per-entry wall-clocks include time spent descheduled); the
    /// `batch_scaling` bench measures the real thing against a 1-worker
    /// run.
    pub fn speedup(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed > 0.0 {
            self.serial_runtime().as_secs_f64() / elapsed
        } else {
            0.0
        }
    }

    /// Looks an outcome up by scenario name.
    pub fn outcome(&self, name: &str) -> Option<&ScenarioOutcome> {
        self.successes().find(|o| o.name == name)
    }
}

/// Runs every scenario and collects all outcomes in input order;
/// individual failures are recorded, not propagated.
///
/// This is a thin wrapper over [`crate::exec::BatchRunner`] with the
/// default knobs: one worker per available core, collect-all error policy.
/// The report is deterministic — see [`BatchReport`].
pub fn run_batch(scenarios: impl IntoIterator<Item = Scenario>) -> BatchReport {
    BatchRunner::new().run(scenarios)
}

/// Pairwise flux-density agreement across backends on one stimulus: runs
/// the same (material, config, excitation) on every given backend and
/// reports the worst sample-wise |ΔB| between any pair, relative to the
/// peak flux density.
///
/// # Errors
///
/// Propagates the first scenario failure — an equivalence check is
/// meaningless with a missing participant.
pub fn backend_agreement(
    params: JaParameters,
    config: JaConfig,
    excitation: &Excitation,
    backends: &[BackendKind],
) -> Result<AgreementReport, JaError> {
    let mut outcomes = Vec::with_capacity(backends.len());
    for &kind in backends {
        let scenario = Scenario::new(
            format!("agreement/{}", kind.label()),
            params,
            config,
            kind,
            excitation.clone(),
        );
        outcomes.push(scenario.run()?);
    }
    let mut max_abs_diff_b = 0.0_f64;
    let mut peak = 0.0_f64;
    let mut worst_pair = None;
    for (i, a) in outcomes.iter().enumerate() {
        peak = peak.max(
            a.curve
                .points()
                .iter()
                .map(|p| p.b.as_tesla().abs())
                .fold(0.0, f64::max),
        );
        for b in &outcomes[i + 1..] {
            let diff = a
                .curve
                .points()
                .iter()
                .zip(b.curve.points())
                .map(|(x, y)| (x.b.as_tesla() - y.b.as_tesla()).abs())
                .fold(0.0, f64::max);
            if diff >= max_abs_diff_b {
                max_abs_diff_b = diff;
                worst_pair = Some((a.backend, b.backend));
            }
        }
    }
    Ok(AgreementReport {
        max_abs_diff_b,
        relative_diff: if peak > 0.0 {
            max_abs_diff_b / peak
        } else {
            0.0
        },
        worst_pair,
        outcomes,
    })
}

/// Result of [`backend_agreement`].
#[derive(Debug)]
pub struct AgreementReport {
    /// Worst sample-wise |ΔB| between any backend pair (T).
    pub max_abs_diff_b: f64,
    /// `max_abs_diff_b` relative to the peak |B| across all backends.
    pub relative_diff: f64,
    /// The pair of backends exhibiting the worst difference.
    pub worst_pair: Option<(BackendKind, BackendKind)>,
    /// Per-backend outcomes, in input order.
    pub outcomes: Vec<ScenarioOutcome>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_scenario_runs_on_every_backend() {
        for kind in BackendKind::ALL {
            let outcome = Scenario::fig1(kind, 50.0).unwrap().run().unwrap();
            let metrics = outcome.full_metrics().unwrap();
            assert!(
                metrics.b_max.as_tesla() > 1.2,
                "{}: B_max = {} T",
                kind.label(),
                metrics.b_max.as_tesla()
            );
            assert!(outcome.stats.samples > 0);
            assert_eq!(outcome.curve.len(), outcome.stats.samples as usize);
        }
    }

    #[test]
    fn grid_expands_cartesian_product_with_defaults() {
        let grid = ScenarioGrid::new()
            .backends(BackendKind::TIMELESS)
            .excitation("major", Excitation::major_loop(10_000.0, 100.0, 1).unwrap())
            .excitation("fig1", Excitation::fig1(100.0).unwrap());
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 6); // 2 excitations x 3 backends x 1 x 1
        assert!(scenarios[0].name.contains("major"));
        assert!(!grid.is_empty());
        assert_eq!(grid.len(), 6);
    }

    #[test]
    fn grid_without_excitations_is_an_error_not_zero_work() {
        let grid = ScenarioGrid::new().backends(BackendKind::ALL);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        let err = grid.scenarios().expect_err("empty grid must be rejected");
        assert!(matches!(
            err,
            JaError::EmptyGrid {
                axis: "excitations"
            }
        ));
    }

    #[test]
    fn batch_runner_collects_all_outcomes() {
        let report = run_batch(
            ScenarioGrid::new()
                .backends(BackendKind::TIMELESS)
                .excitation("major", Excitation::major_loop(10_000.0, 100.0, 1).unwrap())
                .scenarios()
                .unwrap(),
        );
        assert_eq!(report.entries.len(), 3);
        assert_eq!(report.successes().count(), 3);
        assert_eq!(report.failures().count(), 0);
        assert!(report.total_runtime() > Duration::ZERO);
        assert!(report.workers >= 1);
        assert!(report.serial_runtime() >= report.total_runtime());
        let name = &report.entries[0].scenario.name;
        assert!(report.outcome(name).is_some());
    }

    #[test]
    fn systemc_backend_rejects_configs_the_port_cannot_honour() {
        let unsupported = JaConfig::default().without_guards();
        let err = BackendKind::SystemC
            .build(JaParameters::date2006(), unsupported)
            .err()
            .expect("unsupported config must be rejected");
        assert!(matches!(err, JaError::Backend { .. }), "{err}");
        // dh_max alone is honoured.
        assert!(BackendKind::SystemC
            .build(
                JaParameters::date2006(),
                JaConfig::default().with_dh_max(25.0)
            )
            .is_ok());
    }

    #[test]
    fn batch_records_failures_without_aborting() {
        let bad = Scenario::new(
            "bad",
            JaParameters::date2006(),
            JaConfig::default().with_dh_max(-1.0),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 100.0, 1).unwrap(),
        );
        let good = Scenario::fig1(BackendKind::DirectTimeless, 100.0).unwrap();
        let report = run_batch([bad, good]);
        assert_eq!(report.failures().count(), 1);
        assert_eq!(report.successes().count(), 1);
    }

    #[test]
    fn sampled_excitation_matches_waveform() {
        let waveform = waveform::triangular::Triangular::new(1_000.0, 1.0).unwrap();
        let excitation = Excitation::sampled(&waveform, 1.0, 0.25).unwrap();
        assert_eq!(excitation.sample_count(), Some(5));
        let samples = excitation.to_samples();
        assert!((samples[1] - 1_000.0).abs() < 1e-9); // peak at t = 0.25
        assert!(Excitation::sampled(&waveform, 1.0, 0.0).is_err());
    }

    #[test]
    fn circuit_excitation_validates_its_parameters() {
        let sine = SourceWaveform::Sine {
            amplitude: 30.0,
            frequency: 50.0,
        };
        assert!(CircuitExcitation::new(sine, 1.0, 200.0, 1e-4, 0.1, 0.04, 5e-5).is_ok());
        assert!(CircuitExcitation::new(sine, 0.0, 200.0, 1e-4, 0.1, 0.04, 5e-5).is_err());
        assert!(CircuitExcitation::new(sine, 1.0, -1.0, 1e-4, 0.1, 0.04, 5e-5).is_err());
        assert!(CircuitExcitation::new(sine, 1.0, 200.0, f64::NAN, 0.1, 0.04, 5e-5).is_err());
        assert!(CircuitExcitation::new(sine, 1.0, 200.0, 1e-4, 0.1, 0.0, 5e-5).is_err());
        let bad_source = SourceWaveform::Triangular {
            amplitude: -5.0,
            frequency: 50.0,
        };
        assert!(CircuitExcitation::new(bad_source, 1.0, 200.0, 1e-4, 0.1, 0.04, 5e-5).is_err());
        let bad_freq = SourceWaveform::Sine {
            amplitude: 5.0,
            frequency: 0.0,
        };
        assert!(CircuitExcitation::new(bad_freq, 1.0, 200.0, 1e-4, 0.1, 0.04, 5e-5).is_err());
        assert!(CircuitExcitation::triangular_sweep(0.0, 100).is_err());
        assert!(CircuitExcitation::triangular_sweep(10_000.0, 0).is_err());
        assert_eq!(sine.label(), "sine");
        assert_eq!(bad_source.label(), "triangular");
    }

    #[test]
    fn sample_count_distinguishes_prescribed_from_solver_determined() {
        // Regression for the old len()/is_empty() API, which reported
        // len() == 0 with is_empty() == false for circuit excitations —
        // breaking the standard invariant.  A solver-determined count is
        // now None, not a misleading zero.
        let circuit = Excitation::Circuit(CircuitExcitation::inrush());
        assert_eq!(circuit.sample_count(), None);
        assert!(circuit.to_samples().is_empty());
        // ...but the scenario still drives a full sweep.
        let outcome = Scenario::new(
            "inrush",
            JaParameters::date2006(),
            JaConfig::default(),
            BackendKind::DirectTimeless,
            circuit,
        )
        .run()
        .unwrap();
        assert!(!outcome.curve.is_empty());

        let schedule = Excitation::major_loop(10_000.0, 250.0, 1).unwrap();
        assert_eq!(schedule.sample_count(), Some(schedule.to_samples().len()));
        let samples = Excitation::Samples(vec![0.0, 100.0, 0.0]);
        assert_eq!(samples.sample_count(), Some(3));
        assert_eq!(Excitation::Samples(Vec::new()).sample_count(), Some(0));
    }

    #[test]
    fn circuit_scenario_runs_and_reports_transient_stats() {
        let scenario = Scenario::new(
            "inrush",
            JaParameters::date2006(),
            JaConfig::default(),
            BackendKind::DirectTimeless,
            Excitation::Circuit(CircuitExcitation::inrush()),
        );
        let outcome = scenario.run().unwrap();
        let transient = outcome.transient.expect("circuit scenarios carry stats");
        assert!(transient.accepted_steps > 0);
        assert!(transient.newton_iterations > 0);
        assert_eq!(outcome.curve.len(), transient.accepted_steps + 1);
        // The inrush current saturates the core.
        let peak_h = outcome
            .curve
            .points()
            .iter()
            .map(|p| p.h.value().abs())
            .fold(0.0, f64::max);
        assert!(peak_h > 10_000.0, "peak field {peak_h} A/m");
        // Field-driven scenarios carry no transient stats.
        let field = Scenario::fig1(BackendKind::DirectTimeless, 250.0)
            .unwrap()
            .run()
            .unwrap();
        assert!(field.transient.is_none());
    }

    #[test]
    fn circuit_driven_triangular_sweep_reproduces_the_field_driven_loop() {
        // The paper's headline comparison: the same core driven through a
        // circuit by the analogue solver versus the prescribed field sweep.
        // A resistance-dominated circuit sweeps H in a triangle to
        // ±10 kA/m; its loop metrics must match the field-driven major
        // loop within 1% of the peak flux density (the workspace's
        // documented backend-agreement tolerance).
        let circuit = Scenario::new(
            "circuit-sweep",
            JaParameters::date2006(),
            JaConfig::default(),
            BackendKind::DirectTimeless,
            Excitation::Circuit(CircuitExcitation::triangular_sweep(10_000.0, 400).unwrap()),
        )
        .run()
        .unwrap();
        let field = Scenario::new(
            "field-sweep",
            JaParameters::date2006(),
            JaConfig::default(),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 100.0, 1).unwrap(),
        )
        .run()
        .unwrap();

        let circuit_metrics = circuit.full_metrics().unwrap();
        let field_metrics = field.full_metrics().unwrap();
        let peak_b = field_metrics.b_max.as_tesla();
        let tolerance = 0.01 * peak_b;
        for (name, a, b) in [
            (
                "b_max",
                circuit_metrics.b_max.as_tesla(),
                field_metrics.b_max.as_tesla(),
            ),
            (
                "remanence",
                circuit_metrics.remanence.as_tesla(),
                field_metrics.remanence.as_tesla(),
            ),
        ] {
            assert!(
                (a - b).abs() < tolerance,
                "{name}: circuit {a} vs field {b} (tolerance {tolerance})"
            );
        }
        // Coercivity is a field-axis metric: compare against 1% of the
        // peak applied field.
        assert!(
            (circuit_metrics.coercivity.value() - field_metrics.coercivity.value()).abs()
                < 0.01 * 10_000.0,
            "coercivity: circuit {} vs field {}",
            circuit_metrics.coercivity.value(),
            field_metrics.coercivity.value()
        );
    }

    #[test]
    fn adaptive_control_needs_fewer_steps_at_equal_loop_accuracy() {
        // The speed story of the adaptive controller: on the saturating
        // inrush circuit it must reproduce the fixed-step loop metrics (to
        // within 1% of peak B against a fine-step reference) while
        // accepting fewer steps than the fixed-step run.
        let run = |control: StepControl, dt: f64| {
            let mut spec = CircuitExcitation::inrush();
            spec.dt = dt;
            spec = spec.with_step_control(control);
            Scenario::new(
                "inrush",
                JaParameters::date2006(),
                JaConfig::default(),
                BackendKind::DirectTimeless,
                Excitation::Circuit(spec),
            )
            .run()
            .unwrap()
        };

        let reference = run(StepControl::Fixed, 5e-6);
        let fixed = run(StepControl::Fixed, 5e-5);
        let adaptive = run(
            StepControl::Adaptive(CircuitExcitation::adaptive_defaults()),
            5e-5,
        );

        // The inrush flux is DC-offset (it never recrosses B = 0), so the
        // closable-loop metrics are undefined; the loop-accuracy metric
        // here is the peak flux density of the trace.
        let peak_b = |outcome: &ScenarioOutcome| {
            outcome
                .curve
                .points()
                .iter()
                .map(|p| p.b.as_tesla().abs())
                .fold(0.0, f64::max)
        };
        let b_ref = peak_b(&reference);
        let b_fixed = peak_b(&fixed);
        let b_adaptive = peak_b(&adaptive);
        let tolerance = 0.01 * b_ref;
        assert!(
            (b_fixed - b_ref).abs() < tolerance,
            "fixed b_max {b_fixed} vs reference {b_ref}"
        );
        assert!(
            (b_adaptive - b_ref).abs() < tolerance,
            "adaptive b_max {b_adaptive} vs reference {b_ref}"
        );

        let fixed_steps = fixed.transient.unwrap().accepted_steps;
        let adaptive_steps = adaptive.transient.unwrap().accepted_steps;
        assert!(
            adaptive_steps < fixed_steps,
            "adaptive {adaptive_steps} steps vs fixed {fixed_steps}"
        );
    }

    #[test]
    fn circuit_scenarios_join_mixed_grids() {
        let grid = ScenarioGrid::new()
            .backend(BackendKind::DirectTimeless)
            .excitation("major", Excitation::major_loop(10_000.0, 250.0, 1).unwrap())
            .excitation("inrush", Excitation::Circuit(CircuitExcitation::inrush()));
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 2);
        let report = run_batch(scenarios);
        assert_eq!(report.successes().count(), 2);
        let inrush = report
            .successes()
            .find(|o| o.name.contains("inrush"))
            .unwrap();
        assert!(inrush.transient.is_some());
        let major = report
            .successes()
            .find(|o| o.name.contains("major"))
            .unwrap();
        assert!(major.transient.is_none());
    }

    #[test]
    fn pwm_circuit_excitation_validates_and_runs() {
        let pwm = |duty| SourceWaveform::Pwm {
            amplitude: 30.0,
            frequency: 50.0,
            duty,
        };
        assert_eq!(pwm(0.5).label(), "pwm");
        assert_eq!(pwm(0.5).duty(), Some(0.5));
        assert_eq!(
            SourceWaveform::Sine {
                amplitude: 1.0,
                frequency: 1.0
            }
            .duty(),
            None
        );
        for bad in [0.0, 1.0, -0.2, f64::NAN] {
            let err = CircuitExcitation::new(pwm(bad), 1.0, 200.0, 1e-4, 0.1, 0.04, 5e-5)
                .expect_err("duty outside (0, 1) must be rejected");
            assert!(
                matches!(err, JaError::InvalidConfig { name: "duty", .. }),
                "{err}"
            );
        }
        let spec = CircuitExcitation::new(pwm(0.5), 1.0, 200.0, 1e-4, 0.1, 0.04, 5e-5).unwrap();
        let outcome = Scenario::new(
            "pwm",
            JaParameters::date2006(),
            JaConfig::default(),
            BackendKind::DirectTimeless,
            Excitation::Circuit(spec),
        )
        .run()
        .unwrap();
        assert!(!outcome.curve.is_empty());
        assert!(outcome.transient.is_some());
        // A symmetric 50% PWM drives the field both ways.
        let (min_h, max_h) = outcome
            .curve
            .points()
            .iter()
            .map(|p| p.h.value())
            .fold((f64::MAX, f64::MIN), |(lo, hi), h| (lo.min(h), hi.max(h)));
        assert!(min_h < 0.0 && max_h > 0.0, "H range [{min_h}, {max_h}]");
    }

    #[test]
    fn degauss_excitation_walks_the_remanence_towards_zero() {
        let params = JaParameters::date2006();
        let config = JaConfig::default();
        let major = Scenario::new(
            "major",
            params,
            config,
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 50.0, 1).unwrap(),
        )
        .run()
        .unwrap();
        let remanence = major.full_metrics().unwrap().remanence.as_tesla().abs();
        let degauss = Scenario::new(
            "degauss",
            params,
            config,
            BackendKind::DirectTimeless,
            Excitation::demagnetisation(10_000.0, 50.0, 0.8, 50.0).unwrap(),
        )
        .run()
        .unwrap();
        let final_b = degauss.curve.points().last().unwrap().b.as_tesla().abs();
        assert!(
            final_b < 0.2 * remanence,
            "degauss left {final_b} T against remanence {remanence} T"
        );
        assert!(Excitation::demagnetisation(10_000.0, 50.0, 1.5, 50.0).is_err());
    }

    #[test]
    fn operating_point_axis_appends_a_fifth_name_segment() {
        let base = ScenarioGrid::new()
            .backends(BackendKind::TIMELESS)
            .excitation("major", Excitation::major_loop(10_000.0, 100.0, 1).unwrap());
        // Without the axis: four segments, no operating point — identical
        // to the historical expansion.
        for scenario in base.scenarios().unwrap() {
            assert_eq!(scenario.name.split('/').count(), 4);
            assert!(scenario.operating_point.is_none());
        }
        let grid = base
            .operating_point("t-40", OperatingPoint::at_temperature(-40.0))
            .operating_point("t125", OperatingPoint::at_temperature(125.0));
        assert_eq!(grid.len(), 6);
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 6);
        for scenario in &scenarios {
            assert_eq!(scenario.name.split('/').count(), 5, "{}", scenario.name);
            assert!(scenario.operating_point.is_some());
        }
        assert!(scenarios[0].name.ends_with("/t-40"));
        assert!(scenarios[1].name.ends_with("/t125"));
    }

    #[test]
    fn resolved_params_applies_thermal_scaling_in_one_place() {
        let params = JaParameters::date2006();
        let thermal = ThermalCoefficients::date2006();
        let scenario = Scenario::new(
            "hot",
            params,
            JaConfig::default(),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 100.0, 1).unwrap(),
        )
        .with_thermal(thermal)
        .with_operating_point(OperatingPoint::at_temperature(125.0));
        let resolved = scenario.resolved_params().unwrap();
        assert_eq!(resolved, params.at_temperature(125.0, &thermal).unwrap());
        assert!(resolved.m_sat.value() < params.m_sat.value());
        // No temperature: the reference parameters pass through untouched.
        let reference = Scenario::new(
            "ref",
            params,
            JaConfig::default(),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 100.0, 1).unwrap(),
        );
        assert_eq!(reference.resolved_params().unwrap(), params);
        // An unphysical temperature fails the scenario, loudly.
        let bad = reference.with_operating_point(OperatingPoint::at_temperature(2_000.0));
        assert!(matches!(
            bad.resolved_params().unwrap_err(),
            JaError::Material(_)
        ));
        assert!(matches!(bad.run().unwrap_err(), JaError::Material(_)));
    }

    #[test]
    fn loss_is_reported_when_geometry_and_frequency_are_set() {
        let excitation = Excitation::major_loop(10_000.0, 100.0, 1).unwrap();
        let plain = Scenario::new(
            "plain",
            JaParameters::date2006(),
            JaConfig::default(),
            BackendKind::DirectTimeless,
            excitation.clone(),
        );
        assert!(plain.run().unwrap().loss.is_none());
        let op = OperatingPoint::new()
            .with_geometry(CoreGeometry::demo())
            .with_frequency(50.0)
            .with_lamination(LaminationSpec::silicon_steel_0p35mm());
        assert!(!op.is_empty());
        assert!(op.validate().is_ok());
        assert!(OperatingPoint::new()
            .with_frequency(0.0)
            .validate()
            .is_err());
        assert!(OperatingPoint::at_temperature(f64::NAN).validate().is_err());
        let outcome = plain.clone().with_operating_point(op).run().unwrap();
        let loss = outcome.loss.expect("geometry + frequency enables loss");
        assert!(loss.hysteresis_w > 0.0);
        assert!(loss.eddy_w > 0.0);
        assert!((loss.total_w - loss.hysteresis_w - loss.eddy_w).abs() < 1e-12);
        assert_eq!(outcome.operating_point, Some(op));
        // Geometry without frequency (or vice versa) stays silent.
        let partial =
            plain.with_operating_point(OperatingPoint::new().with_geometry(CoreGeometry::demo()));
        assert!(partial.run().unwrap().loss.is_none());
    }

    #[test]
    fn timeless_backends_agree_on_fig1() {
        let report = backend_agreement(
            JaParameters::date2006(),
            JaConfig::default(),
            &Excitation::fig1(50.0).unwrap(),
            &BackendKind::TIMELESS,
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 3);
        assert!(
            report.relative_diff < 0.05,
            "relative diff {} (worst pair {:?})",
            report.relative_diff,
            report.worst_pair
        );
    }
}
