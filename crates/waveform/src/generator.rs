//! The [`Waveform`] trait: a scalar function of time.

/// A scalar excitation waveform `x(t)`.
///
/// Implementations must be deterministic and defined for every `t ≥ 0`.
/// The trait is object-safe so heterogeneous stimulus lists can be stored as
/// `Box<dyn Waveform>`.
pub trait Waveform {
    /// Value of the waveform at time `t` (seconds).
    fn value(&self, t: f64) -> f64;

    /// Fundamental period in seconds, if the waveform is periodic.
    fn period(&self) -> Option<f64> {
        None
    }

    /// Numerical time derivative of the waveform at `t`, using a central
    /// difference with a step scaled to the period (or 1 µs for aperiodic
    /// waveforms).  Implementations with an analytic derivative should
    /// override this.
    fn derivative(&self, t: f64) -> f64 {
        let dt = self.period().map_or(1e-6, |p| p * 1e-6);
        (self.value(t + dt) - self.value(t - dt)) / (2.0 * dt)
    }
}

impl<W: Waveform + ?Sized> Waveform for &W {
    fn value(&self, t: f64) -> f64 {
        (**self).value(t)
    }

    fn period(&self) -> Option<f64> {
        (**self).period()
    }

    fn derivative(&self, t: f64) -> f64 {
        (**self).derivative(t)
    }
}

impl<W: Waveform + ?Sized> Waveform for Box<W> {
    fn value(&self, t: f64) -> f64 {
        (**self).value(t)
    }

    fn period(&self) -> Option<f64> {
        (**self).period()
    }

    fn derivative(&self, t: f64) -> f64 {
        (**self).derivative(t)
    }
}

/// A constant waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Waveform for Constant {
    fn value(&self, _t: f64) -> f64 {
        self.0
    }

    fn derivative(&self, _t: f64) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_waveform() {
        let w = Constant(5.0);
        assert_eq!(w.value(0.0), 5.0);
        assert_eq!(w.value(123.0), 5.0);
        assert_eq!(w.derivative(1.0), 0.0);
        assert_eq!(w.period(), None);
    }

    #[test]
    fn references_and_boxes_delegate() {
        let w = Constant(2.0);
        let by_ref: &dyn Waveform = &w;
        assert_eq!(by_ref.value(0.5), 2.0);
        let boxed: Box<dyn Waveform> = Box::new(w);
        assert_eq!(boxed.value(0.5), 2.0);
        assert_eq!(boxed.period(), None);
    }

    #[test]
    fn default_derivative_uses_finite_difference() {
        struct Ramp;
        impl Waveform for Ramp {
            fn value(&self, t: f64) -> f64 {
                3.0 * t
            }
        }
        let d = Ramp.derivative(1.0);
        assert!((d - 3.0).abs() < 1e-6);
    }
}
