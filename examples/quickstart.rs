//! Quickstart: reproduce the paper's Fig. 1 BH curve from the library API.
//!
//! Builds the timeless Jiles–Atherton model with the paper's parameters,
//! sweeps it through a triangular DC excitation with nested non-biased
//! minor loops, prints the loop metrics and renders an ASCII version of the
//! BH plot.  The full trace is written to `target/fig1_bh_curve.csv`.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::fs::File;

use ja_repro::hdl_models::scenario::{run_batch, BackendKind, Excitation, ScenarioGrid};
use ja_repro::ja_hysteresis::model::JilesAtherton;
use ja_repro::ja_hysteresis::sweep::sweep_schedule;
use ja_repro::magnetics::loop_analysis;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::waveform::export::{ascii_plot, write_csv};
use ja_repro::waveform::schedule::FieldSchedule;

fn main() -> Result<(), Box<dyn Error>> {
    // The paper's material: k = 4000 A/m, c = 0.1, Msat = 1.6 MA/m,
    // alpha = 0.003, a = 2000 A/m, a2 = 3500 A/m.
    let params = JaParameters::date2006();
    println!("material parameters: {params:#?}");
    println!(
        "saturation flux density ~ {:.3} T",
        params.saturation_flux_density().as_tesla()
    );

    // Fig. 1 stimulus: major loop to +/-10 kA/m, then non-biased minor loops.
    let schedule = FieldSchedule::nested_minor_loops(10_000.0, &[7_500.0, 5_000.0, 2_500.0], 10.0)?;
    println!(
        "field schedule: {} samples, peak {} kA/m",
        schedule.len(),
        schedule.peak() / 1000.0
    );

    let mut model = JilesAtherton::new(params)?;
    let result = sweep_schedule(&mut model, &schedule)?;

    let metrics = loop_analysis::loop_metrics(result.curve())?;
    println!("\n== loop metrics (compare with Fig. 1 axes: +/-10 kA/m, ~+/-2 T) ==");
    println!("  B_max        = {:.3} T", metrics.b_max.as_tesla());
    println!(
        "  H_max        = {:.1} kA/m",
        metrics.h_max.as_kiloamperes_per_meter()
    );
    println!("  coercivity   = {:.0} A/m", metrics.coercivity.value());
    println!("  remanence    = {:.3} T", metrics.remanence.as_tesla());
    println!(
        "  loop area    = {:.0} J/m^3 per full trace",
        metrics.loop_area
    );
    println!(
        "  negative dB/dH samples = {}",
        metrics.negative_slope_samples
    );
    println!(
        "  slope updates = {} over {} samples",
        result.updates(),
        result.samples()
    );

    // ASCII rendition of Fig. 1.
    let h_kam: Vec<f64> = result
        .curve()
        .points()
        .iter()
        .map(|p| p.h.as_kiloamperes_per_meter())
        .collect();
    let b: Vec<f64> = result
        .curve()
        .points()
        .iter()
        .map(|p| p.b.as_tesla())
        .collect();
    println!("\nBH curve (x: H in kA/m, y: B in T):");
    println!("{}", ascii_plot(&h_kam, &b, 72, 24)?);

    // CSV export for external plotting.
    std::fs::create_dir_all("target")?;
    let file = File::create("target/fig1_bh_curve.csv")?;
    write_csv(result.trace(), file)?;
    println!("full trace written to target/fig1_bh_curve.csv");

    // The same experiment through the scenario engine: one grid, all four
    // implementation styles, run as a batch (in parallel, one worker per
    // available core — the report order and values are deterministic).
    let grid = ScenarioGrid::new()
        .backends(BackendKind::ALL)
        .excitation("fig1", Excitation::fig1(10.0)?);
    let report = run_batch(grid.scenarios()?);
    println!("\n== the same sweep on every backend (scenario engine) ==");
    println!(
        "{:<42} {:>8} {:>10} {:>10} {:>10}",
        "scenario", "Bmax[T]", "Hc[A/m]", "updates", "time[ms]"
    );
    for outcome in report.successes() {
        let m = outcome.full_metrics()?;
        println!(
            "{:<42} {:>8.3} {:>10.0} {:>10} {:>10.1}",
            outcome.name,
            m.b_max.as_tesla(),
            m.coercivity.value(),
            outcome.stats.updates,
            outcome.runtime.as_secs_f64() * 1e3
        );
    }
    for (scenario, err) in report.failures() {
        println!("{:<42} failed: {err}", scenario.name);
    }
    println!(
        "batch: {} workers, {:.1} ms elapsed, {:.2}x speedup over serial",
        report.workers,
        report.elapsed.as_secs_f64() * 1e3,
        report.speedup()
    );
    Ok(())
}
