//! A minimal SystemC-like discrete-event simulation kernel.
//!
//! The paper implements its hysteresis model as three SystemC *method
//! processes* (`core`, `monitorH`, `Integral`) communicating through
//! signals.  Rust has no SystemC, so this crate rebuilds the subset of the
//! kernel those processes rely on:
//!
//! * **signals** with evaluate/update (delta-cycle) semantics — a write is
//!   not visible to readers until the next delta cycle ([`signal`]);
//! * **method processes** with static sensitivity lists, re-triggered
//!   whenever a signal they are sensitive to changes value ([`process`]);
//! * a **scheduler** that runs delta cycles to quiescence and advances
//!   simulated time between timed notifications ([`kernel`], [`scheduler`]);
//! * a **recorder** that captures signal values over time for later
//!   analysis ([`recorder`]).
//!
//! The kernel is deliberately single-threaded and allocation-light; it is a
//! behavioural-modelling substrate, not a general HDL simulator.
//!
//! # Example
//!
//! ```
//! use hdl_kernel::kernel::Kernel;
//! use hdl_kernel::value::Value;
//!
//! # fn main() -> Result<(), hdl_kernel::KernelError> {
//! let mut kernel = Kernel::new();
//! let a = kernel.add_signal("a", Value::Real(0.0));
//! let doubled = kernel.add_signal("doubled", Value::Real(0.0));
//!
//! // A method process sensitive to `a` that writes 2*a to `doubled`.
//! kernel.add_process("double", &[a], move |ctx| {
//!     let x = ctx.read_real(a)?;
//!     ctx.write_real(doubled, 2.0 * x)
//! })?;
//!
//! kernel.write_initial(a, Value::Real(21.0))?;
//! kernel.settle()?;
//! assert_eq!(kernel.read(doubled)?.as_real()?, 42.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod kernel;
pub mod process;
pub mod recorder;
pub mod scheduler;
pub mod signal;
pub mod time;
pub mod value;

pub use error::KernelError;
pub use kernel::Kernel;
pub use time::SimTime;
pub use value::Value;
