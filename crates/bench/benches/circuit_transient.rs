//! Circuit-driven transient: the JA core inside the MNA solver, fixed-step
//! versus adaptive step control.
//!
//! Reproduces the paper's "model inside an analogue solver" setting as a
//! scenario workload: the magnetising-inrush circuit (sine source → 1 Ω →
//! 200-turn winding on the paper's core) is solved by the transient engine
//! and the solver-chosen field trajectory drives the direct timeless
//! backend.  The experiment table reports the step/Newton economics — the
//! adaptive controller must reach the fixed-step loop accuracy in fewer
//! accepted steps (asserted by `hdl_models::scenario` tests; measured
//! here).

use criterion::{black_box, Criterion};
use hdl_models::scenario::{BackendKind, CircuitExcitation, Excitation, Scenario, StepControl};
use ja_hysteresis::config::JaConfig;
use magnetics::material::JaParameters;

fn scenario(control: StepControl) -> Scenario {
    Scenario::new(
        "circuit-inrush",
        JaParameters::date2006(),
        JaConfig::default(),
        BackendKind::DirectTimeless,
        Excitation::Circuit(CircuitExcitation::inrush().with_step_control(control)),
    )
}

fn controls() -> [(&'static str, StepControl); 2] {
    [
        ("fixed_step", StepControl::Fixed),
        (
            "adaptive",
            StepControl::Adaptive(CircuitExcitation::adaptive_defaults()),
        ),
    ]
}

fn print_experiment() {
    println!("== circuit transient: inrush circuit, fixed vs adaptive step control ==");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "control", "accepted", "rejected", "newton", "nonconv", "peakB[T]", "time[ms]"
    );
    for (label, control) in controls() {
        let outcome = scenario(control).run().expect("scenario");
        let stats = outcome.transient.expect("circuit scenario stats");
        let peak_b = outcome
            .curve
            .points()
            .iter()
            .map(|p| p.b.as_tesla().abs())
            .fold(0.0, f64::max);
        println!(
            "{label:<12} {:>9} {:>9} {:>9} {:>9} {:>10.4} {:>10.3}",
            stats.accepted_steps,
            stats.rejected_steps,
            stats.newton_iterations,
            stats.non_converged_steps,
            peak_b,
            outcome.runtime.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\n(equal-accuracy step economy is asserted by the scenario tests; this\n\
         bench tracks the wall-clock of both controllers)\n"
    );
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_transient");
    group.sample_size(10);
    for (label, control) in controls() {
        let scenario = scenario(control);
        group.bench_function(label, move |b| {
            b.iter(|| black_box(scenario.run().expect("scenario")))
        });
    }
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
