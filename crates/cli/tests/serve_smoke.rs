//! End-to-end tests of the `ja serve` daemon: a real child process, real
//! TCP, and the two guarantees the service is built on — a served report
//! is **byte-identical** to the offline subcommand's output for the same
//! request, and an identical repeat is answered from the
//! content-addressed cache with the identical bytes (observable via the
//! opt-in `X-Ja-Cache` marker). Graceful shutdown (POST /v1/shutdown and
//! SIGTERM) must drain to exit status 0.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn ja(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ja"))
        .args(args)
        .output()
        .expect("spawn ja")
}

fn ja_ok(args: &[&str]) -> String {
    let output = ja(args);
    assert!(
        output.status.success(),
        "ja {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("stdout is UTF-8")
}

/// A `ja serve` child on an ephemeral port, discovered via `--port-file`.
struct Server {
    child: Child,
    addr: SocketAddr,
    port_file: PathBuf,
}

impl Server {
    fn spawn(tag: &str) -> Server {
        let port_file =
            std::env::temp_dir().join(format!("ja-serve-smoke-{}-{tag}.port", std::process::id()));
        let _ = std::fs::remove_file(&port_file);
        let mut child = Command::new(env!("CARGO_BIN_EXE_ja"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                port_file.to_str().unwrap(),
                "--eval-workers",
                "2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ja serve");
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                panic!("ja serve exited before binding: {status}");
            }
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                    break addr;
                }
            }
            assert!(
                Instant::now() < deadline,
                "server never wrote the port file"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        Server {
            child,
            addr,
            port_file,
        }
    }

    /// Drains the server via `POST /v1/shutdown` and asserts a clean exit.
    fn shutdown(mut self) {
        let response = request(self.addr, "POST", "/v1/shutdown", None);
        assert_eq!(response.status, 200, "{}", response.body);
        assert!(response.body.contains("\"draining\": true"));
        let status = self.child.wait().expect("wait for ja serve");
        assert_eq!(status.code(), Some(0), "drain must exit 0");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Only reached on panic or signal tests: don't leak the daemon.
        if self.child.try_wait().map_or(true, |s| s.is_none()) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
        let _ = std::fs::remove_file(&self.port_file);
    }
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(key, _)| key.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
    }
}

/// A minimal HTTP/1.1 client matching the server's one-request,
/// `Connection: close` framing.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = body.unwrap_or("");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|line| line.split_once(": "))
        .map(|(key, value)| (key.to_owned(), value.to_owned()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_owned(),
    }
}

/// Posts a request document twice and asserts the cache contract: first a
/// miss, then a hit, both byte-identical to `offline`.
fn assert_served_matches_offline(server: &Server, request_body: &str, offline: &str) {
    let first = request(server.addr, "POST", "/v1/eval", Some(request_body));
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("X-Ja-Cache"), Some("miss"));
    let key = first
        .header("X-Ja-Cache-Key")
        .expect("cache key")
        .to_owned();
    assert_eq!(key.len(), 32, "cache key is 128 bits of hex: {key}");
    assert_eq!(
        first.body, offline,
        "served report must be byte-identical to the offline CLI"
    );

    let second = request(server.addr, "POST", "/v1/eval", Some(request_body));
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Ja-Cache"), Some("hit"));
    assert_eq!(second.header("X-Ja-Cache-Key"), Some(key.as_str()));
    assert_eq!(
        second.body, offline,
        "cache hit must return the identical bytes"
    );
}

#[test]
fn served_batch_report_is_byte_identical_to_offline_and_cached() {
    // The fixture request mirrors grid.conf axis by axis, so the offline
    // run is the ground truth for the exact same 8 scenarios.
    let config = fixture("grid.conf");
    let offline = ja_ok(&[
        "batch",
        "--config",
        config.to_str().unwrap(),
        "--workers",
        "1",
    ]);
    let request_body = std::fs::read_to_string(fixture("serve_batch.json")).unwrap();

    let server = Server::spawn("batch");
    assert_served_matches_offline(&server, &request_body, &offline);

    // The cache key is content-addressed: reordering JSON fields must
    // land on the same entry (still a hit, still the same bytes).
    let doc = ja_hysteresis::json::JsonValue::parse(&request_body).unwrap();
    let reordered = reorder_fields(&doc).to_pretty_string();
    assert_ne!(reordered, request_body.trim_end());
    let third = request(server.addr, "POST", "/v1/eval", Some(&reordered));
    assert_eq!(third.status, 200, "{}", third.body);
    assert_eq!(third.header("X-Ja-Cache"), Some("hit"));
    assert_eq!(third.body, offline);

    server.shutdown();
}

#[test]
fn served_thermal_pwm_batch_matches_the_offline_grid_config() {
    // serve_thermal.json mirrors grid_thermal.conf axis by axis — the PWM
    // circuit drive, the degauss sweep, the temperature axis and the
    // laminated core geometry — so the served report must be
    // byte-identical to the offline run of the same four operating-point
    // scenarios (and the repeat must be a cache hit with the same bytes).
    let config = fixture("grid_thermal.conf");
    let offline = ja_ok(&[
        "batch",
        "--config",
        config.to_str().unwrap(),
        "--workers",
        "1",
    ]);
    for needle in [
        "pwm(amplitude=30,frequency=50,duty=0.25)",
        "degauss(h_start=10000,h_stop=500,decay=0.5,step=100)",
        "/t-40\"",
        "/t125\"",
        "\"temperature_c\": -40",
        "\"eddy_w\":",
    ] {
        assert!(offline.contains(needle), "offline report lacks {needle:?}");
    }
    let request_body = std::fs::read_to_string(fixture("serve_thermal.json")).unwrap();

    let server = Server::spawn("thermal");
    assert_served_matches_offline(&server, &request_body, &offline);
    server.shutdown();
}

/// Recursively reverses every object's field order — different bytes,
/// same content address.
fn reorder_fields(value: &ja_hysteresis::json::JsonValue) -> ja_hysteresis::json::JsonValue {
    use ja_hysteresis::json::JsonValue;
    match value {
        JsonValue::Object(fields) => JsonValue::Object(
            fields
                .iter()
                .rev()
                .map(|(key, value)| (key.clone(), reorder_fields(value)))
                .collect(),
        ),
        JsonValue::Array(items) => JsonValue::Array(items.iter().map(reorder_fields).collect()),
        other => other.clone(),
    }
}

#[test]
fn served_ndjson_stream_matches_the_offline_ndjson_file() {
    let config = fixture("grid.conf");
    let offline = ja_ok(&[
        "batch",
        "--config",
        config.to_str().unwrap(),
        "--format",
        "ndjson",
        "--workers",
        "1",
    ]);
    // The fixture mirrors grid.conf; swapping the options in turns the
    // buffered request into a streamed one.
    let request_body = std::fs::read_to_string(fixture("serve_batch.json"))
        .unwrap()
        .replace("{\"cache_info\": true}", "{\"stream\": true}");
    assert!(request_body.contains("\"stream\": true"), "{request_body}");

    let server = Server::spawn("stream");
    let response = request(server.addr, "POST", "/v1/eval", Some(&request_body));
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(
        response.header("Content-Type"),
        Some("application/x-ndjson")
    );
    assert_eq!(
        response.header("Content-Length"),
        None,
        "streamed bodies are EOF-delimited"
    );
    assert_eq!(
        response.body, offline,
        "streamed bytes must equal the offline `ja batch --format ndjson` file"
    );

    // Streaming bypasses the result cache: an identical repeat evaluates
    // again and still produces the identical bytes.
    let again = request(server.addr, "POST", "/v1/eval", Some(&request_body));
    assert_eq!(again.header("X-Ja-Cache"), None);
    assert_eq!(again.body, offline);

    server.shutdown();
}

#[test]
fn served_fit_report_is_byte_identical_to_offline_and_cached() {
    // serve_fit.json carries measured_loop.csv's h/b columns verbatim
    // (same number tokens → same f64s), so this offline invocation is
    // the ground truth for the same four-start fit.
    let input = fixture("measured_loop.csv");
    let offline = ja_ok(&[
        "fit",
        "--input",
        input.to_str().unwrap(),
        "--starts",
        "4",
        "--seed",
        "42",
    ]);
    let request_body = std::fs::read_to_string(fixture("serve_fit.json")).unwrap();

    let server = Server::spawn("fit");
    assert_served_matches_offline(&server, &request_body, &offline);
    server.shutdown();
}

#[test]
fn health_errors_and_shutdown_speak_the_report_schema() {
    let server = Server::spawn("errors");

    let health = request(server.addr, "GET", "/v1/health", None);
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"kind\": \"health\""));
    assert!(health.body.contains("\"status\": \"ok\""));

    // Every failure is a kind:"error" document whose `status` mirrors the
    // HTTP status code.
    for (method, path, body, status, fragment) in [
        ("POST", "/v1/eval", Some("{not json"), 400, "invalid JSON"),
        (
            "POST",
            "/v1/eval",
            Some("{\"schema_version\": 1, \"kind\": \"guess\"}"),
            400,
            "unknown request kind",
        ),
        ("GET", "/v1/nope", None, 404, "unknown path"),
        ("DELETE", "/v1/health", None, 405, "not allowed"),
    ] {
        let response = request(server.addr, method, path, body);
        assert_eq!(
            response.status, status,
            "{method} {path}: {}",
            response.body
        );
        assert!(
            response.body.contains("\"kind\": \"error\""),
            "{method} {path}: {}",
            response.body
        );
        assert!(
            response.body.contains(&format!("\"status\": {status}")),
            "{method} {path}: {}",
            response.body
        );
        assert!(
            response.body.contains(fragment),
            "{method} {path}: {} should mention {fragment:?}",
            response.body
        );
    }

    server.shutdown();
}

#[cfg(unix)]
#[test]
fn sigterm_drains_to_a_clean_exit() {
    let mut server = Server::spawn("sigterm");
    let status = Command::new("kill")
        .args(["-s", "TERM", &server.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let status = server.child.wait().expect("wait after SIGTERM");
    assert_eq!(status.code(), Some(0), "SIGTERM must drain, not abort");
}

#[test]
fn bench_serve_smoke_reports_both_phases() {
    let out =
        std::env::temp_dir().join(format!("ja-serve-smoke-{}-bench.json", std::process::id()));
    let table = ja_ok(&["bench-serve", "--smoke", "--json", out.to_str().unwrap()]);
    assert!(table.contains("batch_miss"), "{table}");
    assert!(table.contains("batch_hit"), "{table}");
    let doc = std::fs::read_to_string(&out).unwrap();
    let _ = std::fs::remove_file(&out);
    let doc = ja_hysteresis::json::JsonValue::parse(&doc).unwrap();
    assert_eq!(
        doc.get("kind")
            .and_then(ja_hysteresis::json::JsonValue::as_str),
        Some("bench")
    );
    let benches = doc.get("benches").expect("benches object");
    for id in ["serve/batch_miss", "serve/batch_hit"] {
        let median = benches
            .get(id)
            .and_then(ja_hysteresis::json::JsonValue::as_f64)
            .unwrap_or_else(|| panic!("missing bench id {id}"));
        assert!(median > 0.0, "{id} median {median}");
    }
}
