//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, stored as an integer number of picoseconds.
///
/// Integer storage keeps time comparisons exact (no accumulation of floating
/// point error as the event queue advances), mirroring SystemC's
/// `sc_time` resolution model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        Self(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000_000)
    }

    /// Creates a time from seconds expressed as a float, rounding to the
    /// nearest picosecond (saturating at zero for negative input).
    pub fn from_seconds(seconds: f64) -> Self {
        if seconds <= 0.0 {
            return Self(0);
        }
        Self((seconds * 1e12).round() as u64)
    }

    /// The value in picoseconds.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// The value in seconds as a float.
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{} s", self.0 as f64 / 1e12)
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{} ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{} us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{} ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_nanos(1).as_picos(), 1_000);
        assert_eq!(SimTime::from_micros(1).as_picos(), 1_000_000);
        assert_eq!(SimTime::from_millis(1).as_picos(), 1_000_000_000);
        assert_eq!(SimTime::from_seconds(1.0).as_picos(), 1_000_000_000_000);
        assert_eq!(SimTime::from_seconds(-1.0), SimTime::ZERO);
    }

    #[test]
    fn seconds_roundtrip() {
        let t = SimTime::from_seconds(0.0025);
        assert!((t.as_seconds() - 0.0025).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(3);
        assert_eq!((a + b).as_picos(), 8_000);
        assert_eq!((a - b).as_picos(), 2_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(b < a);
        let mut c = a;
        c += b;
        assert_eq!(c.as_picos(), 8_000);
    }

    #[test]
    fn display_uses_sensible_units() {
        assert_eq!(SimTime::from_picos(5).to_string(), "5 ps");
        assert_eq!(SimTime::from_nanos(5).to_string(), "5 ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5 us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5 ms");
        assert_eq!(SimTime::from_seconds(5.0).to_string(), "5 s");
    }
}
