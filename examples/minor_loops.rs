//! Minor-loop robustness: "various minor loop sizes and in different
//! positions" (paper, §2), plus a demagnetisation sweep — a scenario grid
//! executed by the batch runner.
//!
//! Run with: `cargo run --example minor_loops`

use std::error::Error;

use ja_repro::hdl_models::scenario::{run_batch, BackendKind, Excitation, Scenario};
use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::magnetics::loop_analysis;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::waveform::export::ascii_plot;
use ja_repro::waveform::schedule::FieldSchedule;

fn main() -> Result<(), Box<dyn Error>> {
    // A grid of loop positions (bias) and sizes (amplitude), one scenario
    // per case, run as one batch.
    let biases = [0.0, 2_000.0, 5_000.0, -4_000.0];
    let amplitudes = [500.0, 1_500.0, 3_000.0];
    let step = 10.0;
    let mut cases = Vec::new();
    let mut scenarios = Vec::new();
    for &bias in &biases {
        for &amplitude in &amplitudes {
            cases.push((bias, amplitude));
            scenarios.push(Scenario::new(
                format!("minor-loop/bias{bias}/amp{amplitude}"),
                JaParameters::date2006(),
                JaConfig::default(),
                BackendKind::DirectTimeless,
                Excitation::biased_minor_loop(bias, amplitude, 5, step)?,
            ));
        }
    }
    let report = run_batch(scenarios);

    println!("bias [A/m]  amplitude [A/m]  loop area [J/m^3]  closure |dB| [T]  neg.slope samples");
    let mut clean = true;
    for (&(bias, amplitude), entry) in cases.iter().zip(&report.entries) {
        let outcome = entry.outcome.as_ref().map_err(|e| e.to_string())?;
        let period = (4.0 * amplitude / step).round() as usize;
        let closure = loop_analysis::loop_closure_error(&outcome.curve, period).unwrap_or(f64::NAN);
        let negative_slopes = outcome.curve.negative_slope_samples();
        clean &= negative_slopes == 0;
        println!(
            "{:>10.0}  {:>15.0}  {:>17.1}  {:>16.4}  {:>18}",
            bias,
            amplitude,
            loop_analysis::loop_area(&outcome.curve),
            closure,
            negative_slopes
        );
    }
    println!(
        "\nall {} loops produced without numerical difficulties: {clean}",
        report.entries.len(),
    );
    println!(
        "batch sweep time: {:.1} ms across {} workers ({:.1} ms wall-clock, {:.2}x speedup)",
        report.total_runtime().as_secs_f64() * 1e3,
        report.workers,
        report.elapsed.as_secs_f64() * 1e3,
        report.speedup()
    );

    // Demagnetisation: decaying loop amplitudes walk the core back towards
    // the origin through a sequence of shrinking minor loops.  The
    // magnetise and demagnetise phases are one excitation so the scenario
    // carries the core's history.
    let mut samples = FieldSchedule::major_loop(10_000.0, 10.0, 1)?.to_samples();
    let remanent_index = samples.len().saturating_sub(1);
    samples.extend(FieldSchedule::demagnetisation(10_000.0, 50.0, 0.85, 10.0)?.iter());
    let outcome = Scenario::new(
        "demagnetisation",
        JaParameters::date2006(),
        JaConfig::default(),
        BackendKind::DirectTimeless,
        Excitation::Samples(samples),
    )
    .run()?;
    let points = outcome.curve.points();
    let remanent = points[remanent_index].b.as_tesla();
    let final_b = points.last().map(|p| p.b.as_tesla()).unwrap_or(0.0);
    println!("\ndemagnetisation: B before = {remanent:.3} T, after = {final_b:.3} T");

    let demag = &points[remanent_index + 1..];
    let h: Vec<f64> = demag.iter().map(|p| p.h.value() / 1000.0).collect();
    let b: Vec<f64> = demag.iter().map(|p| p.b.as_tesla()).collect();
    println!("\ndemagnetisation trajectory (x: H in kA/m, y: B in T):");
    println!("{}", ascii_plot(&h, &b, 72, 22)?);

    // Count over the demagnetisation slice only (the preceding major loop
    // is part of the same trace).
    let mut demag_curve = ja_repro::magnetics::bh::BhCurve::with_capacity(demag.len());
    for p in demag {
        demag_curve.push_raw(p.h.value(), p.b.as_tesla(), p.m.value());
    }
    println!(
        "negative-slope samples during demagnetisation: {}",
        demag_curve.negative_slope_samples()
    );
    Ok(())
}
