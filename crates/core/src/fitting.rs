//! Extraction of Jiles–Atherton parameters from a measured BH loop.
//!
//! Commercial users of core models rarely know `(a, k, c, α, M_sat)`; they
//! have a datasheet loop.  This module provides a simple, derivative-free
//! fit: starting from a physically motivated initial guess, a cyclic
//! coordinate search minimises the mismatch of the simulated loop's summary
//! metrics (saturation, coercivity, remanence, loop area) against the
//! measured ones.  It is not a production-grade optimiser, but it closes the
//! loop from measurement to model with the machinery already in this
//! workspace and is exercised by a round-trip test.

use magnetics::bh::BhCurve;
use magnetics::loop_analysis::{loop_metrics, LoopMetrics};
use magnetics::material::JaParameters;
use magnetics::units::Magnetisation;
use waveform::schedule::FieldSchedule;

use crate::error::JaError;
use crate::model::JilesAtherton;
use crate::sweep::sweep_schedule;

/// Options of the coordinate-search fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitOptions {
    /// Number of full coordinate-search passes.
    pub passes: usize,
    /// Initial relative perturbation applied to each parameter.
    pub initial_step: f64,
    /// Field step of the simulated sweep used to evaluate a candidate.
    pub sweep_step: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        Self {
            passes: 6,
            initial_step: 0.4,
            sweep_step: 50.0,
        }
    }
}

impl FitOptions {
    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] when `passes` is zero (the search
    /// would silently return the unrefined initial guess), or
    /// `initial_step`/`sweep_step` is not finite and strictly positive.
    pub fn validate(&self) -> Result<(), JaError> {
        if self.passes == 0 {
            return Err(JaError::InvalidConfig {
                name: "passes",
                value: 0.0,
                requirement: ">= 1 coordinate-search pass",
            });
        }
        if !self.initial_step.is_finite() || self.initial_step <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "initial_step",
                value: self.initial_step,
                requirement: "finite and > 0",
            });
        }
        if !self.sweep_step.is_finite() || self.sweep_step <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "sweep_step",
                value: self.sweep_step,
                requirement: "finite and > 0",
            });
        }
        Ok(())
    }
}

/// Result of a fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// The fitted parameter set.
    pub params: JaParameters,
    /// The residual cost (dimensionless, 0 = exact metric match).
    pub cost: f64,
    /// Number of candidate evaluations performed.
    pub evaluations: usize,
}

/// Fits JA parameters to a measured major loop.
///
/// `measured` must contain at least one full major loop; `h_peak` is the
/// peak field of that measurement (used to regenerate candidate loops).
///
/// # Errors
///
/// Returns [`JaError::InvalidConfig`] for invalid `options`,
/// [`JaError::Material`] when the measured loop is too short or has
/// no crossings (not a loop), and propagates sweep errors for pathological
/// candidates.
pub fn fit_major_loop(
    measured: &BhCurve,
    h_peak: f64,
    options: &FitOptions,
) -> Result<FitResult, JaError> {
    options.validate()?;
    let target = loop_metrics(measured)?;

    // Physically motivated initial guess:
    //  * M_sat from the measured peak flux density,
    //  * k of the order of the coercivity,
    //  * a of the order of the coercivity as well,
    //  * modest c and alpha.
    let m_sat_guess =
        (target.b_max.as_tesla() / magnetics::constants::MU0 - target.h_max.value()).max(1.0e5);
    let initial = JaParameters::builder()
        .m_sat(Magnetisation::new(m_sat_guess))
        .a(target.coercivity.value().max(10.0))
        .a2(1.75 * target.coercivity.value().max(10.0))
        .k(target.coercivity.value().max(10.0))
        .alpha(1.0e-3)
        .c(0.2)
        .build()?;

    let mut best = initial;
    let mut evaluations = 0usize;
    let mut best_cost = candidate_cost(&best, h_peak, options, &target, &mut evaluations)?;

    let mut step = options.initial_step;
    for _ in 0..options.passes {
        for coordinate in 0..5 {
            for &factor in &[1.0 + step, 1.0 / (1.0 + step)] {
                let candidate = perturb(&best, coordinate, factor);
                let Ok(candidate) = candidate else { continue };
                match candidate_cost(&candidate, h_peak, options, &target, &mut evaluations) {
                    Ok(cost) if cost < best_cost => {
                        best_cost = cost;
                        best = candidate;
                    }
                    _ => {}
                }
            }
        }
        step *= 0.6;
    }

    Ok(FitResult {
        params: best,
        cost: best_cost,
        evaluations,
    })
}

fn perturb(params: &JaParameters, coordinate: usize, factor: f64) -> Result<JaParameters, JaError> {
    let mut p = *params;
    match coordinate {
        0 => p.m_sat = Magnetisation::new(p.m_sat.value() * factor),
        1 => p.a *= factor,
        2 => p.k *= factor,
        3 => p.c = (p.c * factor).min(0.95),
        _ => p.alpha *= factor,
    }
    p.a2 = 1.75 * p.a;
    p.validate()?;
    Ok(p)
}

fn candidate_cost(
    params: &JaParameters,
    h_peak: f64,
    options: &FitOptions,
    target: &LoopMetrics,
    evaluations: &mut usize,
) -> Result<f64, JaError> {
    *evaluations += 1;
    let mut model = JilesAtherton::new(*params)?;
    let schedule = FieldSchedule::major_loop(h_peak, options.sweep_step, 2)?;
    let curve = sweep_schedule(&mut model, &schedule)?.into_curve();
    let metrics = loop_metrics(&curve)?;
    Ok(metric_mismatch(&metrics, target))
}

/// Relative mismatch of the four loop metrics, averaged.
fn metric_mismatch(candidate: &LoopMetrics, target: &LoopMetrics) -> f64 {
    let rel = |a: f64, b: f64| {
        if b.abs() < f64::EPSILON {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    };
    (rel(candidate.b_max.as_tesla(), target.b_max.as_tesla())
        + rel(candidate.coercivity.value(), target.coercivity.value())
        + rel(candidate.remanence.as_tesla(), target.remanence.as_tesla())
        + rel(candidate.loop_area, target.loop_area))
        / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates a "measured" loop from known parameters, fits it, and
    /// checks that the fitted model reproduces the loop metrics (the
    /// parameters themselves are not uniquely identifiable from four
    /// metrics, so the metric error is the honest criterion).
    #[test]
    fn round_trip_fit_recovers_loop_metrics() {
        let truth = JaParameters::date2006();
        let mut model = JilesAtherton::new(truth).unwrap();
        let schedule = FieldSchedule::major_loop(10_000.0, 50.0, 2).unwrap();
        let measured = sweep_schedule(&mut model, &schedule).unwrap().into_curve();
        let target = loop_metrics(&measured).unwrap();

        let fit = fit_major_loop(&measured, 10_000.0, &FitOptions::default()).unwrap();
        assert!(fit.evaluations > 10);
        assert!(fit.cost < 0.15, "residual cost {}", fit.cost);

        let mut fitted_model = JilesAtherton::new(fit.params).unwrap();
        let fitted_curve = sweep_schedule(&mut fitted_model, &schedule)
            .unwrap()
            .into_curve();
        let fitted = loop_metrics(&fitted_curve).unwrap();
        assert!(
            (fitted.b_max.as_tesla() - target.b_max.as_tesla()).abs() / target.b_max.as_tesla()
                < 0.15
        );
        assert!(
            (fitted.coercivity.value() - target.coercivity.value()).abs()
                / target.coercivity.value()
                < 0.3
        );
    }

    #[test]
    fn fit_rejects_non_loop_input() {
        // A monotone initial-magnetisation curve has no B = 0 crossing away
        // from the origin -> loop metrics (and thus the fit) must fail.
        let mut curve = BhCurve::new();
        for i in 0..100 {
            let h = i as f64 * 10.0;
            curve.push_raw(h, (h / 5000.0).tanh(), 0.0);
        }
        assert!(fit_major_loop(&curve, 1_000.0, &FitOptions::default()).is_err());
    }

    #[test]
    fn fit_rejects_empty_measured_loop() {
        let err = fit_major_loop(&BhCurve::new(), 1_000.0, &FitOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                JaError::Material(magnetics::MagneticsError::InsufficientSamples { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn fit_rejects_zero_passes() {
        let options = FitOptions {
            passes: 0,
            ..FitOptions::default()
        };
        // Options are checked before the measured loop, so even a valid
        // loop is irrelevant here.
        let err = fit_major_loop(&BhCurve::new(), 1_000.0, &options).unwrap_err();
        assert!(
            matches!(err, JaError::InvalidConfig { name: "passes", .. }),
            "{err}"
        );
    }

    #[test]
    fn fit_rejects_degenerate_steps() {
        for (initial_step, sweep_step, name) in [
            (0.0, 50.0, "initial_step"),
            (f64::NAN, 50.0, "initial_step"),
            (0.4, -50.0, "sweep_step"),
            (0.4, f64::INFINITY, "sweep_step"),
        ] {
            let options = FitOptions {
                passes: 1,
                initial_step,
                sweep_step,
            };
            let err = fit_major_loop(&BhCurve::new(), 1_000.0, &options).unwrap_err();
            match err {
                JaError::InvalidConfig { name: got, .. } => assert_eq!(got, name),
                other => panic!("expected InvalidConfig for {name}, got {other}"),
            }
        }
    }

    #[test]
    fn metric_mismatch_is_zero_for_identical_metrics() {
        let truth = JaParameters::date2006();
        let mut model = JilesAtherton::new(truth).unwrap();
        let schedule = FieldSchedule::major_loop(10_000.0, 100.0, 2).unwrap();
        let curve = sweep_schedule(&mut model, &schedule).unwrap().into_curve();
        let metrics = loop_metrics(&curve).unwrap();
        assert_eq!(metric_mismatch(&metrics, &metrics), 0.0);
    }
}
