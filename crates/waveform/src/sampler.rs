//! Uniform sampling of time-domain waveforms.

use crate::error::WaveformError;
use crate::generator::Waveform;

/// A uniformly sampled view of a waveform: `n` samples spaced `dt` apart
/// starting at `t = 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledWaveform {
    dt: f64,
    samples: Vec<f64>,
}

impl SampledWaveform {
    /// Samples `waveform` every `dt` seconds over `[0, duration]`
    /// (inclusive of both endpoints).
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] when `dt` or `duration`
    /// is not finite and positive, or the sample count would exceed
    /// 100 million points.
    pub fn sample<W: Waveform>(
        waveform: &W,
        duration: f64,
        dt: f64,
    ) -> Result<Self, WaveformError> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "dt",
                value: dt,
                requirement: "finite and > 0",
            });
        }
        if !duration.is_finite() || duration <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "duration",
                value: duration,
                requirement: "finite and > 0",
            });
        }
        let n = (duration / dt).floor() as usize + 1;
        if n > 100_000_000 {
            return Err(WaveformError::InvalidParameter {
                name: "duration/dt",
                value: n as f64,
                requirement: "<= 1e8 samples",
            });
        }
        let samples = (0..n).map(|i| waveform.value(i as f64 * dt)).collect();
        Ok(Self { dt, samples })
    }

    /// Sampling interval in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The sample values.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were captured (cannot happen for valid input).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time of sample `i`.
    pub fn time_of(&self, i: usize) -> f64 {
        i as f64 * self.dt
    }

    /// Iterator over `(t, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i as f64 * self.dt, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangular::Triangular;

    #[test]
    fn samples_triangular_wave() {
        let w = Triangular::new(1.0, 1.0).unwrap();
        let s = SampledWaveform::sample(&w, 1.0, 0.25).unwrap();
        assert_eq!(s.len(), 5);
        assert!((s.samples()[1] - 1.0).abs() < 1e-12);
        assert!((s.samples()[3] + 1.0).abs() < 1e-12);
        assert_eq!(s.dt(), 0.25);
        assert_eq!(s.time_of(4), 1.0);
        assert!(!s.is_empty());
    }

    #[test]
    fn iter_yields_time_value_pairs() {
        let w = Triangular::new(2.0, 1.0).unwrap();
        let s = SampledWaveform::sample(&w, 0.5, 0.1).unwrap();
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs.len(), s.len());
        assert!((pairs[2].0 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        let w = Triangular::new(1.0, 1.0).unwrap();
        assert!(SampledWaveform::sample(&w, 1.0, 0.0).is_err());
        assert!(SampledWaveform::sample(&w, 0.0, 0.1).is_err());
        assert!(SampledWaveform::sample(&w, 1e9, 1e-6).is_err());
    }
}
