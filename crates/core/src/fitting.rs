//! Extraction of Jiles–Atherton parameters from a measured BH loop.
//!
//! Commercial users of core models rarely know `(a, k, c, α, M_sat)`; they
//! have a datasheet loop.  This module provides the building blocks of a
//! derivative-free fit and composes them into [`fit_major_loop`]:
//!
//! * [`FitObjective`] — the cost function.  It owns one preallocated
//!   [`FieldSchedule`] and one reusable [`BhCurve`] buffer, so evaluating a
//!   candidate (simulate the loop, extract its summary metrics, compare
//!   against the measured ones) allocates nothing: the sweep runs through
//!   [`HysteresisBackend::run_schedule_into`] and the model itself is a
//!   plain value type.  This is what makes fitting a batchable workload —
//!   each worker of a multi-start fit keeps one objective alive across all
//!   the candidates it evaluates (see `hdl_models::fit`).
//! * [`BatchObjective`] — the same cost function over many candidates at
//!   once.  Candidates are evaluated as lanes of a structure-of-arrays
//!   lockstep sweep ([`crate::soa::SoaBatch`]), whose `f64` columns are
//!   bit-identical to the scalar model — a batched cost is the same number
//!   the scalar objective would have produced, just computed N lanes at a
//!   time.  Like [`FitObjective`], it owns all its evaluation scratch
//!   (sample vector, SoA columns, per-lane curve buffers), so a steady-state
//!   cost call performs **no heap allocation** (asserted by
//!   `tests/fit_allocation.rs` at the workspace root).
//! * [`LocalOptimizer`] / [`CoordinateDescent`] — the pluggable local
//!   search.  The default is the cyclic coordinate search with a shrinking
//!   step; alternative optimisers only need to drive the objective.
//!   [`CoordinateDescent::optimize_batch`] runs the same search over many
//!   starting points in lockstep, batching each descent slot's surviving
//!   candidates into one [`BatchObjective`] call.
//! * [`initial_guess`] / [`starting_points`] — physically motivated start
//!   plus seeded, deterministic latin-hypercube perturbations of it for
//!   multi-start searches that escape local minima.
//!
//! It is not a production-grade optimiser, but it closes the loop from
//! measurement to model with the machinery already in this workspace and is
//! exercised by round-trip and property tests.

use magnetics::bh::BhCurve;
use magnetics::loop_analysis::{loop_metrics, LoopMetrics};
use magnetics::material::JaParameters;
use magnetics::units::Magnetisation;
use waveform::schedule::FieldSchedule;

use crate::backend::HysteresisBackend;
use crate::config::JaConfig;
use crate::error::JaError;
use crate::model::JilesAtherton;
use crate::soa::{SoaBatch, SoaPrecision};

/// Options of the coordinate-search fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitOptions {
    /// Number of full coordinate-search passes.
    pub passes: usize,
    /// Initial relative perturbation applied to each parameter.
    pub initial_step: f64,
    /// Field step of the simulated sweep used to evaluate a candidate.
    pub sweep_step: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        Self {
            passes: 6,
            initial_step: 0.4,
            sweep_step: 50.0,
        }
    }
}

impl FitOptions {
    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] when `passes` is zero (the search
    /// would silently return the unrefined initial guess), or
    /// `initial_step`/`sweep_step` is not finite and strictly positive.
    pub fn validate(&self) -> Result<(), JaError> {
        if self.passes == 0 {
            return Err(JaError::InvalidConfig {
                name: "passes",
                value: 0.0,
                requirement: ">= 1 coordinate-search pass",
            });
        }
        if !self.initial_step.is_finite() || self.initial_step <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "initial_step",
                value: self.initial_step,
                requirement: "finite and > 0",
            });
        }
        if !self.sweep_step.is_finite() || self.sweep_step <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "sweep_step",
                value: self.sweep_step,
                requirement: "finite and > 0",
            });
        }
        Ok(())
    }
}

/// Result of a fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// The fitted parameter set.
    pub params: JaParameters,
    /// The residual cost (dimensionless, 0 = exact metric match).
    pub cost: f64,
    /// Number of candidate evaluations performed.
    pub evaluations: usize,
}

/// The fitting cost function with reusable evaluation scratch.
///
/// One objective instance holds the measured target metrics, the candidate
/// sweep schedule and a trace buffer; [`cost`](FitObjective::cost) reuses
/// both across candidates, so a fit performs **no per-candidate heap
/// allocation** (the [`JilesAtherton`] model is a plain value type).  An
/// objective is cheap to keep alive for thousands of evaluations — exactly
/// what a multi-start worker does.
#[derive(Debug, Clone)]
pub struct FitObjective {
    target: LoopMetrics,
    schedule: FieldSchedule,
    curve: BhCurve,
    evaluations: usize,
}

impl FitObjective {
    /// Builds an objective from a measured loop: extracts the target
    /// metrics and preallocates the candidate sweep (two full cycles to
    /// `±h_peak` at `options.sweep_step`).
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] for invalid `options`,
    /// [`JaError::Material`] when the measured loop is too short or has no
    /// crossings (not a loop), and [`JaError::Waveform`] for a schedule the
    /// sweep parameters cannot form.
    pub fn new(measured: &BhCurve, h_peak: f64, options: &FitOptions) -> Result<Self, JaError> {
        options.validate()?;
        Self::from_target(loop_metrics(measured)?, h_peak, options)
    }

    /// Builds an objective from already-extracted target metrics.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] for invalid `options` and
    /// [`JaError::Waveform`] for an invalid candidate schedule.
    pub fn from_target(
        target: LoopMetrics,
        h_peak: f64,
        options: &FitOptions,
    ) -> Result<Self, JaError> {
        options.validate()?;
        let schedule = FieldSchedule::major_loop(h_peak, options.sweep_step, 2)?;
        let curve = BhCurve::with_capacity(schedule.len());
        Ok(Self {
            target,
            schedule,
            curve,
            evaluations: 0,
        })
    }

    /// The measured metrics the fit is matching.
    pub fn target(&self) -> &LoopMetrics {
        &self.target
    }

    /// Number of candidate evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Evaluates one candidate: simulates its major loop into the reused
    /// buffer and returns the metric mismatch against the target.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Material`] for an invalid candidate and
    /// propagates sweep/metric errors for pathological ones.  Failed
    /// evaluations still count towards [`evaluations`](Self::evaluations).
    pub fn cost(&mut self, params: &JaParameters) -> Result<f64, JaError> {
        self.evaluations += 1;
        let mut model = JilesAtherton::new(*params)?;
        model.run_schedule_into(&self.schedule, &mut self.curve)?;
        let metrics = loop_metrics(&self.curve)?;
        Ok(metric_mismatch(&metrics, &self.target))
    }
}

/// The fitting cost function over many candidates at once, evaluated as
/// lanes of one structure-of-arrays lockstep sweep.
///
/// A [`costs`](BatchObjective::costs) call assigns the candidates to the
/// lanes of an internal [`SoaBatch`] (always `f64` columns, which are
/// bit-identical to the scalar model), runs the shared candidate schedule
/// once across all lanes, and extracts each lane's metric mismatch — the
/// exact value [`FitObjective::cost`] would have returned for that
/// candidate, because both paths execute the same operation sequence per
/// lane and the same metric extraction over bit-identical curves.
///
/// All evaluation scratch is owned and reused: the flattened sample vector,
/// the SoA parameter/state columns, the per-lane curve buffers and the cost
/// vector only ever grow to the high-water lane count.  After the first
/// call at a given lane count, a cost call performs **no heap allocation**
/// (metric extraction streams its crossings instead of collecting them) —
/// asserted by the workspace's `tests/fit_allocation.rs`.
#[derive(Debug, Clone)]
pub struct BatchObjective {
    target: LoopMetrics,
    samples: Vec<f64>,
    batch: SoaBatch,
    curves: Vec<BhCurve>,
    costs: Vec<Result<f64, JaError>>,
    evaluations: usize,
}

impl BatchObjective {
    /// Builds a batched objective from already-extracted target metrics;
    /// the candidate sweep is the same two-cycle major loop a
    /// [`FitObjective`] would use.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] for invalid `options` and
    /// [`JaError::Waveform`] for an invalid candidate schedule — the same
    /// failures, for the same inputs, as [`FitObjective::from_target`].
    pub fn from_target(
        target: LoopMetrics,
        h_peak: f64,
        options: &FitOptions,
    ) -> Result<Self, JaError> {
        options.validate()?;
        let schedule = FieldSchedule::major_loop(h_peak, options.sweep_step, 2)?;
        let samples = schedule.to_samples();
        // The scalar objective simulates with the default configuration
        // (`JilesAtherton::new`); the lanes must match it exactly.
        let batch = SoaBatch::new(JaConfig::default(), SoaPrecision::F64)?;
        Ok(Self {
            target,
            samples,
            batch,
            curves: Vec::new(),
            costs: Vec::new(),
            evaluations: 0,
        })
    }

    /// The measured metrics the fit is matching.
    pub fn target(&self) -> &LoopMetrics {
        &self.target
    }

    /// Number of candidate evaluations performed so far (every lane of
    /// every call, failed lanes included).
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Evaluates all candidates as one lockstep sweep and returns their
    /// costs in candidate order, valid until the next call.
    ///
    /// Each lane's entry is exactly what [`FitObjective::cost`] would
    /// return for that candidate: the bit-identical mismatch on success,
    /// the same [`JaError`] on failure (an invalid candidate, a diverged
    /// sweep, or a trace that does not form a closable loop).  Failed lanes
    /// do not disturb their neighbours, and every lane counts towards
    /// [`evaluations`](Self::evaluations).
    pub fn costs(&mut self, candidates: &[JaParameters]) -> &[Result<f64, JaError>] {
        let lanes = candidates.len();
        self.evaluations += lanes;
        self.batch.assign(candidates);
        let capacity = self.samples.len();
        if self.curves.len() < lanes {
            self.curves
                .resize_with(lanes, || BhCurve::with_capacity(capacity));
        }
        self.batch
            .run_samples_into_curves(&self.samples, &mut self.curves[..lanes]);
        self.costs.clear();
        for lane in 0..lanes {
            let cost = match self.batch.lane_error(lane) {
                Some(err) => Err(err.clone()),
                None => loop_metrics(&self.curves[lane])
                    .map(|metrics| metric_mismatch(&metrics, &self.target))
                    .map_err(JaError::from),
            };
            self.costs.push(cost);
        }
        &self.costs
    }
}

/// A local search strategy over a [`FitObjective`].
///
/// Implementations refine a starting parameter set into a local minimum of
/// the objective; the multi-start driver in `hdl_models::fit` runs one
/// optimizer per start on worker-local objectives.
pub trait LocalOptimizer {
    /// Refines `start`, returning the best parameters found, their cost and
    /// the number of objective evaluations this call performed.
    ///
    /// # Errors
    ///
    /// Propagates an objective failure on the *starting* candidate — a
    /// start whose loop cannot even be simulated has no cost to improve.
    /// Failures on perturbed candidates are treated as "worse" and skipped.
    fn optimize(
        &self,
        objective: &mut FitObjective,
        start: JaParameters,
    ) -> Result<FitResult, JaError>;
}

/// Cyclic coordinate search with a multiplicatively shrinking step — the
/// workspace's default [`LocalOptimizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinateDescent {
    /// Number of full passes over the five coordinates.
    pub passes: usize,
    /// Initial relative perturbation.
    pub initial_step: f64,
    /// Per-pass step shrink factor (0 < shrink < 1).
    pub shrink: f64,
}

impl Default for CoordinateDescent {
    fn default() -> Self {
        Self {
            passes: 6,
            initial_step: 0.4,
            shrink: 0.6,
        }
    }
}

impl CoordinateDescent {
    /// A coordinate search using the passes and initial step of the given
    /// fit options (the default shrink factor of 0.6).
    pub fn from_options(options: &FitOptions) -> Self {
        Self {
            passes: options.passes,
            initial_step: options.initial_step,
            ..Self::default()
        }
    }

    /// Runs the coordinate search over many starting points in lockstep:
    /// at every descent slot (pass × coordinate × factor) each live start
    /// proposes its candidate, the surviving candidates are evaluated as
    /// one [`BatchObjective::costs`] call, and each start's accept/reject
    /// decision is applied independently.
    ///
    /// Because a cost is a pure function of its candidate — and the SoA
    /// lanes are bit-identical to the scalar objective — every start's
    /// trajectory, final parameters, cost bits and evaluation count are
    /// exactly what [`LocalOptimizer::optimize`] would have produced for
    /// that start alone.  The per-start skip rules carry over unchanged:
    /// a perturbation that fails validation or clamps back onto the
    /// incumbent is skipped, not evaluated.
    ///
    /// One entry per start, in start order: a start whose *initial*
    /// evaluation fails yields that error (it consumed exactly one
    /// evaluation); failures on perturbed candidates just reject the
    /// candidate, as in the scalar search.
    pub fn optimize_batch(
        &self,
        objective: &mut BatchObjective,
        starts: &[JaParameters],
    ) -> Vec<Result<FitResult, JaError>> {
        struct Lane {
            best: JaParameters,
            best_cost: f64,
            evaluations: usize,
        }
        if starts.is_empty() {
            return Vec::new();
        }
        let mut lanes: Vec<Result<Lane, JaError>> = starts
            .iter()
            .zip(objective.costs(starts))
            .map(|(start, cost)| match cost {
                Ok(cost) => Ok(Lane {
                    best: *start,
                    best_cost: *cost,
                    evaluations: 1,
                }),
                Err(err) => Err(err.clone()),
            })
            .collect();

        let mut candidates: Vec<JaParameters> = Vec::with_capacity(starts.len());
        let mut owners: Vec<usize> = Vec::with_capacity(starts.len());
        let mut step = self.initial_step;
        for _ in 0..self.passes {
            for coordinate in 0..5 {
                for &factor in &[1.0 + step, 1.0 / (1.0 + step)] {
                    candidates.clear();
                    owners.clear();
                    for (index, lane) in lanes.iter().enumerate() {
                        let Ok(lane) = lane else { continue };
                        let Ok(candidate) = perturb(&lane.best, coordinate, factor) else {
                            continue;
                        };
                        if candidate == lane.best {
                            continue;
                        }
                        candidates.push(candidate);
                        owners.push(index);
                    }
                    if candidates.is_empty() {
                        continue;
                    }
                    let costs = objective.costs(&candidates);
                    for ((&index, candidate), cost) in owners.iter().zip(&candidates).zip(costs) {
                        let lane = lanes[index].as_mut().expect("only live lanes propose");
                        lane.evaluations += 1;
                        if let Ok(cost) = cost {
                            if *cost < lane.best_cost {
                                lane.best_cost = *cost;
                                lane.best = *candidate;
                            }
                        }
                    }
                }
            }
            step *= self.shrink;
        }

        lanes
            .into_iter()
            .map(|lane| {
                lane.map(|lane| FitResult {
                    params: lane.best,
                    cost: lane.best_cost,
                    evaluations: lane.evaluations,
                })
            })
            .collect()
    }
}

impl LocalOptimizer for CoordinateDescent {
    fn optimize(
        &self,
        objective: &mut FitObjective,
        start: JaParameters,
    ) -> Result<FitResult, JaError> {
        let evaluations_before = objective.evaluations();
        let mut best = start;
        let mut best_cost = objective.cost(&best)?;

        let mut step = self.initial_step;
        for _ in 0..self.passes {
            for coordinate in 0..5 {
                for &factor in &[1.0 + step, 1.0 / (1.0 + step)] {
                    let Ok(candidate) = perturb(&best, coordinate, factor) else {
                        continue;
                    };
                    // A clamped perturbation (e.g. `c` already at its cap)
                    // can return the incumbent itself; evaluating it would
                    // burn a counted evaluation on a guaranteed no-op.
                    if candidate == best {
                        continue;
                    }
                    match objective.cost(&candidate) {
                        Ok(cost) if cost < best_cost => {
                            best_cost = cost;
                            best = candidate;
                        }
                        _ => {}
                    }
                }
            }
            step *= self.shrink;
        }

        Ok(FitResult {
            params: best,
            cost: best_cost,
            evaluations: objective.evaluations() - evaluations_before,
        })
    }
}

/// Fits JA parameters to a measured major loop with a single
/// coordinate-descent run from the physically motivated initial guess.
///
/// `measured` must contain at least one full major loop; `h_peak` is the
/// peak field of that measurement (used to regenerate candidate loops).
/// For the multi-start parallel variant, see `hdl_models::fit::fit_batch`.
///
/// # Errors
///
/// Returns [`JaError::InvalidConfig`] for invalid `options`,
/// [`JaError::Material`] when the measured loop is too short or has
/// no crossings (not a loop), and propagates sweep errors for pathological
/// candidates.
pub fn fit_major_loop(
    measured: &BhCurve,
    h_peak: f64,
    options: &FitOptions,
) -> Result<FitResult, JaError> {
    let mut objective = FitObjective::new(measured, h_peak, options)?;
    let start = initial_guess(objective.target())?;
    CoordinateDescent::from_options(options).optimize(&mut objective, start)
}

/// The physically motivated starting point of a fit:
///
/// * `M_sat` from the measured peak flux density,
/// * `k` of the order of the coercivity,
/// * `a` of the order of the coercivity as well (`a2` at the paper's
///   `a2/a` ratio),
/// * modest `c` and `α`.
///
/// # Errors
///
/// Returns [`JaError::Material`] if the derived guess fails parameter
/// validation (degenerate target metrics).
pub fn initial_guess(target: &LoopMetrics) -> Result<JaParameters, JaError> {
    let m_sat_guess =
        (target.b_max.as_tesla() / magnetics::constants::MU0 - target.h_max.value()).max(1.0e5);
    Ok(JaParameters::builder()
        .m_sat(Magnetisation::new(m_sat_guess))
        .a(target.coercivity.value().max(10.0))
        .a2(A2_RATIO * target.coercivity.value().max(10.0))
        .k(target.coercivity.value().max(10.0))
        .alpha(1.0e-3)
        .c(0.2)
        .build()?)
}

/// The paper's `a2/a` ratio (3500/2000), used whenever a fit has to derive
/// `a2` from `a` without caller guidance.
const A2_RATIO: f64 = 1.75;

/// Deterministic seeded starting points for a multi-start fit.
///
/// Start 0 is [`initial_guess`]; the remaining `starts − 1` points are
/// latin-hypercube perturbations of it — each of the five coordinates is
/// stratified into `starts − 1` bins, permuted with a splitmix64 stream
/// seeded from `seed`, and sampled log-uniformly (`c` uniformly) within
/// spreads wide enough to escape the guess's basin:
///
/// | coordinate | spread around the guess |
/// |---|---|
/// | `M_sat` | ×\[0.5, 2\] |
/// | `a` (and `a2` at the fixed ratio) | ×\[0.25, 4\] |
/// | `k` | ×\[0.25, 4\] |
/// | `α` | ×\[0.1, 10\] |
/// | `c` | uniform in \[0.02, 0.9\] |
///
/// The same `(target, starts, seed)` triple always yields the same points,
/// in the same order, on every machine — multi-start reports stay
/// byte-identical across worker counts.
///
/// # Errors
///
/// Returns [`JaError::InvalidConfig`] for `starts == 0` and
/// [`JaError::Material`] if a derived point fails validation.
pub fn starting_points(
    target: &LoopMetrics,
    starts: usize,
    seed: u64,
) -> Result<Vec<JaParameters>, JaError> {
    if starts == 0 {
        return Err(JaError::InvalidConfig {
            name: "starts",
            value: 0.0,
            requirement: ">= 1 start",
        });
    }
    let guess = initial_guess(target)?;
    let mut points = Vec::with_capacity(starts);
    points.push(guess);

    let extra = starts - 1;
    if extra == 0 {
        return Ok(points);
    }
    let mut rng = SplitMix64::new(seed);
    // One stratified-and-permuted column of unit samples per coordinate.
    let columns: [Vec<f64>; 5] = std::array::from_fn(|_| {
        let mut strata: Vec<usize> = (0..extra).collect();
        rng.shuffle(&mut strata);
        strata
            .into_iter()
            .map(|s| (s as f64 + rng.next_f64()) / extra as f64)
            .collect()
    });
    let log_spread = |u: f64, spread: f64| spread.powf(2.0 * u - 1.0);
    let [m_sat_col, a_col, k_col, alpha_col, c_col] = columns;
    for ((((u_m_sat, u_a), u_k), u_alpha), u_c) in m_sat_col
        .into_iter()
        .zip(a_col)
        .zip(k_col)
        .zip(alpha_col)
        .zip(c_col)
    {
        let a = guess.a * log_spread(u_a, 4.0);
        let point = JaParameters::builder()
            .m_sat(Magnetisation::new(
                guess.m_sat.value() * log_spread(u_m_sat, 2.0),
            ))
            .a(a)
            .a2(A2_RATIO * a)
            .k(guess.k * log_spread(u_k, 4.0))
            .alpha(guess.alpha * log_spread(u_alpha, 10.0))
            .c(0.02 + 0.88 * u_c)
            .build()?;
        points.push(point);
    }
    Ok(points)
}

/// The splitmix64 stream behind [`starting_points`] — small, seedable and
/// identical on every platform (determinism is part of the fit report's
/// contract).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn shuffle(&mut self, slice: &mut [usize]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

/// Perturbs one coordinate of a parameter set by a multiplicative factor.
///
/// `a2` follows `a` at the incumbent's own `a2/a` ratio, so perturbing any
/// *other* coordinate leaves a caller-supplied `a2` untouched.
fn perturb(params: &JaParameters, coordinate: usize, factor: f64) -> Result<JaParameters, JaError> {
    let mut p = *params;
    match coordinate {
        0 => p.m_sat = Magnetisation::new(p.m_sat.value() * factor),
        1 => {
            // Scale a and a2 together: the ratio a2/a is preserved instead
            // of being re-derived, so a caller-supplied a2 survives.
            p.a *= factor;
            p.a2 *= factor;
        }
        2 => p.k *= factor,
        3 => p.c = (p.c * factor).min(0.95),
        _ => p.alpha *= factor,
    }
    p.validate()?;
    Ok(p)
}

/// Relative mismatch of the four loop metrics, averaged.
///
/// Each term is the symmetric relative error `|a − b| / max(|a|, |b|,
/// floor)`, with the floor a tiny fraction of the loop's natural scale *in
/// that metric's own unit* (peak flux density for the tesla-valued terms,
/// peak field for coercivity, their product for the loop area).  A
/// near-zero target therefore degrades to an error-over-scale comparison
/// instead of mixing raw teslas or J·m⁻³ into an otherwise dimensionless
/// average.
fn metric_mismatch(candidate: &LoopMetrics, target: &LoopMetrics) -> f64 {
    let b_scale = target.b_max.as_tesla().abs();
    let h_scale = target.h_max.value().abs();
    let rel = |a: f64, b: f64, floor: f64| {
        let denom = a.abs().max(b.abs()).max(floor);
        if denom > 0.0 {
            (a - b).abs() / denom
        } else {
            0.0
        }
    };
    (rel(
        candidate.b_max.as_tesla(),
        target.b_max.as_tesla(),
        1e-6 * b_scale,
    ) + rel(
        candidate.coercivity.value(),
        target.coercivity.value(),
        1e-6 * h_scale,
    ) + rel(
        candidate.remanence.as_tesla(),
        target.remanence.as_tesla(),
        1e-6 * b_scale,
    ) + rel(
        candidate.loop_area,
        target.loop_area,
        1e-6 * b_scale * h_scale,
    )) / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_schedule;

    fn measured_loop(step: f64) -> BhCurve {
        let mut model = JilesAtherton::new(JaParameters::date2006()).unwrap();
        let schedule = FieldSchedule::major_loop(10_000.0, step, 2).unwrap();
        sweep_schedule(&mut model, &schedule).unwrap().into_curve()
    }

    /// Generates a "measured" loop from known parameters, fits it, and
    /// checks that the fitted model reproduces the loop metrics (the
    /// parameters themselves are not uniquely identifiable from four
    /// metrics, so the metric error is the honest criterion).
    #[test]
    fn round_trip_fit_recovers_loop_metrics() {
        let measured = measured_loop(50.0);
        let target = loop_metrics(&measured).unwrap();

        let fit = fit_major_loop(&measured, 10_000.0, &FitOptions::default()).unwrap();
        assert!(fit.evaluations > 10);
        assert!(fit.cost < 0.15, "residual cost {}", fit.cost);

        let schedule = FieldSchedule::major_loop(10_000.0, 50.0, 2).unwrap();
        let mut fitted_model = JilesAtherton::new(fit.params).unwrap();
        let fitted_curve = sweep_schedule(&mut fitted_model, &schedule)
            .unwrap()
            .into_curve();
        let fitted = loop_metrics(&fitted_curve).unwrap();
        assert!(
            (fitted.b_max.as_tesla() - target.b_max.as_tesla()).abs() / target.b_max.as_tesla()
                < 0.15
        );
        assert!(
            (fitted.coercivity.value() - target.coercivity.value()).abs()
                / target.coercivity.value()
                < 0.3
        );
    }

    #[test]
    fn objective_reuses_scratch_and_counts_evaluations() {
        let measured = measured_loop(100.0);
        let mut objective = FitObjective::new(&measured, 10_000.0, &FitOptions::default()).unwrap();
        assert_eq!(objective.evaluations(), 0);
        let truth_cost = objective.cost(&JaParameters::date2006()).unwrap();
        assert!(
            truth_cost < 0.05,
            "truth parameters nearly reproduce their own loop: {truth_cost}"
        );
        let other_cost = objective.cost(&JaParameters::hard_steel()).unwrap();
        assert!(other_cost > truth_cost);
        assert_eq!(objective.evaluations(), 2);
        // A failed evaluation still counts (it consumed a simulation slot).
        let mut bad = JaParameters::date2006();
        bad.k = -1.0;
        assert!(objective.cost(&bad).is_err());
        assert_eq!(objective.evaluations(), 3);
        // Repeat evaluations are bit-identical: the scratch reuse does not
        // leak state between candidates.
        assert_eq!(
            objective.cost(&JaParameters::date2006()).unwrap().to_bits(),
            truth_cost.to_bits()
        );
    }

    #[test]
    fn perturb_preserves_a2_ratio_on_unrelated_coordinates() {
        let params = JaParameters::builder()
            .a(2_000.0)
            .a2(3_000.0)
            .build()
            .unwrap();
        // Perturbing m_sat, k, c or alpha must leave a and a2 untouched.
        for coordinate in [0usize, 2, 3, 4] {
            let p = perturb(&params, coordinate, 1.3).unwrap();
            assert_eq!(p.a, params.a, "coordinate {coordinate}");
            assert_eq!(p.a2, params.a2, "coordinate {coordinate}");
        }
        // Perturbing a scales a2 by the same factor: the ratio survives.
        let p = perturb(&params, 1, 1.3).unwrap();
        assert!((p.a2 / p.a - params.a2 / params.a).abs() < 1e-12);
    }

    #[test]
    fn clamped_c_perturbation_is_skipped_not_evaluated() {
        let measured = measured_loop(250.0);
        let mut objective = FitObjective::new(&measured, 10_000.0, &FitOptions::default()).unwrap();
        let at_cap = JaParameters::builder().c(0.95).build().unwrap();
        // The upward c-perturbation clamps back to the incumbent...
        let clamped = perturb(&at_cap, 3, 1.4).unwrap();
        assert_eq!(clamped, at_cap);
        // ...and the optimizer must not burn an evaluation on it: one full
        // pass evaluates the start plus at most 2 candidates per coordinate,
        // minus the skipped no-op.
        let optimizer = CoordinateDescent {
            passes: 1,
            ..CoordinateDescent::default()
        };
        let result = optimizer.optimize(&mut objective, at_cap).unwrap();
        assert!(
            result.evaluations < 1 + 5 * 2,
            "clamped candidate was evaluated: {} evaluations",
            result.evaluations
        );
    }

    #[test]
    fn batch_objective_matches_scalar_costs_bitwise() {
        let measured = measured_loop(250.0);
        let target = loop_metrics(&measured).unwrap();
        let options = FitOptions::default();
        let mut scalar = FitObjective::from_target(target, 10_000.0, &options).unwrap();
        let mut batched = BatchObjective::from_target(target, 10_000.0, &options).unwrap();

        let mut bad = JaParameters::date2006();
        bad.k = -1.0;
        let candidates = [
            JaParameters::date2006(),
            JaParameters::hard_steel(),
            bad,
            JaParameters::soft_ferrite(),
        ];
        let batch_costs: Vec<Result<f64, JaError>> = batched.costs(&candidates).to_vec();
        assert_eq!(batched.evaluations(), candidates.len());
        for (candidate, batch_cost) in candidates.iter().zip(&batch_costs) {
            match (scalar.cost(candidate), batch_cost) {
                (Ok(s), Ok(b)) => assert_eq!(s.to_bits(), b.to_bits()),
                (Err(s), Err(b)) => assert_eq!(&s, b),
                (s, b) => panic!("cost kinds diverged: {s:?} vs {b:?}"),
            }
        }
        // Repeat calls are bit-identical: the lane scratch fully resets.
        let again = batched.costs(&candidates).to_vec();
        for (a, b) in batch_costs.iter().zip(&again) {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!("repeat call changed a cost kind"),
            }
        }
    }

    #[test]
    fn lockstep_descent_matches_scalar_descent_bitwise() {
        let measured = measured_loop(250.0);
        let target = loop_metrics(&measured).unwrap();
        let options = FitOptions {
            passes: 2,
            sweep_step: 250.0,
            ..FitOptions::default()
        };
        let mut starts = starting_points(&target, 5, 42).unwrap();
        // One hopeless start: its very first evaluation fails, so the
        // lockstep lane must report the same error and count 1 evaluation.
        let mut bad = starts[1];
        bad.k = -1.0;
        starts.push(bad);

        let optimizer = CoordinateDescent::from_options(&options);
        let mut batched = BatchObjective::from_target(target, 10_000.0, &options).unwrap();
        let lockstep = optimizer.optimize_batch(&mut batched, &starts);
        assert_eq!(lockstep.len(), starts.len());

        for (start, lockstep_result) in starts.iter().zip(&lockstep) {
            let mut objective = FitObjective::from_target(target, 10_000.0, &options).unwrap();
            match (optimizer.optimize(&mut objective, *start), lockstep_result) {
                (Ok(scalar), Ok(lane)) => {
                    assert_eq!(scalar.cost.to_bits(), lane.cost.to_bits());
                    assert_eq!(scalar.params, lane.params);
                    assert_eq!(scalar.evaluations, lane.evaluations);
                }
                (Err(scalar), Err(lane)) => {
                    assert_eq!(&scalar, lane);
                    assert_eq!(objective.evaluations(), 1);
                }
                (s, l) => panic!("descent outcomes diverged: {s:?} vs {l:?}"),
            }
        }
        // The dead lane stopped proposing candidates after its start
        // failed: total batch evaluations = live starts' work + 1.
        let live: usize = lockstep
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|f| f.evaluations))
            .sum();
        assert_eq!(batched.evaluations(), live + 1);
    }

    #[test]
    fn fit_rejects_non_loop_input() {
        // A monotone initial-magnetisation curve has no B = 0 crossing away
        // from the origin -> loop metrics (and thus the fit) must fail.
        let mut curve = BhCurve::new();
        for i in 0..100 {
            let h = i as f64 * 10.0;
            curve.push_raw(h, (h / 5000.0).tanh(), 0.0);
        }
        assert!(fit_major_loop(&curve, 1_000.0, &FitOptions::default()).is_err());
    }

    #[test]
    fn fit_rejects_empty_measured_loop() {
        let err = fit_major_loop(&BhCurve::new(), 1_000.0, &FitOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                JaError::Material(magnetics::MagneticsError::InsufficientSamples { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn fit_rejects_zero_passes() {
        let options = FitOptions {
            passes: 0,
            ..FitOptions::default()
        };
        // Options are checked before the measured loop, so even a valid
        // loop is irrelevant here.
        let err = fit_major_loop(&BhCurve::new(), 1_000.0, &options).unwrap_err();
        assert!(
            matches!(err, JaError::InvalidConfig { name: "passes", .. }),
            "{err}"
        );
    }

    #[test]
    fn fit_rejects_degenerate_steps() {
        for (initial_step, sweep_step, name) in [
            (0.0, 50.0, "initial_step"),
            (f64::NAN, 50.0, "initial_step"),
            (0.4, -50.0, "sweep_step"),
            (0.4, f64::INFINITY, "sweep_step"),
        ] {
            let options = FitOptions {
                passes: 1,
                initial_step,
                sweep_step,
            };
            let err = fit_major_loop(&BhCurve::new(), 1_000.0, &options).unwrap_err();
            match err {
                JaError::InvalidConfig { name: got, .. } => assert_eq!(got, name),
                other => panic!("expected InvalidConfig for {name}, got {other}"),
            }
        }
    }

    #[test]
    fn metric_mismatch_is_zero_for_identical_metrics() {
        let measured = measured_loop(100.0);
        let metrics = loop_metrics(&measured).unwrap();
        assert_eq!(metric_mismatch(&metrics, &metrics), 0.0);
    }

    #[test]
    fn metric_mismatch_near_zero_target_stays_dimensionless() {
        let measured = measured_loop(100.0);
        let mut target = loop_metrics(&measured).unwrap();
        let candidate = target;
        // A (synthetic) target with zero remanence: the old fallback
        // returned the candidate's remanence in raw teslas; the symmetric
        // form caps the term at 1 — same scale as the other three terms.
        target.remanence = magnetics::units::FluxDensity::new(0.0);
        let mismatch = metric_mismatch(&candidate, &target);
        assert!(mismatch <= 0.25 + 1e-12, "mismatch {mismatch}");
        // And it is symmetric: swapping candidate and target changes
        // nothing.
        let swapped = metric_mismatch(&target, &candidate);
        assert!((mismatch - swapped).abs() < 1e-15);
    }

    #[test]
    fn starting_points_are_deterministic_and_valid() {
        let measured = measured_loop(100.0);
        let target = loop_metrics(&measured).unwrap();
        let a = starting_points(&target, 8, 42).unwrap();
        let b = starting_points(&target, 8, 42).unwrap();
        assert_eq!(a.len(), 8);
        assert_eq!(a, b, "same seed, same points");
        assert_eq!(a[0], initial_guess(&target).unwrap());
        for (i, point) in a.iter().enumerate() {
            assert!(point.validate().is_ok(), "start {i}: {point:?}");
            assert!((point.a2 / point.a - A2_RATIO).abs() < 1e-12);
            assert!(point.c < 0.95);
        }
        // A different seed moves every perturbed start.
        let c = starting_points(&target, 8, 43).unwrap();
        assert_eq!(c[0], a[0], "start 0 is the deterministic guess");
        assert!(a[1..] != c[1..]);
        // Degenerate counts.
        assert_eq!(starting_points(&target, 1, 42).unwrap().len(), 1);
        assert!(starting_points(&target, 0, 42).is_err());
    }

    #[test]
    fn starting_points_stratify_each_coordinate() {
        // Latin-hypercube property: with n perturbed starts, each
        // coordinate's n samples land in n distinct strata — projected onto
        // any single axis the starts never collapse onto one value.
        let measured = measured_loop(100.0);
        let target = loop_metrics(&measured).unwrap();
        let points = starting_points(&target, 9, 7).unwrap();
        let guess = points[0];
        let n = points.len() - 1;
        for (extract, spread) in [
            (
                Box::new(|p: &JaParameters| p.m_sat.value() / guess.m_sat.value())
                    as Box<dyn Fn(&JaParameters) -> f64>,
                2.0f64,
            ),
            (Box::new(|p: &JaParameters| p.a / guess.a), 4.0),
            (Box::new(|p: &JaParameters| p.k / guess.k), 4.0),
            (Box::new(|p: &JaParameters| p.alpha / guess.alpha), 10.0),
        ] {
            let mut strata: Vec<usize> = points[1..]
                .iter()
                .map(|p| {
                    // Invert factor = spread^(2u-1) back to the unit sample.
                    let u = (extract(p).ln() / spread.ln() + 1.0) / 2.0;
                    assert!((0.0..1.0).contains(&u), "u = {u}");
                    (u * n as f64) as usize
                })
                .collect();
            strata.sort_unstable();
            strata.dedup();
            assert_eq!(strata.len(), n, "one sample per stratum");
        }
    }
}
