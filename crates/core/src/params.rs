//! Material parameters used by the model.
//!
//! The parameter set itself lives in the [`magnetics`] crate
//! ([`JaParameters`]); this module re-exports it and adds the anhysteretic
//! selection, so downstream code only needs one import path.

pub use magnetics::anhysteretic::{
    Anhysteretic, AnhystereticKind, DoubleArctan, Langevin, ModifiedLangevin,
};
pub use magnetics::material::{JaParameters, JaParametersBuilder};

/// Which anhysteretic law a model instance uses.
///
/// The paper uses the modified (arctangent) Langevin of Wilson et al.; the
/// classic Langevin and the two-parameter blend are provided for the
/// ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnhystereticChoice {
    /// The paper's modified Langevin, `(2/π)·atan(H_e/a)`.
    #[default]
    ModifiedLangevin,
    /// The original Langevin function, `coth(x) − 1/x`.
    Langevin,
    /// The two-parameter arctangent blend using `a` and `a2`.
    DoubleArctan,
}

impl AnhystereticChoice {
    /// Builds the concrete anhysteretic object for a parameter set.
    pub fn build(self, params: &JaParameters) -> AnhystereticKind {
        match self {
            AnhystereticChoice::ModifiedLangevin => params.modified_langevin().into(),
            AnhystereticChoice::Langevin => params.langevin().into(),
            AnhystereticChoice::DoubleArctan => params.double_arctan().into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_choice() {
        assert_eq!(
            AnhystereticChoice::default(),
            AnhystereticChoice::ModifiedLangevin
        );
    }

    #[test]
    fn build_produces_matching_kind() {
        let p = JaParameters::date2006();
        assert!(matches!(
            AnhystereticChoice::ModifiedLangevin.build(&p),
            AnhystereticKind::ModifiedLangevin(_)
        ));
        assert!(matches!(
            AnhystereticChoice::Langevin.build(&p),
            AnhystereticKind::Langevin(_)
        ));
        assert!(matches!(
            AnhystereticChoice::DoubleArctan.build(&p),
            AnhystereticKind::DoubleArctan(_)
        ));
    }

    #[test]
    fn anhysteretics_agree_at_zero_field() {
        let p = JaParameters::date2006();
        for choice in [
            AnhystereticChoice::ModifiedLangevin,
            AnhystereticChoice::Langevin,
            AnhystereticChoice::DoubleArctan,
        ] {
            assert!(choice.build(&p).normalised(0.0).abs() < 1e-12);
        }
    }
}
