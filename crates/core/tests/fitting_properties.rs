//! Property tests of the fitting subsystem.
//!
//! The key invariant of the coordinate-descent optimizer is monotonicity in
//! the pass budget: every pass can only keep or improve the incumbent, and
//! pass `k` of a `passes = n` run evaluates exactly the same candidate
//! sequence as pass `k` of a `passes = n + 1` run (the step-shrink schedule
//! depends only on the pass index).  So across materials, `fit_major_loop`
//! cost must be non-increasing in `passes`.

use proptest::prelude::*;

use ja_hysteresis::backend::HysteresisBackend;
use ja_hysteresis::fitting::{fit_major_loop, FitOptions};
use ja_hysteresis::model::JilesAtherton;
use magnetics::bh::BhCurve;
use magnetics::material::JaParameters;
use magnetics::units::Magnetisation;
use waveform::schedule::FieldSchedule;

fn measured_loop(params: JaParameters) -> BhCurve {
    let mut model = JilesAtherton::new(params).expect("valid truth parameters");
    let schedule = FieldSchedule::major_loop(10_000.0, 250.0, 2).expect("schedule");
    model.run_schedule(&schedule).expect("sweep")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cost_is_non_increasing_across_passes(
        k in 2_000.0_f64..6_000.0,
        c in 0.05_f64..0.35,
        m_sat_mega in 1.2_f64..1.8,
    ) {
        // A synthetic "measured" loop from known-but-varied parameters.
        let truth = JaParameters::builder()
            .m_sat(Magnetisation::from_megaamperes_per_meter(m_sat_mega))
            .k(k)
            .c(c)
            .build()
            .expect("valid truth parameters");
        let measured = measured_loop(truth);

        let cost_at = |passes: usize| {
            let options = FitOptions {
                passes,
                sweep_step: 250.0,
                ..FitOptions::default()
            };
            fit_major_loop(&measured, 10_000.0, &options)
                .expect("fit runs")
                .cost
        };
        let costs: Vec<f64> = (1..=3).map(cost_at).collect();
        for pair in costs.windows(2) {
            prop_assert!(
                pair[1] <= pair[0],
                "cost increased with more passes: {costs:?} (truth {truth:?})"
            );
        }
    }
}

/// The non-property companion: a deeper pass ladder on the paper's
/// material, including the evaluation-count sanity check (more passes do
/// strictly more work).
#[test]
fn pass_ladder_on_the_paper_material_is_monotone() {
    let measured = measured_loop(JaParameters::date2006());
    let mut previous: Option<(f64, usize)> = None;
    for passes in 1..=6 {
        let options = FitOptions {
            passes,
            sweep_step: 250.0,
            ..FitOptions::default()
        };
        let fit = fit_major_loop(&measured, 10_000.0, &options).expect("fit runs");
        if let Some((cost, evaluations)) = previous {
            assert!(
                fit.cost <= cost,
                "passes {passes}: cost {} > previous {cost}",
                fit.cost
            );
            assert!(fit.evaluations > evaluations);
        }
        previous = Some((fit.cost, fit.evaluations));
    }
}
