//! Turning-point (field-reversal) detection.
//!
//! The discontinuities of the JA slope occur exactly at the turning points
//! of the applied field, so both the models and the stability experiments
//! need to locate them in a sampled series.

/// Direction of a detected turning point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurningKind {
    /// A local maximum: the series was rising and starts falling.
    Maximum,
    /// A local minimum: the series was falling and starts rising.
    Minimum,
}

/// A turning point in a sampled series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurningPoint {
    /// Index of the extremal sample.
    pub index: usize,
    /// Value at the extremal sample.
    pub value: f64,
    /// Whether it is a maximum or a minimum.
    pub kind: TurningKind,
}

/// Finds every turning point of `samples`, ignoring reversals smaller than
/// `hysteresis` (useful to skip numerical jitter in solver output).
pub fn turning_points(samples: &[f64], hysteresis: f64) -> Vec<TurningPoint> {
    let mut result = Vec::new();
    if samples.len() < 3 {
        return result;
    }
    let mut direction: i8 = 0;
    let mut extreme_idx = 0usize;
    let mut extreme_val = samples[0];
    for (i, &v) in samples.iter().enumerate().skip(1) {
        match direction {
            0 => {
                if (v - extreme_val).abs() >= hysteresis {
                    direction = if v > extreme_val { 1 } else { -1 };
                    extreme_idx = i;
                    extreme_val = v;
                }
            }
            1 => {
                if v >= extreme_val {
                    extreme_idx = i;
                    extreme_val = v;
                } else if extreme_val - v >= hysteresis {
                    result.push(TurningPoint {
                        index: extreme_idx,
                        value: extreme_val,
                        kind: TurningKind::Maximum,
                    });
                    direction = -1;
                    extreme_idx = i;
                    extreme_val = v;
                }
            }
            _ => {
                if v <= extreme_val {
                    extreme_idx = i;
                    extreme_val = v;
                } else if v - extreme_val >= hysteresis {
                    result.push(TurningPoint {
                        index: extreme_idx,
                        value: extreme_val,
                        kind: TurningKind::Minimum,
                    });
                    direction = 1;
                    extreme_idx = i;
                    extreme_val = v;
                }
            }
        }
    }
    result
}

/// Counts sign changes of the first difference — a cheap proxy for the
/// number of reversals when no noise filtering is needed.
pub fn reversal_count(samples: &[f64]) -> usize {
    let mut count = 0;
    let mut prev_sign = 0.0;
    for w in samples.windows(2) {
        let d = w[1] - w[0];
        if d == 0.0 {
            continue;
        }
        let sign = d.signum();
        if prev_sign != 0.0 && sign != prev_sign {
            count += 1;
        }
        prev_sign = sign;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_alternating_turning_points() {
        // 0..10..0..-10..0 triangle samples
        let mut samples = Vec::new();
        for i in 0..=10 {
            samples.push(i as f64);
        }
        for i in (-10..10).rev() {
            samples.push(i as f64);
        }
        for i in -9..=0 {
            samples.push(i as f64);
        }
        let tps = turning_points(&samples, 0.5);
        assert_eq!(tps.len(), 2);
        assert_eq!(tps[0].kind, TurningKind::Maximum);
        assert_eq!(tps[0].value, 10.0);
        assert_eq!(tps[1].kind, TurningKind::Minimum);
        assert_eq!(tps[1].value, -10.0);
    }

    #[test]
    fn hysteresis_filters_jitter() {
        let samples = vec![0.0, 1.0, 0.95, 2.0, 1.9, 3.0, -3.0];
        // Without filtering, the small dips count as reversals.
        let loose = turning_points(&samples, 0.01);
        let tight = turning_points(&samples, 0.5);
        assert!(loose.len() > tight.len());
        assert_eq!(tight.len(), 1);
        assert_eq!(tight[0].value, 3.0);
    }

    #[test]
    fn short_series_has_no_turning_points() {
        assert!(turning_points(&[1.0, 2.0], 0.1).is_empty());
        assert!(turning_points(&[], 0.1).is_empty());
    }

    #[test]
    fn reversal_count_matches_triangle_cycles() {
        let mut samples = Vec::new();
        for cycle in 0..3 {
            for i in 0..20 {
                samples.push(if cycle % 2 == 0 {
                    i as f64
                } else {
                    20.0 - i as f64
                });
            }
        }
        // 3 monotone runs -> 2 reversals
        assert_eq!(reversal_count(&samples), 2);
        assert_eq!(reversal_count(&[1.0, 1.0, 1.0]), 0);
    }

    #[test]
    fn monotone_series_has_no_reversals() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        assert!(turning_points(&samples, 0.01).is_empty());
        assert_eq!(reversal_count(&samples), 0);
    }

    #[test]
    fn triangular_waveform_sweep_detects_every_apex() {
        // Two full cycles of the paper's ±10 kA/m triangular excitation,
        // sampled uniformly: apexes at +peak and −peak must be recovered
        // exactly, alternating maximum/minimum.
        let waveform = crate::triangular::Triangular::new(10_000.0, 1.0).unwrap();
        let samples: Vec<f64> = (0..=800)
            .map(|i| crate::Waveform::value(&waveform, i as f64 * 2.0 / 800.0))
            .collect();
        let tps = turning_points(&samples, 1.0);
        // Cycle apexes at t = 0.25, 0.75, 1.25, 1.75 → max, min, max, min.
        assert_eq!(tps.len(), 4);
        for (i, tp) in tps.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(tp.kind, TurningKind::Maximum);
                assert!((tp.value - 10_000.0).abs() < 1e-9, "apex {}", tp.value);
            } else {
                assert_eq!(tp.kind, TurningKind::Minimum);
                assert!((tp.value + 10_000.0).abs() < 1e-9, "apex {}", tp.value);
            }
        }
        assert_eq!(reversal_count(&samples), 4);
    }

    #[test]
    fn field_schedule_sweep_turning_points_match_breakpoints() {
        // The timeless view of the same stimulus: a major-loop field
        // schedule. Its interior breakpoints are exactly the turning points
        // the detector must find, at the right sample indices.
        let schedule = crate::schedule::FieldSchedule::major_loop(10_000.0, 10.0, 1).unwrap();
        let samples = schedule.to_samples();
        let tps = turning_points(&samples, 5.0);
        // One cycle 0 → +peak → −peak → 0 has two interior reversals.
        assert_eq!(tps.len(), 2);
        assert_eq!(tps[0].kind, TurningKind::Maximum);
        assert!((tps[0].value - 10_000.0).abs() < 1e-9);
        assert_eq!(tps[1].kind, TurningKind::Minimum);
        assert!((tps[1].value + 10_000.0).abs() < 1e-9);
        assert!((samples[tps[0].index] - 10_000.0).abs() < 1e-9);
        assert!((samples[tps[1].index] + 10_000.0).abs() < 1e-9);
    }
}
