//! Transient analysis with per-step Newton iteration and a pluggable step
//! controller.
//!
//! Two controllers are available through [`StepControl`]:
//!
//! * [`StepControl::Fixed`] — march `ceil(t_end / dt)` equal steps.  Time
//!   points are derived from the step *index* (`t_k = k·dt`, last step
//!   clamped to `t_end`), never from `t += dt` float accumulation, so the
//!   final time is exactly `t_end` and long runs do not drift.
//! * [`StepControl::Adaptive`] — a variable-step controller reusing
//!   [`AdaptiveOptions`] from the ODE layer.  Each step is accepted or
//!   rejected on a backward-Euler local-truncation-error estimate (half the
//!   tolerance-weighted per-step solution change), and the Newton iteration
//!   count feeds back into the step-size choice: a step that fails to
//!   converge or converges only near the iteration limit is barred from
//!   growing.  A guard recognises h-independent residuals (the quantised
//!   magnetisation updates of the timeless JA core produce companion
//!   voltages that *grow* as the step shrinks) and climbs out of them
//!   instead of refining into a noise floor; `min_step` acts as the
//!   resolution floor of the run, not a failure threshold.  This is the
//!   solver behaviour the paper's analogue-simulator experiments rely on:
//!   large steps through the flat, saturated stretches of the B–H loop,
//!   small steps around the knees and turning points where the magnetising
//!   current spikes.

use crate::circuit::elements::{CommitContext, StampContext};
use crate::circuit::{Circuit, Node};
use crate::error::SolverError;
use crate::linalg::Matrix;
use crate::ode::adaptive::AdaptiveOptions;

/// How [`TransientAnalysis`] chooses its time steps.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StepControl {
    /// Equal steps of [`TransientAnalysis::dt`], with index-based time
    /// arithmetic (the final time point is exactly `t_end`).
    #[default]
    Fixed,
    /// Variable steps controlled by a local-truncation-error estimate and
    /// Newton-iteration-count feedback.  `initial_step` seeds the first
    /// step; `min_step`/`max_step` bound the controller; `rel_tol`/
    /// `abs_tol` weight the per-unknown error estimate.
    Adaptive(AdaptiveOptions),
}

/// Configuration of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientAnalysis {
    /// Time-step size in seconds (fixed control), or ignored in favour of
    /// the controller's `initial_step` under adaptive control.
    pub dt: f64,
    /// End time in seconds (the run starts at `t = 0`).
    pub t_end: f64,
    /// Maximum Newton iterations per time step.
    pub max_newton_iterations: usize,
    /// Convergence tolerance on the solution update (per unknown, relative
    /// to `1 + |x|`).
    pub tolerance: f64,
    /// The step controller.
    pub control: StepControl,
}

impl TransientAnalysis {
    /// Creates a fixed-step transient analysis from a step size and an end
    /// time, with default Newton settings (50 iterations, 1e-9 tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidStep`] for non-finite or non-positive
    /// `dt` / `t_end`, or `dt > t_end`.
    pub fn new(dt: f64, t_end: f64) -> Result<Self, SolverError> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(SolverError::InvalidStep {
                name: "dt",
                value: dt,
            });
        }
        if !t_end.is_finite() || t_end <= 0.0 || dt > t_end {
            return Err(SolverError::InvalidStep {
                name: "t_end",
                value: t_end,
            });
        }
        Ok(Self {
            dt,
            t_end,
            max_newton_iterations: 50,
            tolerance: 1e-9,
            control: StepControl::Fixed,
        })
    }

    /// Creates an adaptive transient analysis from step-control options and
    /// an end time, with default Newton settings.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidStep`] for invalid options
    /// (`initial_step`/`min_step` not finite and positive,
    /// `max_step < min_step`) or a non-finite/non-positive `t_end`.
    pub fn adaptive(options: AdaptiveOptions, t_end: f64) -> Result<Self, SolverError> {
        options.validate()?;
        if !t_end.is_finite() || t_end <= 0.0 {
            return Err(SolverError::InvalidStep {
                name: "t_end",
                value: t_end,
            });
        }
        Ok(Self {
            dt: options.initial_step,
            t_end,
            max_newton_iterations: 50,
            tolerance: 1e-9,
            control: StepControl::Adaptive(options),
        })
    }

    /// Overrides the step controller.
    pub fn with_step_control(mut self, control: StepControl) -> Self {
        self.control = control;
        self
    }

    /// Overrides the Newton iteration limit.
    pub fn with_max_newton_iterations(mut self, limit: usize) -> Self {
        self.max_newton_iterations = limit.max(1);
        self
    }

    /// Overrides the convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Runs the analysis on a circuit, consuming and returning the mutated
    /// circuit (element states advance as the transient progresses) along
    /// with the result traces.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidCircuit`] for an empty circuit,
    /// [`SolverError::SingularMatrix`] when the MNA matrix cannot be
    /// factorised (floating node, inconsistent sources) and propagates any
    /// other solver error.  The adaptive controller itself cannot fail: at
    /// `min_step` it accepts the best available step (counting Newton
    /// non-convergence in the statistics) instead of erroring.
    pub fn run(&self, circuit: &mut Circuit) -> Result<TransientResult, SolverError> {
        let layout = SystemLayout::of(circuit)?;
        match self.control {
            StepControl::Fixed => self.run_fixed(circuit, &layout),
            StepControl::Adaptive(options) => self.run_adaptive(circuit, &layout, options),
        }
    }

    fn run_fixed(
        &self,
        circuit: &mut Circuit,
        layout: &SystemLayout,
    ) -> Result<TransientResult, SolverError> {
        let steps = fixed_step_count(self.dt, self.t_end);
        let mut workspace = Workspace::new(layout.n_unknowns);
        let mut stats = TransientStats::default();
        let mut x_prev = vec![0.0; layout.n_unknowns];
        let mut times = Vec::with_capacity(steps + 1);
        let mut solutions = Vec::with_capacity(steps + 1);
        times.push(0.0);
        solutions.push(x_prev.clone());

        // Per-step index arithmetic: t_k = k·dt with the final index pinned
        // to t_end, so no float accumulation can drift the grid and the run
        // always ends exactly at t_end.
        let mut t = 0.0;
        for k in 0..steps {
            let t_next = if k + 1 == steps {
                self.t_end
            } else {
                (k + 1) as f64 * self.dt
            };
            let h = t_next - t;
            let solve = self.newton_solve(
                circuit,
                layout,
                &mut workspace,
                &x_prev,
                x_prev.clone(),
                t_next,
                h,
                &mut stats,
            )?;
            if !solve.converged {
                stats.non_converged_steps += 1;
            }
            commit_elements(circuit, layout, &solve.x, t_next, h);
            stats.accepted_steps += 1;
            x_prev = solve.x;
            t = t_next;
            times.push(t);
            solutions.push(x_prev.clone());
        }

        Ok(TransientResult {
            times,
            solutions,
            node_count: layout.node_count,
            branch_offsets: layout.branch_offsets.clone(),
            stats,
            max_lte_estimate: None,
        })
    }

    fn run_adaptive(
        &self,
        circuit: &mut Circuit,
        layout: &SystemLayout,
        options: AdaptiveOptions,
    ) -> Result<TransientResult, SolverError> {
        // `TransientAnalysis::adaptive` validates on construction, but the
        // controller can also be injected through `with_step_control`.
        options.validate()?;

        let mut workspace = Workspace::new(layout.n_unknowns);
        let mut stats = TransientStats::default();
        let mut x_prev = vec![0.0; layout.n_unknowns];
        let mut times = vec![0.0];
        let mut solutions = vec![x_prev.clone()];
        let mut max_lte: f64 = 0.0;

        let mut t = 0.0;
        let mut h = options.initial_step.min(options.max_step).min(self.t_end);
        let mut first_step = true;
        // Error norm and step size of the previous rejected attempt at the
        // *same* time point.  Truncation error shrinks at least linearly
        // with h; when a ≥2x shrink fails to reduce the estimate, the
        // residual is a model discontinuity (e.g. the quantised
        // magnetisation updates of the timeless JA core, whose companion
        // voltage N·A·ΔB/h *grows* as h shrinks), and the controller
        // accepts instead of chasing an unreachable tolerance downward.
        // Such noise shrinks *relative to the real per-step change* as h
        // grows, so the accept also restores the pre-shrink step and climbs
        // from there — otherwise every reject-then-accept pair would net a
        // shrink and pin h at the noise floor.
        let mut last_rejected: Option<(f64, f64)> = None;

        while t < self.t_end {
            // A working step below the ulp of t cannot advance the grid
            // (t + h == t in f64): floor it there, whatever min_step says,
            // so a zero-length "accepted" step can never stall the loop or
            // break the strictly-increasing-times invariant.
            let ulp = (2.0 * t.abs() * f64::EPSILON).max(f64::MIN_POSITIVE);
            h = h.max(ulp);
            // Land exactly on t_end instead of overshooting or creeping up
            // to it through float residue.  The final sliver may legally be
            // shorter than min_step.
            let (t_next, h_step) = if self.t_end - t <= h {
                (self.t_end, self.t_end - t)
            } else {
                (t + h, h)
            };

            let solve = self.newton_solve(
                circuit,
                layout,
                &mut workspace,
                &x_prev,
                x_prev.clone(),
                t_next,
                h_step,
                &mut stats,
            )?;

            // Backward-Euler LTE estimate: the local error is −h²/2·x″ +
            // O(h³); half the per-step solution change (h·x′ to first
            // order) bounds it conservatively wherever the solution varies,
            // which is exactly where the estimate must bite.  `error_norm`
            // weighs the estimate against the controller tolerances;
            // `step_lte` is the tolerance-independent record kept for
            // diagnostics and the tolerance-halving property test.
            let mut error_norm: f64 = 0.0;
            let mut step_lte: f64 = 0.0;
            for (new, old) in solve.x.iter().zip(&x_prev) {
                let lte = 0.5 * (new - old).abs();
                let magnitude = new.abs().max(old.abs());
                let scale = options.abs_tol + options.rel_tol * magnitude;
                error_norm = error_norm.max(lte / scale);
                step_lte = step_lte.max(lte / (1.0 + magnitude));
            }

            // Acceptance.  Three ways past the plain `error_norm <= 1`
            // test, each of which keeps the controller out of a regime
            // where refinement cannot succeed:
            //
            // * the very first step — at t = 0 the algebraic unknowns jump
            //   from the all-zero initial guess to the operating point the
            //   sources impose, and that jump is not a truncation error
            //   (keep `initial_step` small);
            // * a "noise" step — shrinking did not reduce the estimate
            //   (see `last_rejected` above);
            // * the floor — a step already at `min_step` is taken rather
            //   than refined further; `min_step` is the resolution floor
            //   of the run, not a failure threshold.
            //
            // Newton non-convergence is NOT a rejection: shrinking the step
            // raises the companion gain N·A/h of a quantised core and makes
            // the corrector *less* likely to converge, so the best iterate
            // is accepted and counted (exactly what fixed stepping has
            // always done), while the LTE test above polices its quality —
            // a limit-cycling garbage iterate shows up as a large solution
            // change and is rejected on error, not on iteration count.
            let noise_accept =
                last_rejected.is_some_and(|(previous, _)| error_norm >= 0.9 * previous);
            let floor_accept = h_step <= options.min_step;
            if first_step || noise_accept || floor_accept || error_norm <= 1.0 {
                // The LTE record tracks truncation error only: start-up
                // jumps and discontinuity-noise accepts are excluded.
                if !first_step && error_norm <= 1.0 {
                    max_lte = max_lte.max(step_lte);
                }
                if !solve.converged {
                    stats.non_converged_steps += 1;
                }
                commit_elements(circuit, layout, &solve.x, t_next, h_step);
                stats.accepted_steps += 1;
                let rejected_h = last_rejected.map(|(_, h)| h);
                last_rejected = None;
                x_prev = solve.x;
                t = t_next;
                times.push(t);
                solutions.push(x_prev.clone());

                h = if noise_accept {
                    // h-independent residual: climb from the step size the
                    // rejection started at, not from the shrunken retry.
                    rejected_h.unwrap_or(h_step).max(h_step) * 1.2
                } else {
                    // First-order controller: the estimate scales
                    // ~linearly with h, so the optimal next step is
                    // h/error_norm with a safety factor; growth is capped
                    // at 2x per step.  Newton-iteration-count feedback: a
                    // corrector that did not converge, or needed more than
                    // half its iteration budget, bars growth.
                    let mut factor = if error_norm > 0.0 {
                        (0.8 / error_norm).min(2.0)
                    } else {
                        2.0
                    };
                    if !solve.converged || 2 * solve.iterations > self.max_newton_iterations {
                        factor = factor.min(1.0);
                    }
                    h_step * factor.max(0.25)
                }
                .clamp(options.min_step, options.max_step);
                first_step = false;
            } else {
                stats.rejected_steps += 1;
                last_rejected = Some((error_norm, h_step));
                // The shrink is floored at 4x: one noisy estimate must not
                // dive the step so deep that the controller spends many
                // noise-accepts climbing back out.
                h = (h_step * (0.8 / error_norm).clamp(0.25, 0.5)).max(options.min_step);
            }
        }

        Ok(TransientResult {
            times,
            solutions,
            node_count: layout.node_count,
            branch_offsets: layout.branch_offsets.clone(),
            stats,
            max_lte_estimate: Some(max_lte),
        })
    }

    /// One backward-Euler step: assembles and solves the Newton iteration
    /// for the system at `t_next` with step `h`, starting from `x_start`.
    /// Does not mutate element state — rejection is free.
    #[allow(clippy::too_many_arguments)]
    fn newton_solve(
        &self,
        circuit: &Circuit,
        layout: &SystemLayout,
        workspace: &mut Workspace,
        x_prev: &[f64],
        x_start: Vec<f64>,
        t_next: f64,
        h: f64,
        stats: &mut TransientStats,
    ) -> Result<NewtonSolve, SolverError> {
        let mut x_guess = x_start;
        for iteration in 0..self.max_newton_iterations {
            workspace.matrix.clear();
            workspace.rhs.iter_mut().for_each(|v| *v = 0.0);
            for (element, &offset) in circuit.elements().iter().zip(&layout.branch_offsets) {
                let mut ctx = StampContext {
                    matrix: &mut workspace.matrix,
                    rhs: &mut workspace.rhs,
                    x_guess: &x_guess,
                    x_prev,
                    node_count: layout.node_count,
                    branch_offset: offset,
                    time: t_next,
                    dt: h,
                };
                element.stamp(&mut ctx);
            }
            let x_new = workspace.matrix.solve(&workspace.rhs)?;
            stats.lu_solves += 1;
            stats.newton_iterations += 1;

            let mut max_delta: f64 = 0.0;
            for (new, old) in x_new.iter().zip(&x_guess) {
                let scale = 1.0 + new.abs().max(old.abs());
                max_delta = max_delta.max((new - old).abs() / scale);
            }
            x_guess = x_new;
            if max_delta <= self.tolerance && iteration > 0 {
                return Ok(NewtonSolve {
                    x: x_guess,
                    converged: true,
                    iterations: iteration + 1,
                });
            }
            // A purely linear circuit converges after the first solve;
            // detect that cheaply by checking the delta directly.
            if max_delta <= self.tolerance * 1e-3 {
                return Ok(NewtonSolve {
                    x: x_guess,
                    converged: true,
                    iterations: iteration + 1,
                });
            }
        }
        Ok(NewtonSolve {
            x: x_guess,
            converged: false,
            iterations: self.max_newton_iterations,
        })
    }
}

/// Number of fixed steps covering `[0, t_end]` in strides of `dt`: the
/// smallest count whose penultimate time index stays strictly below
/// `t_end`, guarding against `ceil` rounding an exact ratio up and
/// producing a zero-length (or negative) final step.
fn fixed_step_count(dt: f64, t_end: f64) -> usize {
    let steps = ((t_end / dt).ceil() as usize).max(1);
    if steps > 1 && (steps - 1) as f64 * dt >= t_end {
        steps - 1
    } else {
        steps
    }
}

/// Outcome of one Newton solve.
struct NewtonSolve {
    x: Vec<f64>,
    converged: bool,
    iterations: usize,
}

/// Unknown-vector layout of a circuit: node voltages first, then one slot
/// per element branch current.
struct SystemLayout {
    node_count: usize,
    branch_offsets: Vec<usize>,
    n_unknowns: usize,
}

impl SystemLayout {
    fn of(circuit: &Circuit) -> Result<Self, SolverError> {
        let node_count = circuit.node_count();
        if circuit.element_count() == 0 {
            return Err(SolverError::InvalidCircuit {
                reason: "circuit has no elements".into(),
            });
        }
        let mut branch_offsets = Vec::with_capacity(circuit.element_count());
        let mut total_branches = 0usize;
        for element in circuit.elements() {
            branch_offsets.push(total_branches);
            total_branches += element.branch_count();
        }
        let n_unknowns = node_count - 1 + total_branches;
        if n_unknowns == 0 {
            return Err(SolverError::InvalidCircuit {
                reason: "circuit has no unknowns (only ground)".into(),
            });
        }
        Ok(Self {
            node_count,
            branch_offsets,
            n_unknowns,
        })
    }
}

/// Reused per-run assembly scratch.
struct Workspace {
    matrix: Matrix,
    rhs: Vec<f64>,
}

impl Workspace {
    fn new(n: usize) -> Self {
        Self {
            matrix: Matrix::zeros(n, n),
            rhs: vec![0.0; n],
        }
    }
}

fn commit_elements(circuit: &mut Circuit, layout: &SystemLayout, x: &[f64], t_next: f64, h: f64) {
    for (element, &offset) in circuit
        .elements_mut()
        .iter_mut()
        .zip(&layout.branch_offsets)
    {
        let ctx = CommitContext {
            x,
            node_count: layout.node_count,
            branch_offset: offset,
            time: t_next,
            dt: h,
        };
        element.commit(&ctx);
    }
}

/// Solver statistics of a transient run — the cost / robustness numbers the
/// baseline-comparison experiments report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransientStats {
    /// Total Newton iterations over all steps (including rejected steps).
    pub newton_iterations: usize,
    /// Total LU factorisations + solves.
    pub lu_solves: usize,
    /// Steps that hit the Newton iteration limit without converging.
    /// Both controllers accept such steps with the best iterate and count
    /// them here (shrinking the step raises a quantised core's companion
    /// gain and makes the corrector *less* likely to converge, so there is
    /// no convergence-driven retry); under adaptive stepping the LTE test
    /// still polices the iterate's quality, and non-convergence bars the
    /// next step from growing.
    pub non_converged_steps: usize,
    /// Steps accepted into the result trace.
    pub accepted_steps: usize,
    /// Steps rejected (and retried smaller) by the adaptive controller —
    /// always zero under fixed stepping.
    pub rejected_steps: usize,
}

/// Result of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    solutions: Vec<Vec<f64>>,
    node_count: usize,
    branch_offsets: Vec<usize>,
    stats: TransientStats,
    max_lte_estimate: Option<f64>,
}

impl TransientResult {
    /// The time points (starting at 0; the last one is exactly `t_end`).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when the result holds no samples (cannot happen for a
    /// successful run).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Solver statistics.
    pub fn stats(&self) -> TransientStats {
        self.stats
    }

    /// Largest local-truncation-error estimate over the accepted steps
    /// that passed the LTE test (normalised per unknown by `1 + |x|`,
    /// independent of the controller tolerances).  `None` for fixed-step
    /// runs, which do not estimate the LTE.  Excluded from the record:
    /// the start-up step (its "error" is the t = 0 source turn-on, not
    /// truncation) and noise-/floor-accepted steps, whose residual is a
    /// model discontinuity rather than truncation error — so this value
    /// tracks how tightly the controller met its tolerance where meeting
    /// it was possible, not a global error bound.
    pub fn max_lte_estimate(&self) -> Option<f64> {
        self.max_lte_estimate
    }

    /// Voltage series of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidCircuit`] for an unknown node.
    pub fn voltage(&self, node: Node) -> Result<Vec<f64>, SolverError> {
        if node.0 >= self.node_count {
            return Err(SolverError::InvalidCircuit {
                reason: format!("unknown node {}", node.0),
            });
        }
        if node.is_ground() {
            return Ok(vec![0.0; self.times.len()]);
        }
        Ok(self.solutions.iter().map(|x| x[node.0 - 1]).collect())
    }

    /// Branch-current series of the element at `element_index` (as returned
    /// by [`Circuit::add`]); `local` selects the branch for elements with
    /// several.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidCircuit`] when the element index is out
    /// of range.
    pub fn branch_current(
        &self,
        element_index: usize,
        local: usize,
    ) -> Result<Vec<f64>, SolverError> {
        let offset =
            *self
                .branch_offsets
                .get(element_index)
                .ok_or_else(|| SolverError::InvalidCircuit {
                    reason: format!("unknown element index {element_index}"),
                })?;
        let idx = self.node_count - 1 + offset + local;
        Ok(self.solutions.iter().map(|x| x[idx]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::core_model::LinearCore;
    use crate::circuit::elements::{
        Capacitor, Inductor, NonlinearInductor, Resistor, VoltageSource,
    };
    use magnetics::constants::MU0;
    use waveform::generator::Constant;
    use waveform::sine::Sine;

    #[test]
    fn analysis_validation() {
        assert!(TransientAnalysis::new(0.0, 1.0).is_err());
        assert!(TransientAnalysis::new(1e-3, 0.0).is_err());
        assert!(TransientAnalysis::new(2.0, 1.0).is_err());
        assert!(TransientAnalysis::new(1e-3, 1.0).is_ok());
        assert!(TransientAnalysis::adaptive(
            AdaptiveOptions {
                initial_step: 0.0,
                ..AdaptiveOptions::default()
            },
            1.0
        )
        .is_err());
        assert!(TransientAnalysis::adaptive(
            AdaptiveOptions {
                max_step: 1e-16,
                ..AdaptiveOptions::default()
            },
            1.0
        )
        .is_err());
        assert!(TransientAnalysis::adaptive(
            AdaptiveOptions {
                abs_tol: 0.0,
                ..AdaptiveOptions::default()
            },
            1.0
        )
        .is_err());
        assert!(TransientAnalysis::adaptive(AdaptiveOptions::default(), 0.0).is_err());
        assert!(TransientAnalysis::adaptive(AdaptiveOptions::default(), 1e-3).is_ok());
    }

    #[test]
    fn empty_circuit_rejected() {
        let mut c = Circuit::new();
        let analysis = TransientAnalysis::new(1e-3, 1e-2).unwrap();
        assert!(analysis.run(&mut c).is_err());
    }

    fn divider() -> (Circuit, Node) {
        let mut c = Circuit::new();
        let vin = c.node();
        let vout = c.node();
        c.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(10.0)))
            .unwrap();
        c.add("R1", Resistor::new(vin, vout, 1000.0).unwrap())
            .unwrap();
        c.add("R2", Resistor::new(vout, Node::GROUND, 1000.0).unwrap())
            .unwrap();
        (c, vout)
    }

    #[test]
    fn resistive_divider() {
        let (mut c, vout) = divider();
        let result = TransientAnalysis::new(1e-4, 1e-3)
            .unwrap()
            .run(&mut c)
            .unwrap();
        let v = result.voltage(vout).unwrap();
        assert!((v.last().unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(result.voltage(Node::GROUND).unwrap().last().unwrap(), &0.0);
        assert!(result.voltage(Node(9)).is_err());
        assert!(!result.is_empty());
        assert!(result.stats().non_converged_steps == 0);
        assert_eq!(result.stats().accepted_steps, result.len() - 1);
        assert_eq!(result.stats().rejected_steps, 0);
        assert_eq!(result.max_lte_estimate(), None);
    }

    #[test]
    fn fixed_final_time_is_exact_even_when_dt_does_not_divide_t_end() {
        // 0.1 is not representable in binary: 10 accumulated additions end
        // at 0.9999999999999999, and 7 steps of 0.3 overshoot 2.0.  The
        // index-based grid must end exactly at t_end in both cases.
        for (dt, t_end) in [
            (0.1, 1.0),
            (0.3, 2.0),
            (1e-5, 1e-3),
            (2e-6, 2e-3),
            (7e-7, 1.3e-3),
        ] {
            let (mut c, _) = divider();
            let result = TransientAnalysis::new(dt, t_end)
                .unwrap()
                .run(&mut c)
                .unwrap();
            assert_eq!(
                *result.times().last().unwrap(),
                t_end,
                "dt = {dt}, t_end = {t_end}"
            );
            // And the time grid is strictly increasing: no zero-length or
            // negative final step from ceil() rounding.
            for pair in result.times().windows(2) {
                assert!(pair[1] > pair[0], "dt = {dt}: {pair:?}");
            }
        }
    }

    #[test]
    fn fixed_step_count_handles_ratio_rounding() {
        assert_eq!(fixed_step_count(0.1, 1.0), 10);
        assert_eq!(fixed_step_count(0.3, 2.0), 7);
        assert_eq!(fixed_step_count(1.0, 1.0), 1);
        assert_eq!(fixed_step_count(1e-5, 1e-3), 100);
        // 0.06 / 5e-5 = 1200 exactly in f64.
        assert_eq!(fixed_step_count(5e-5, 0.06), 1200);
    }

    #[test]
    fn rc_charging_curve() {
        // 1V step into R = 1k, C = 1µF: tau = 1 ms.
        let mut c = Circuit::new();
        let vin = c.node();
        let vc = c.node();
        c.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(1.0)))
            .unwrap();
        c.add("R1", Resistor::new(vin, vc, 1000.0).unwrap())
            .unwrap();
        c.add("C1", Capacitor::new(vc, Node::GROUND, 1e-6).unwrap())
            .unwrap();
        let result = TransientAnalysis::new(1e-5, 5e-3)
            .unwrap()
            .run(&mut c)
            .unwrap();
        let v = result.voltage(vc).unwrap();
        // After 5 tau the capacitor is essentially charged.
        assert!((v.last().unwrap() - 1.0).abs() < 0.01);
        // After 1 tau it should be ~63%.
        let idx_tau = (1e-3 / 1e-5) as usize;
        assert!((v[idx_tau] - 0.632).abs() < 0.02, "v(tau) = {}", v[idx_tau]);
    }

    #[test]
    fn adaptive_rc_matches_the_analytic_curve_with_fewer_steps() {
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node();
            let vc = c.node();
            c.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(1.0)))
                .unwrap();
            c.add("R1", Resistor::new(vin, vc, 1000.0).unwrap())
                .unwrap();
            c.add("C1", Capacitor::new(vc, Node::GROUND, 1e-6).unwrap())
                .unwrap();
            (c, vc)
        };

        let options = AdaptiveOptions {
            rel_tol: 8e-3,
            abs_tol: 1e-3,
            initial_step: 1e-7,
            min_step: 1e-12,
            max_step: 1e-3,
        };
        let (mut c, vc) = build();
        let adaptive = TransientAnalysis::adaptive(options, 5e-3)
            .unwrap()
            .run(&mut c)
            .unwrap();
        let (mut c_fixed, _) = build();
        let fixed = TransientAnalysis::new(1e-5, 5e-3)
            .unwrap()
            .run(&mut c_fixed)
            .unwrap();

        // The adaptive grid ends exactly at t_end too.
        assert_eq!(*adaptive.times().last().unwrap(), 5e-3);
        // Accuracy against the analytic RC charging curve at every accepted
        // time point.
        let v = adaptive.voltage(vc).unwrap();
        let worst = adaptive
            .times()
            .iter()
            .zip(&v)
            .map(|(&t, &v)| (v - (1.0 - (-t / 1e-3_f64).exp())).abs())
            .fold(0.0_f64, f64::max);
        // The 500-step fixed run's backward-Euler global error on this
        // circuit is ~5e-3; the adaptive run must be no worse.
        assert!(worst < 8e-3, "worst analytic error {worst}");
        // Fewer accepted steps than the 500-step fixed run; growth toward
        // max_step in the settled tail is the win.
        assert!(
            adaptive.stats().accepted_steps < fixed.stats().accepted_steps / 2,
            "adaptive {} vs fixed {}",
            adaptive.stats().accepted_steps,
            fixed.stats().accepted_steps
        );
        assert!(adaptive.max_lte_estimate().unwrap() > 0.0);
        assert_eq!(adaptive.stats().non_converged_steps, 0);
    }

    #[test]
    fn adaptive_concentrates_steps_where_the_solution_moves() {
        // A sine-driven RC: steps should bunch around the fast slews and
        // stretch near the crests.  Compare the shortest and longest
        // accepted step after the start-up phase.
        let mut c = Circuit::new();
        let vin = c.node();
        let vc = c.node();
        c.add(
            "V1",
            VoltageSource::new(vin, Node::GROUND, Sine::new(1.0, 50.0).unwrap()),
        )
        .unwrap();
        c.add("R1", Resistor::new(vin, vc, 1000.0).unwrap())
            .unwrap();
        c.add("C1", Capacitor::new(vc, Node::GROUND, 1e-6).unwrap())
            .unwrap();
        let options = AdaptiveOptions {
            rel_tol: 1e-3,
            abs_tol: 1e-6,
            initial_step: 1e-6,
            min_step: 1e-12,
            max_step: 2e-3,
        };
        let result = TransientAnalysis::adaptive(options, 0.04)
            .unwrap()
            .run(&mut c)
            .unwrap();
        let steps: Vec<f64> = result.times().windows(2).map(|w| w[1] - w[0]).collect();
        let tail = &steps[steps.len() / 4..];
        let min = tail.iter().copied().fold(f64::INFINITY, f64::min);
        let max = tail.iter().copied().fold(0.0_f64, f64::max);
        assert!(
            max / min > 3.0,
            "steps should vary with the waveform: min {min}, max {max}"
        );
    }

    #[test]
    fn rl_current_rise() {
        // 1V step into R = 10 Ω in series with L = 10 mH: i -> 0.1 A,
        // tau = 1 ms.
        let mut c = Circuit::new();
        let vin = c.node();
        let vl = c.node();
        c.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(1.0)))
            .unwrap();
        c.add("R1", Resistor::new(vin, vl, 10.0).unwrap()).unwrap();
        let l_index = c
            .add("L1", Inductor::new(vl, Node::GROUND, 10e-3).unwrap())
            .unwrap();
        let result = TransientAnalysis::new(1e-5, 6e-3)
            .unwrap()
            .run(&mut c)
            .unwrap();
        let i = result.branch_current(l_index, 0).unwrap();
        assert!(
            (i.last().unwrap() - 0.1).abs() < 2e-3,
            "i_end = {}",
            i.last().unwrap()
        );
        assert!(result.branch_current(99, 0).is_err());
    }

    #[test]
    fn nonlinear_inductor_with_linear_core_matches_linear_inductor() {
        // A linear core of mu_r makes the wound core equivalent to
        // L = mu0 * mu_r * N^2 * A / l.
        let turns = 100.0;
        let area = 1e-4;
        let path = 0.1;
        let mu_r = 1000.0;
        let l_equiv = MU0 * mu_r * turns * turns * area / path;

        let build = |use_nonlinear: bool| -> (Vec<f64>, usize) {
            let mut c = Circuit::new();
            let vin = c.node();
            let vl = c.node();
            c.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(1.0)))
                .unwrap();
            c.add("R1", Resistor::new(vin, vl, 50.0).unwrap()).unwrap();
            let idx = if use_nonlinear {
                c.add(
                    "NL",
                    NonlinearInductor::new(
                        vl,
                        Node::GROUND,
                        turns,
                        area,
                        path,
                        LinearCore::new(mu_r),
                    )
                    .unwrap(),
                )
                .unwrap()
            } else {
                c.add("L1", Inductor::new(vl, Node::GROUND, l_equiv).unwrap())
                    .unwrap()
            };
            let result = TransientAnalysis::new(2e-6, 2e-3)
                .unwrap()
                .run(&mut c)
                .unwrap();
            (result.branch_current(idx, 0).unwrap(), result.len())
        };

        let (i_nl, n1) = build(true);
        let (i_lin, n2) = build(false);
        assert_eq!(n1, n2);
        let max_diff = i_nl
            .iter()
            .zip(&i_lin)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-4, "max difference {max_diff}");
    }

    #[test]
    fn singular_circuit_reported() {
        // A node allocated but never connected leaves a zero row/column in
        // the MNA matrix — the factorisation must report it.
        let mut c = Circuit::new();
        let n1 = c.node();
        let _n_floating = c.node(); // allocated but never connected
        c.add("V1", VoltageSource::new(n1, Node::GROUND, Constant(1.0)))
            .unwrap();
        c.add("R1", Resistor::new(n1, Node::GROUND, 100.0).unwrap())
            .unwrap();
        let analysis = TransientAnalysis::new(1e-4, 1e-3).unwrap();
        let result = analysis.run(&mut c);
        assert!(matches!(result, Err(SolverError::SingularMatrix { .. })));
    }
}
