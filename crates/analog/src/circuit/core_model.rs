//! The hook through which a magnetic-core model plugs into the circuit
//! simulator.

/// A behavioural magnetic core: given the winding field `H`, it produces the
/// flux density `B` and its differential permeability, while keeping its own
/// internal history (hysteresis).
///
/// The transient engine calls [`evaluate`](MagneticCoreModel::evaluate)
/// repeatedly during Newton iteration (trial fields, no state change) and
/// [`commit`](MagneticCoreModel::commit) exactly once per accepted time
/// step.  The Jiles–Atherton models of the `hdl-models` crate implement this
/// trait; [`LinearCore`] is the trivial non-hysteretic implementation used
/// for testing and for linear-inductor comparisons.
pub trait MagneticCoreModel {
    /// Evaluates a trial field `h_new` (A/m) from the last committed state,
    /// returning `(B, dB/dH)` in (T, T·m/A).  Must not mutate history.
    fn evaluate(&self, h_new: f64) -> (f64, f64);

    /// Commits the step to `h_new`, updating the internal history.
    fn commit(&mut self, h_new: f64);

    /// Flux density at the last committed state (T).
    fn flux_density(&self) -> f64;

    /// Field at the last committed state (A/m).
    fn field(&self) -> f64;
}

/// A linear, non-hysteretic core: `B = µ0·µr·H`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearCore {
    mu_r: f64,
    h: f64,
}

impl LinearCore {
    /// Creates a linear core with relative permeability `mu_r`.
    pub fn new(mu_r: f64) -> Self {
        Self { mu_r, h: 0.0 }
    }

    /// The relative permeability.
    pub fn mu_r(&self) -> f64 {
        self.mu_r
    }
}

impl MagneticCoreModel for LinearCore {
    fn evaluate(&self, h_new: f64) -> (f64, f64) {
        let mu = magnetics::constants::MU0 * self.mu_r;
        (mu * h_new, mu)
    }

    fn commit(&mut self, h_new: f64) {
        self.h = h_new;
    }

    fn flux_density(&self) -> f64 {
        magnetics::constants::MU0 * self.mu_r * self.h
    }

    fn field(&self) -> f64 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::constants::MU0;

    #[test]
    fn linear_core_follows_mu() {
        let mut core = LinearCore::new(1000.0);
        assert_eq!(core.mu_r(), 1000.0);
        let (b, db_dh) = core.evaluate(100.0);
        assert!((b - MU0 * 1000.0 * 100.0).abs() < 1e-12);
        assert!((db_dh - MU0 * 1000.0).abs() < 1e-12);
        // Evaluate does not change state.
        assert_eq!(core.field(), 0.0);
        core.commit(100.0);
        assert_eq!(core.field(), 100.0);
        assert!((core.flux_density() - b).abs() < 1e-15);
    }
}
