//! Piecewise-linear waveform (SPICE-style `PWL` source).

use crate::error::WaveformError;
use crate::generator::Waveform;

/// A piecewise-linear waveform defined by `(t, value)` breakpoints.
///
/// Before the first breakpoint the waveform holds the first value; after the
/// last breakpoint it holds the last value.  Between breakpoints values are
/// linearly interpolated, which is exactly how SPICE `PWL` sources behave.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    breakpoints: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Creates a piecewise-linear waveform from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidBreakpoints`] when fewer than two
    /// breakpoints are given, times are not strictly increasing, or any
    /// coordinate is not finite.
    pub fn new(breakpoints: Vec<(f64, f64)>) -> Result<Self, WaveformError> {
        if breakpoints.len() < 2 {
            return Err(WaveformError::InvalidBreakpoints {
                reason: "at least two breakpoints are required",
            });
        }
        for pair in breakpoints.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(WaveformError::InvalidBreakpoints {
                    reason: "times must be strictly increasing",
                });
            }
        }
        if breakpoints
            .iter()
            .any(|(t, v)| !t.is_finite() || !v.is_finite())
        {
            return Err(WaveformError::InvalidBreakpoints {
                reason: "all coordinates must be finite",
            });
        }
        Ok(Self { breakpoints })
    }

    /// The breakpoints.
    pub fn breakpoints(&self) -> &[(f64, f64)] {
        &self.breakpoints
    }

    /// End time of the last breakpoint.
    pub fn end_time(&self) -> f64 {
        self.breakpoints.last().map(|(t, _)| *t).unwrap_or(0.0)
    }
}

impl Waveform for PiecewiseLinear {
    fn value(&self, t: f64) -> f64 {
        let first = self.breakpoints[0];
        let last = *self
            .breakpoints
            .last()
            .expect("validated: >= 2 breakpoints");
        if t <= first.0 {
            return first.1;
        }
        if t >= last.0 {
            return last.1;
        }
        // Binary search for the segment containing t.
        let idx = self
            .breakpoints
            .partition_point(|(bt, _)| *bt <= t)
            .saturating_sub(1);
        let (t0, v0) = self.breakpoints[idx];
        let (t1, v1) = self.breakpoints[idx + 1];
        let frac = (t - t0) / (t1 - t0);
        v0 + frac * (v1 - v0)
    }

    fn derivative(&self, t: f64) -> f64 {
        let first = self.breakpoints[0];
        let last = *self
            .breakpoints
            .last()
            .expect("validated: >= 2 breakpoints");
        if t < first.0 || t > last.0 {
            return 0.0;
        }
        let idx = self
            .breakpoints
            .partition_point(|(bt, _)| *bt <= t)
            .saturating_sub(1)
            .min(self.breakpoints.len() - 2);
        let (t0, v0) = self.breakpoints[idx];
        let (t1, v1) = self.breakpoints[idx + 1];
        (v1 - v0) / (t1 - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 10.0), (3.0, -10.0), (4.0, 0.0)]).unwrap()
    }

    #[test]
    fn rejects_invalid_breakpoints() {
        assert!(PiecewiseLinear::new(vec![(0.0, 1.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(1.0, 1.0), (0.5, 2.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(0.0, f64::NAN), (1.0, 2.0)]).is_err());
    }

    #[test]
    fn interpolates_between_breakpoints() {
        let w = ramp();
        assert!((w.value(0.5) - 5.0).abs() < 1e-12);
        assert!((w.value(2.0) - 0.0).abs() < 1e-12);
        assert!((w.value(3.5) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn holds_outside_range() {
        let w = ramp();
        assert_eq!(w.value(-1.0), 0.0);
        assert_eq!(w.value(100.0), 0.0);
        assert_eq!(w.derivative(-1.0), 0.0);
        assert_eq!(w.derivative(100.0), 0.0);
    }

    #[test]
    fn derivative_per_segment() {
        let w = ramp();
        assert!((w.derivative(0.5) - 10.0).abs() < 1e-12);
        assert!((w.derivative(2.0) + 10.0).abs() < 1e-12);
        assert!((w.derivative(3.5) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn accessors() {
        let w = ramp();
        assert_eq!(w.breakpoints().len(), 4);
        assert_eq!(w.end_time(), 4.0);
    }
}
