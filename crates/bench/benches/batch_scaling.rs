//! Batch scaling: the parallel scenario executor across worker counts.
//!
//! Runs a 64-scenario grid (4 backends × 4 `ΔH_max` configurations × 4
//! excitations) through `BatchRunner` at 1, 2, 4 and all available workers,
//! printing the observed wall-clock and aggregate speedup, then measures
//! each worker count with the Criterion harness.  The report is
//! deterministic at every worker count (asserted by
//! `tests/batch_determinism.rs`); this bench covers the performance side.

use criterion::{black_box, Criterion};
use hdl_models::exec::BatchRunner;
use hdl_models::scenario::{BackendKind, Excitation, Scenario, ScenarioGrid};
use ja_hysteresis::config::JaConfig;

fn grid_scenarios() -> Vec<Scenario> {
    let grid = ScenarioGrid::new()
        .backends(BackendKind::ALL)
        .config("dh5", JaConfig::default().with_dh_max(5.0))
        .config("dh10", JaConfig::default())
        .config("dh20", JaConfig::default().with_dh_max(20.0))
        .config("dh40", JaConfig::default().with_dh_max(40.0))
        .excitation("fig1", Excitation::fig1(50.0).expect("excitation"))
        .excitation(
            "major",
            Excitation::major_loop(10_000.0, 50.0, 2).expect("excitation"),
        )
        .excitation(
            "biased-minor",
            Excitation::biased_minor_loop(4_000.0, 2_000.0, 3, 50.0).expect("excitation"),
        )
        .excitation(
            "half-peak",
            Excitation::major_loop(5_000.0, 25.0, 2).expect("excitation"),
        );
    let scenarios = grid.scenarios().expect("non-empty grid");
    assert!(scenarios.len() >= 64, "grid too small for a scaling study");
    scenarios
}

fn worker_counts() -> Vec<usize> {
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut counts = vec![1, 2, 4];
    if !counts.contains(&available) {
        counts.push(available);
    }
    counts
}

fn print_experiment() {
    let scenarios = grid_scenarios();
    println!(
        "== batch scaling: {} scenarios (4 backends x 4 configs x 4 excitations) ==",
        scenarios.len()
    );
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>10}",
        "workers", "elapsed[ms]", "serial[ms]", "speedup", "failures"
    );
    let mut baseline_elapsed = None;
    for workers in worker_counts() {
        let report = BatchRunner::new().workers(workers).run(scenarios.clone());
        let elapsed = report.elapsed.as_secs_f64();
        let baseline = *baseline_elapsed.get_or_insert(elapsed);
        println!(
            "{:<10} {:>12.1} {:>14.1} {:>9.2}x {:>10}",
            report.workers,
            elapsed * 1e3,
            report.serial_runtime().as_secs_f64() * 1e3,
            if elapsed > 0.0 {
                baseline / elapsed
            } else {
                0.0
            },
            report.failures().count()
        );
    }
    println!(
        "\n(speedup = 1-worker elapsed over this row's elapsed; on a single-core\n\
         machine every row stays near 1x)\n"
    );
}

fn benches(c: &mut Criterion) {
    let scenarios = grid_scenarios();
    let mut group = c.benchmark_group("batch_scaling");
    group.sample_size(5);
    for workers in worker_counts() {
        let runner = BatchRunner::new().workers(workers);
        let scenarios = scenarios.clone();
        group.bench_function(format!("workers{workers}"), move |b| {
            b.iter(|| black_box(runner.run(scenarios.clone())))
        });
    }
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
