//! Integration test: the timeless JA core embedded in the MNA circuit
//! simulator (the "model inside SPICE" setting), spanning the
//! `analog-solver`, `ja-hysteresis` and `hdl-models` crates.

use ja_repro::analog_solver::circuit::elements::{NonlinearInductor, Resistor, VoltageSource};
use ja_repro::analog_solver::circuit::{Circuit, LinearCore, Node, TransientAnalysis};
use ja_repro::hdl_models::circuit_adapter::JaCoreAdapter;
use ja_repro::waveform::generator::Constant;
use ja_repro::waveform::sine::Sine;

/// Builds a source → resistor → wound core circuit and returns
/// (core element index, mutable circuit).
fn wound_core_circuit<W>(source: W, turns: f64, core: JaCoreAdapter) -> (usize, Circuit)
where
    W: ja_repro::waveform::Waveform + 'static,
{
    let mut circuit = Circuit::new();
    let v_in = circuit.node();
    let v_core = circuit.node();
    circuit
        .add("V1", VoltageSource::new(v_in, Node::GROUND, source))
        .unwrap();
    circuit
        .add("R1", Resistor::new(v_in, v_core, 1.0).unwrap())
        .unwrap();
    let idx = circuit
        .add(
            "CORE",
            NonlinearInductor::new(v_core, Node::GROUND, turns, 1.0e-4, 0.1, core).unwrap(),
        )
        .unwrap();
    (idx, circuit)
}

#[test]
fn hysteretic_core_saturates_and_distorts_the_current() {
    // 12 V peak puts the flux excursion just beyond the knee of the BH
    // curve, the classic condition for a spiky magnetising current.
    let (core_idx, mut circuit) = wound_core_circuit(
        Sine::new(12.0, 50.0).unwrap(),
        200.0,
        JaCoreAdapter::date2006().unwrap(),
    );
    let result = TransientAnalysis::new(5e-5, 0.06)
        .unwrap()
        .run(&mut circuit)
        .unwrap();
    let current = result.branch_current(core_idx, 0).unwrap();

    let peak = current.iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
    let rms = (current.iter().map(|i| i * i).sum::<f64>() / current.len() as f64).sqrt();
    // A saturating magnetising current has a crest factor well above a
    // sine's 1.41.
    assert!(peak / rms > 1.8, "crest factor {}", peak / rms);
    assert!(result.stats().newton_iterations > 0);
    // The hysteresis model's update threshold makes its small-signal
    // derivative piecewise, so a handful of steps may stop at the Newton
    // iteration limit; they must stay a small minority.
    assert!(
        result.stats().non_converged_steps < result.len() / 20,
        "{} of {} steps did not converge",
        result.stats().non_converged_steps,
        result.len()
    );
}

#[test]
fn hysteretic_core_remembers_its_state_after_excitation_is_removed() {
    // Drive the core hard with a DC step, then watch the flux: it must not
    // return to zero (remanence), unlike a linear core.
    let mut adapter = JaCoreAdapter::date2006().unwrap();
    // Pre-magnetise directly through the adapter interface.
    use ja_repro::analog_solver::circuit::MagneticCoreModel;
    for h in (0..=100).map(|i| i as f64 * 100.0) {
        adapter.commit(h);
    }
    for h in (0..=100).rev().map(|i| i as f64 * 100.0) {
        adapter.commit(h);
    }
    let remanent_b = adapter.flux_density();
    assert!(remanent_b > 0.3, "remanent flux density {remanent_b} T");

    let mut linear = LinearCore::new(1000.0);
    for h in (0..=100).map(|i| i as f64 * 100.0) {
        linear.commit(h);
    }
    for h in (0..=100).rev().map(|i| i as f64 * 100.0) {
        linear.commit(h);
    }
    assert!(linear.flux_density().abs() < 1e-12);
}

#[test]
fn dc_drive_settles_to_resistance_limited_current() {
    // With a DC source the steady-state current is limited by the series
    // resistance only (the core saturates and stops opposing).
    let (core_idx, mut circuit) =
        wound_core_circuit(Constant(10.0), 200.0, JaCoreAdapter::date2006().unwrap());
    let result = TransientAnalysis::new(1e-4, 0.2)
        .unwrap()
        .run(&mut circuit)
        .unwrap();
    let current = result.branch_current(core_idx, 0).unwrap();
    let final_current = *current.last().unwrap();
    assert!(
        (final_current - 10.0).abs() < 0.5,
        "steady-state current {final_current} A (expected ~10 A through 1 Ω)"
    );
}
