//! Signals with evaluate/update (delta-cycle) semantics.

use crate::error::KernelError;
use crate::value::Value;

/// Identifier of a signal within a [`SignalStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// The raw index of the signal.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Storage for all signals of a kernel.
///
/// Writes performed during process evaluation are *pending* until
/// [`SignalStore::update_into`] commits them — the core of the delta-cycle
/// semantics the SystemC model relies on: `JA::core()` can read `H` and
/// write `hchanged` without the write being observed in the same
/// evaluation.
///
/// The store keeps its fields as parallel arrays rather than an
/// array-of-slots: the update phase touches only `currents` and
/// `pendings`, which this layout packs densely, while the cold `names`
/// and `initials` stay out of the hot cache lines.
#[derive(Debug, Default, Clone)]
pub struct SignalStore {
    names: Vec<String>,
    /// Construction-time values, kept so [`SignalStore::reset`] can
    /// restore the store without re-declaring every signal.
    initials: Vec<Value>,
    currents: Vec<Value>,
    pendings: Vec<Option<Value>>,
    /// Ids with a pending write, in first-write order, so the update phase
    /// only touches slots that were actually written instead of scanning the
    /// whole store every delta cycle.  Deduplicated by the pending `Option`
    /// itself: a second write to the same slot finds `pending` already set
    /// and does not push again.
    dirty: Vec<SignalId>,
}

impl SignalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a signal with a display name and an initial value.
    pub fn add(&mut self, name: impl Into<String>, initial: Value) -> SignalId {
        let id = SignalId(self.names.len());
        self.names.push(name.into());
        self.initials.push(initial);
        self.currents.push(initial);
        self.pendings.push(None);
        id
    }

    /// Number of signals.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the store holds no signals.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Display name of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn name(&self, id: SignalId) -> Result<&str, KernelError> {
        self.names
            .get(id.0)
            .map(String::as_str)
            .ok_or(KernelError::UnknownSignal { id })
    }

    /// Current (committed) value of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    #[inline]
    pub fn read(&self, id: SignalId) -> Result<Value, KernelError> {
        self.currents
            .get(id.0)
            .copied()
            .ok_or(KernelError::UnknownSignal { id })
    }

    /// Reads a real-valued signal in one bounds check and one match —
    /// the hot path of every process evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] or
    /// [`KernelError::TypeMismatch`].
    #[inline]
    pub fn read_real(&self, id: SignalId) -> Result<f64, KernelError> {
        self.currents
            .get(id.0)
            .ok_or(KernelError::UnknownSignal { id })?
            .as_real()
    }

    /// Reads a bit-valued signal (see [`read_real`](Self::read_real)).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] or
    /// [`KernelError::TypeMismatch`].
    #[inline]
    pub fn read_bit(&self, id: SignalId) -> Result<bool, KernelError> {
        self.currents
            .get(id.0)
            .ok_or(KernelError::UnknownSignal { id })?
            .as_bit()
    }

    /// Reads an integer-valued signal (see [`read_real`](Self::read_real)).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] or
    /// [`KernelError::TypeMismatch`].
    #[inline]
    pub fn read_int(&self, id: SignalId) -> Result<i64, KernelError> {
        self.currents
            .get(id.0)
            .ok_or(KernelError::UnknownSignal { id })?
            .as_int()
    }

    /// Schedules a new value for the next update phase.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    #[inline]
    pub fn write(&mut self, id: SignalId, value: Value) -> Result<(), KernelError> {
        let pending = self
            .pendings
            .get_mut(id.0)
            .ok_or(KernelError::UnknownSignal { id })?;
        if pending.is_none() {
            self.dirty.push(id);
        }
        *pending = Some(value);
        Ok(())
    }

    /// Overwrites the committed value immediately, bypassing the delta
    /// cycle.  Intended for initialisation before the simulation starts.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn force(&mut self, id: SignalId, value: Value) -> Result<(), KernelError> {
        let current = self
            .currents
            .get_mut(id.0)
            .ok_or(KernelError::UnknownSignal { id })?;
        *current = value;
        self.pendings[id.0] = None;
        Ok(())
    }

    /// Commits every pending write, collecting into `changed` the ids of the
    /// signals whose committed value actually changed (writes of an
    /// identical value do not generate events).
    ///
    /// `changed` is cleared first; the caller keeps and reuses the buffer,
    /// so the per-delta-cycle update phase allocates nothing once the
    /// buffer has grown to the store's size.
    ///
    /// `changed` lists the signals in first-write order, not id order; the
    /// kernel sorts its ready set before every evaluate phase, so this order
    /// never reaches process execution.
    pub fn update_into(&mut self, changed: &mut Vec<SignalId>) {
        changed.clear();
        self.commit_dirty(|id| changed.push(id));
    }

    /// Commits every pending write, invoking `on_changed` for each signal
    /// whose committed value actually changed — the zero-buffer core of
    /// [`update_into`](Self::update_into) the kernel's delta-cycle loop
    /// drives directly, reacting to each change in place instead of
    /// collecting ids first.
    #[inline]
    pub fn commit_dirty(&mut self, mut on_changed: impl FnMut(SignalId)) {
        // Indexed loop, not an iterator: the dirty list and the value
        // arrays live in the same struct, and indexing keeps the borrows
        // disjoint without moving the list out and back.
        for i in 0..self.dirty.len() {
            let id = self.dirty[i];
            // `force` discards a pending write without touching the dirty
            // list, so a stale entry can carry no pending value here.
            if let Some(next) = self.pendings[id.0].take() {
                let current = &mut self.currents[id.0];
                if next.differs_from(current) {
                    *current = next;
                    on_changed(id);
                }
            }
        }
        self.dirty.clear();
    }

    /// `true` when at least one write is waiting to be committed.
    pub fn has_pending(&self) -> bool {
        self.pendings.iter().any(Option::is_some)
    }

    /// Restores every signal to its construction-time initial value and
    /// discards pending writes, keeping the signals themselves (names and
    /// ids stay valid).
    pub fn reset(&mut self) {
        self.currents.copy_from_slice(&self.initials);
        for pending in &mut self.pendings {
            *pending = None;
        }
        self.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(store: &mut SignalStore) -> Vec<SignalId> {
        let mut changed = Vec::new();
        store.update_into(&mut changed);
        changed
    }

    #[test]
    fn add_read_write_update_cycle() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Real(0.0));
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.name(a).unwrap(), "a");

        store.write(a, Value::Real(5.0)).unwrap();
        // Not yet visible.
        assert_eq!(store.read(a).unwrap(), Value::Real(0.0));
        assert!(store.has_pending());

        let changed = update(&mut store);
        assert_eq!(changed, vec![a]);
        assert_eq!(store.read(a).unwrap(), Value::Real(5.0));
        assert!(!store.has_pending());
    }

    #[test]
    fn update_into_reuses_and_clears_the_buffer() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Int(0));
        let mut changed = vec![SignalId(99)]; // stale content from a previous cycle
        store.write(a, Value::Int(1)).unwrap();
        store.update_into(&mut changed);
        assert_eq!(changed, vec![a]);
        store.update_into(&mut changed);
        assert!(changed.is_empty(), "no pending writes -> cleared buffer");
    }

    #[test]
    fn identical_write_is_not_an_event() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Bit(false));
        store.write(a, Value::Bit(false)).unwrap();
        assert!(update(&mut store).is_empty());
    }

    #[test]
    fn last_write_wins_within_a_delta() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Int(0));
        store.write(a, Value::Int(1)).unwrap();
        store.write(a, Value::Int(2)).unwrap();
        let changed = update(&mut store);
        assert_eq!(changed.len(), 1);
        assert_eq!(store.read(a).unwrap(), Value::Int(2));
    }

    #[test]
    fn force_bypasses_delta() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Real(0.0));
        store.write(a, Value::Real(9.0)).unwrap();
        store.force(a, Value::Real(1.0)).unwrap();
        assert_eq!(store.read(a).unwrap(), Value::Real(1.0));
        // The pending write was discarded by force().
        assert!(update(&mut store).is_empty());
    }

    #[test]
    fn reset_restores_initial_values_and_drops_pending() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Real(1.5));
        let b = store.add("b", Value::Bit(true));
        store.write(a, Value::Real(9.0)).unwrap();
        update(&mut store);
        store.write(b, Value::Bit(false)).unwrap(); // still pending
        store.reset();
        assert_eq!(store.read(a).unwrap(), Value::Real(1.5));
        assert_eq!(store.read(b).unwrap(), Value::Bit(true));
        assert!(!store.has_pending());
        assert_eq!(store.name(a).unwrap(), "a", "signals survive reset");
    }

    #[test]
    fn unknown_signal_rejected() {
        let mut store = SignalStore::new();
        let foreign = SignalId(17);
        assert!(store.read(foreign).is_err());
        assert!(store.write(foreign, Value::Bit(true)).is_err());
        assert!(store.name(foreign).is_err());
        assert!(store.force(foreign, Value::Bit(true)).is_err());
    }

    #[test]
    fn signal_id_index() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Real(0.0));
        let b = store.add("b", Value::Real(0.0));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }
}
