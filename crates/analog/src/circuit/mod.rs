//! Modified nodal analysis (MNA) circuit simulation.
//!
//! A deliberately small SPICE-like transient engine: enough to embed a
//! hysteretic core in a realistic drive circuit (voltage source, series
//! resistor, wound core, optional secondary load) and to reproduce the
//! "model inside an analogue solver" setting the paper contrasts its
//! timeless technique against.
//!
//! * [`Node`] / [`Circuit`] — netlist construction;
//! * [`elements`] — resistors, capacitors, inductors, independent sources
//!   and the behavioural [`elements::NonlinearInductor`];
//! * [`MagneticCoreModel`] — the hook a hysteresis model implements to sit
//!   inside the nonlinear inductor;
//! * [`transient`] — transient analysis with per-step Newton iteration,
//!   convergence statistics and a pluggable step controller
//!   ([`StepControl`]): index-arithmetic fixed stepping or an adaptive
//!   LTE-controlled variable step.

pub mod core_model;
pub mod elements;
pub mod transient;

pub use core_model::{LinearCore, MagneticCoreModel};
pub use elements::{
    Capacitor, CurrentSource, Element, Inductor, NonlinearInductor, Resistor, VoltageSource,
};
pub use transient::{StepControl, TransientAnalysis, TransientResult, TransientStats};

use crate::error::SolverError;

/// A circuit node.  Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Node(pub usize);

impl Node {
    /// The ground (reference) node.
    pub const GROUND: Node = Node(0);

    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A netlist: a set of nodes and the elements connecting them.
pub struct Circuit {
    node_count: usize,
    elements: Vec<Box<dyn Element>>,
    labels: Vec<String>,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self {
            node_count: 1,
            elements: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Allocates a new node and returns it.
    pub fn node(&mut self) -> Node {
        let n = Node(self.node_count);
        self.node_count += 1;
        n
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Adds an element with a display label, returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidCircuit`] when the element references a
    /// node that has not been allocated.
    pub fn add(
        &mut self,
        label: impl Into<String>,
        element: impl Element + 'static,
    ) -> Result<usize, SolverError> {
        for node in element.nodes() {
            if node.0 >= self.node_count {
                return Err(SolverError::InvalidCircuit {
                    reason: format!("element references unknown node {}", node.0),
                });
            }
        }
        self.elements.push(Box::new(element));
        self.labels.push(label.into());
        Ok(self.elements.len() - 1)
    }

    /// Element labels in insertion order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    pub(crate) fn elements(&self) -> &[Box<dyn Element>] {
        &self.elements
    }

    pub(crate) fn elements_mut(&mut self) -> &mut [Box<dyn Element>] {
        &mut self.elements
    }
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Circuit")
            .field("nodes", &self.node_count)
            .field("elements", &self.labels)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::elements::Resistor;

    #[test]
    fn ground_node_properties() {
        assert!(Node::GROUND.is_ground());
        assert!(!Node(1).is_ground());
    }

    #[test]
    fn node_allocation_is_sequential() {
        let mut c = Circuit::new();
        assert_eq!(c.node_count(), 1);
        let a = c.node();
        let b = c.node();
        assert_eq!(a, Node(1));
        assert_eq!(b, Node(2));
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn add_rejects_unknown_node() {
        let mut c = Circuit::new();
        let err = c
            .add("R1", Resistor::new(Node(5), Node::GROUND, 100.0).unwrap())
            .unwrap_err();
        assert!(matches!(err, SolverError::InvalidCircuit { .. }));
    }

    #[test]
    fn add_registers_label() {
        let mut c = Circuit::new();
        let n = c.node();
        c.add("R1", Resistor::new(n, Node::GROUND, 100.0).unwrap())
            .unwrap();
        assert_eq!(c.labels(), &["R1".to_string()]);
        assert_eq!(c.element_count(), 1);
        assert!(format!("{c:?}").contains("R1"));
    }
}
