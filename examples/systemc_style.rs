//! The SystemC-style event-driven model: the paper's three processes
//! (`core`, `monitorH`, `Integral`) running on the discrete-event kernel,
//! compared against the equation-style (VHDL-AMS-like) implementation.
//!
//! Run with: `cargo run --example systemc_style`

use std::error::Error;

use ja_repro::hdl_models::comparison::{fig1_schedule, implementation_equivalence};
use ja_repro::hdl_models::systemc::SystemCJaCore;
use ja_repro::magnetics::loop_analysis;

fn main() -> Result<(), Box<dyn Error>> {
    // DC-sweep (timeless) run of the SystemC port.
    let schedule = fig1_schedule(10.0)?;
    let mut core = SystemCJaCore::date2006()?;
    let curve = core.run_schedule(&schedule)?;
    let metrics = loop_analysis::loop_metrics(&curve)?;

    println!("== SystemC-style model, timeless DC sweep ==");
    println!("  samples            = {}", curve.len());
    println!("  process activations= {}", core.activations());
    println!("  delta cycles       = {}", core.delta_cycles());
    println!("  B_max              = {:.3} T", metrics.b_max.as_tesla());
    println!("  coercivity         = {:.0} A/m", metrics.coercivity.value());
    println!("  remanence          = {:.3} T", metrics.remanence.as_tesla());
    println!("  negative dB/dH     = {}", metrics.negative_slope_samples);

    // Timed testbench: the same module driven by scheduled signal writes.
    let samples: Vec<f64> = schedule.to_samples().into_iter().take(2_000).collect();
    let mut timed = SystemCJaCore::date2006()?;
    let (timed_curve, recorder) = timed.run_timed(&samples, 1e-6)?;
    println!("\n== SystemC-style model, timed testbench ==");
    println!("  events simulated   = {}", recorder.len());
    println!("  final sim time     = {} us", recorder.times().last().map(|t| t.as_seconds() * 1e6).unwrap_or(0.0));
    println!("  B at end           = {:.4} T", timed_curve.last().map(|p| p.b.as_tesla()).unwrap_or(0.0));

    // Equivalence with the equation-style implementation (paper: "both
    // implementations produce virtually identical results").
    let report = implementation_equivalence(10.0)?;
    println!("\n== SystemC vs AMS-style equivalence (experiment E6) ==");
    println!("  samples compared   = {}", report.samples);
    println!("  max |dB|           = {:.3e} T", report.max_abs_diff_b);
    println!("  relative to B_max  = {:.3e}", report.relative_diff);
    println!("  SystemC activations= {}", report.systemc_activations);
    println!("  AMS slope updates  = {}", report.ams_updates);
    Ok(())
}
