//! Experiment E1 / Fig. 1: the BH curve with non-biased minor loops.
//!
//! Prints the loop metrics of the reproduced figure for the timeless
//! backends, then benchmarks the full sweep through the scenario engine,
//! plus the allocation-free `run_schedule_into` driving path.

use criterion::{black_box, Criterion};
use hdl_models::comparison::{fig1_schedule, DEFAULT_STEP};
use hdl_models::scenario::{BackendKind, Scenario};
use ja_bench::{print_metrics_header, print_outcome_row};
use ja_hysteresis::backend::HysteresisBackend;
use ja_hysteresis::model::JilesAtherton;
use magnetics::bh::BhCurve;
use magnetics::material::JaParameters;

fn print_experiment() {
    println!(
        "== E1 / Fig. 1: BH curve, triangular DC sweep ±10 kA/m with non-biased minor loops =="
    );
    println!("paper reference: B spans roughly ±2 T over ±10 kA/m (Fig. 1 axes)\n");
    print_metrics_header();
    for backend in BackendKind::TIMELESS {
        let outcome = Scenario::fig1(backend, DEFAULT_STEP)
            .expect("valid scenario")
            .run()
            .expect("paper parameters cannot diverge");
        print_outcome_row(&outcome);
    }
    println!();
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_bh_curve");
    group.sample_size(10);
    for backend in [BackendKind::SystemC, BackendKind::DirectTimeless] {
        let scenario = Scenario::fig1(backend, DEFAULT_STEP).expect("valid scenario");
        group.bench_function(format!("{}_sweep", backend.label()), |b| {
            b.iter(|| black_box(scenario.run().expect("sweep")))
        });
    }
    // The metrics-only driving path: reset + run_schedule_into reuse one
    // model and one trace buffer across iterations (no per-sweep
    // allocation), the lower bound the scenario path is compared against.
    let schedule = fig1_schedule(DEFAULT_STEP).expect("valid schedule");
    let mut model = JilesAtherton::new(JaParameters::date2006()).expect("valid params");
    let mut curve = BhCurve::with_capacity(schedule.len());
    group.bench_function("direct-timeless_sweep_into_reused_buffer", |b| {
        b.iter(|| {
            HysteresisBackend::reset(&mut model).expect("reset");
            model
                .run_schedule_into(&schedule, &mut curve)
                .expect("sweep");
            black_box(curve.len())
        })
    });
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
