//! Minor-loop robustness: "various minor loop sizes and in different
//! positions" (paper, §2), plus a demagnetisation sweep.
//!
//! Run with: `cargo run --example minor_loops`

use std::error::Error;

use ja_repro::hdl_models::comparison::minor_loop_study;
use ja_repro::ja_hysteresis::model::JilesAtherton;
use ja_repro::ja_hysteresis::sweep::sweep_schedule;
use ja_repro::magnetics::loop_analysis;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::waveform::export::ascii_plot;
use ja_repro::waveform::schedule::FieldSchedule;

fn main() -> Result<(), Box<dyn Error>> {
    // A grid of loop positions (bias) and sizes (amplitude).
    let biases = [0.0, 2_000.0, 5_000.0, -4_000.0];
    let amplitudes = [500.0, 1_500.0, 3_000.0];
    let cases = minor_loop_study(&biases, &amplitudes, 10.0)?;

    println!("bias [A/m]  amplitude [A/m]  loop area [J/m^3]  closure |dB| [T]  neg.slope samples");
    for case in &cases {
        println!(
            "{:>10.0}  {:>15.0}  {:>17.1}  {:>16.4}  {:>18}",
            case.bias,
            case.amplitude,
            case.loop_area,
            case.closure_error,
            case.negative_slope_samples
        );
    }
    let robust = cases.iter().all(|c| c.negative_slope_samples == 0);
    println!(
        "\nall {} loops produced without numerical difficulties: {}",
        cases.len(),
        robust
    );

    // Demagnetisation: decaying loop amplitudes walk the core back towards
    // the origin through a sequence of shrinking minor loops.
    let mut model = JilesAtherton::new(JaParameters::date2006())?;
    // First magnetise hard.
    sweep_schedule(&mut model, &FieldSchedule::major_loop(10_000.0, 10.0, 1)?)?;
    let remanent = model.flux_density().as_tesla();
    let demag = FieldSchedule::demagnetisation(10_000.0, 50.0, 0.85, 10.0)?;
    let result = sweep_schedule(&mut model, &demag)?;
    let final_b = model.flux_density().as_tesla();
    println!("\ndemagnetisation: B before = {remanent:.3} T, after = {final_b:.3} T");

    let h: Vec<f64> = result.curve().points().iter().map(|p| p.h.value() / 1000.0).collect();
    let b: Vec<f64> = result.curve().points().iter().map(|p| p.b.as_tesla()).collect();
    println!("\ndemagnetisation trajectory (x: H in kA/m, y: B in T):");
    println!("{}", ascii_plot(&h, &b, 72, 22)?);

    let metrics = loop_analysis::loop_metrics(result.curve())?;
    println!("negative-slope samples during demagnetisation: {}", metrics.negative_slope_samples);
    Ok(())
}
