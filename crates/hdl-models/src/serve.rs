//! A minimal, dependency-free serving layer for the scenario engine.
//!
//! The ROADMAP's "millions of users" direction needs a long-running
//! daemon, but the container has no registry access, so there is no
//! hyper/tokio. This module hand-rolls the small slice of HTTP/1.1 the
//! `ja serve` daemon actually needs on top of [`std::net::TcpListener`]
//! and the same scoped-thread discipline as [`crate::exec`]:
//!
//! * [`HttpRequest`]/[`HttpResponse`] — a strict parser and a
//!   deterministic writer for one-request-per-connection HTTP/1.1
//!   (`Connection: close`, `Content-Length` framing, no chunked
//!   transfer coding). The full wire contract is specified in
//!   `docs/PROTOCOL.md`.
//! * [`serve`] — the accept/dispatch loop: a bounded admission queue
//!   (`mpsc::sync_channel`) feeding a fixed pool of worker threads.
//!   The queue bound plus the worker count *is* the admission policy:
//!   when the queue is full new connections are answered immediately
//!   with `503 Service Unavailable` instead of piling up latency.
//!   Setting the shared shutdown flag drains in-flight and queued
//!   requests, refuses new ones, and returns a [`ServeSummary`].
//! * [`ResultCache`] — a content-addressed response cache with an LRU
//!   byte budget. Because reports are byte-deterministic (see
//!   `docs/ARCHITECTURE.md`), a repeated request keyed by
//!   `json::content_hash` can be answered with the identical bytes
//!   without re-evaluating anything.
//!
//! The module is protocol-complete but policy-free: it knows nothing
//! about report kinds or scenario grids. The `ja` CLI injects a handler
//! closure that parses request documents and dispatches onto
//! [`crate::exec::BatchRunner`] / [`crate::fit::fit_batch`].

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use ja_hysteresis::json::{JsonValue, SCHEMA_VERSION, SCHEMA_VERSION_KEY};

/// Maximum accepted length of the request line (method + path + version).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum accepted length of a single header line.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum accepted number of headers.
const MAX_HEADERS: usize = 64;
/// How often the waker thread checks the shutdown flag.  The accept loop
/// itself blocks in `accept()` — no connection ever waits on a poll
/// interval — so this only bounds how quickly a SIGINT is noticed.
const SHUTDOWN_POLL: Duration = Duration::from_millis(5);

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads, i.e. the maximum number of in-flight requests.
    /// Clamped to at least 1.
    pub workers: usize,
    /// Accepted connections that may wait beyond the in-flight ones.
    /// `0` means rendezvous admission: a connection is only accepted
    /// when a worker is already free.
    pub queue_depth: usize,
    /// Largest request body accepted before answering `413`.
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout, so a stalled client
    /// cannot pin a worker forever.
    pub io_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            max_body_bytes: 4 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// What happened over one [`serve`] run, returned after the drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Requests answered by a worker (including error responses).
    pub served: u64,
    /// Connections refused with `503` because the queue was full.
    pub rejected: u64,
}

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, e.g. `GET` or `POST`, uppercased as received.
    pub method: String,
    /// Request target, e.g. `/v1/eval`.
    pub path: String,
    /// Header name/value pairs in received order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (exactly `Content-Length` bytes, empty if absent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Looks up a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// A deferred response body: called once with the connection's writer
/// after the headers have gone out. Used for NDJSON streams whose length
/// is unknown up front (see [`HttpResponse::ndjson_stream`]).
pub type StreamBody = Arc<dyn Fn(&mut dyn Write) -> io::Result<()> + Send + Sync>;

/// One HTTP/1.1 response, always written with `Connection: close`.
///
/// Buffered responses ([`HttpResponse::json`]) are framed with
/// `Content-Length`; streamed responses ([`HttpResponse::ndjson_stream`])
/// have no length header and end when the connection closes — valid
/// HTTP/1.1 framing precisely because every response closes the
/// connection.
#[derive(Clone)]
pub struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Arc<String>,
    stream: Option<StreamBody>,
}

impl std::fmt::Debug for HttpResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpResponse")
            .field("status", &self.status)
            .field("headers", &self.headers)
            .field("body", &self.body)
            .field("stream", &self.stream.as_ref().map(|_| "<producer>"))
            .finish()
    }
}

impl HttpResponse {
    /// A `Content-Type: application/json` response with the given body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Arc::new(body.into()),
            stream: None,
        }
    }

    /// A JSON response whose body is shared with (for example) the
    /// result cache, avoiding a copy of a large report.
    pub fn json_shared(status: u16, body: Arc<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body,
            stream: None,
        }
    }

    /// A `200` response whose `application/x-ndjson` body is produced by
    /// `producer` writing directly to the connection, one record at a
    /// time, after the headers have gone out.
    ///
    /// There is no `Content-Length`: the stream ends when the connection
    /// closes (`Connection: close` makes EOF-delimited bodies legal
    /// HTTP/1.1). A producer error after the headers cannot be reported
    /// as a status code any more; the connection is simply closed, and a
    /// client detects the truncation by the missing final manifest line
    /// (see `docs/PROTOCOL.md`).
    pub fn ndjson_stream(
        producer: impl Fn(&mut dyn Write) -> io::Result<()> + Send + Sync + 'static,
    ) -> Self {
        Self {
            status: 200,
            headers: Vec::new(),
            body: Arc::new(String::new()),
            stream: Some(Arc::new(producer)),
        }
    }

    /// Adds an extra response header (for opt-in markers such as
    /// `X-Ja-Cache`).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The status code this response will be written with.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The response body (empty for streamed responses, whose bytes are
    /// produced while writing).
    pub fn body(&self) -> &str {
        &self.body
    }

    /// Whether this response streams its body instead of buffering it.
    pub fn is_streamed(&self) -> bool {
        self.stream.is_some()
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response. Header order is fixed (status line,
    /// `Content-Type`, extra headers, `Content-Length` for buffered
    /// bodies, `Connection: close`) so responses are byte-deterministic;
    /// a streamed body is then produced record by record.
    pub fn write_to(&self, out: &mut impl Write) -> io::Result<()> {
        let content_type = if self.stream.is_some() {
            "application/x-ndjson"
        } else {
            "application/json"
        };
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\n",
            self.status,
            Self::reason(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        match &self.stream {
            Some(producer) => {
                write!(out, "Connection: close\r\n\r\n")?;
                producer(out)?;
            }
            None => {
                write!(
                    out,
                    "Content-Length: {}\r\nConnection: close\r\n\r\n",
                    self.body.len()
                )?;
                out.write_all(self.body.as_bytes())?;
            }
        }
        out.flush()
    }
}

/// Builds the versioned `kind:"error"` JSON document used by every
/// non-200 response (see `docs/PROTOCOL.md`).
pub fn error_body(status: u16, message: &str) -> String {
    JsonValue::object()
        .with(SCHEMA_VERSION_KEY, SCHEMA_VERSION)
        .with("kind", "error")
        .with("status", i64::from(status))
        .with("error", message)
        .to_pretty_string()
}

/// An error JSON response: [`error_body`] wrapped in [`HttpResponse`].
pub fn error_response(status: u16, message: &str) -> HttpResponse {
    HttpResponse::json(status, error_body(status, message))
}

/// A request-parsing failure and the status it maps to.
#[derive(Debug)]
struct HttpError {
    status: u16,
    message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }

    fn into_response(self) -> HttpResponse {
        error_response(self.status, &self.message)
    }
}

fn read_line_limited(
    reader: &mut impl BufRead,
    limit: usize,
    what: &str,
) -> Result<String, HttpError> {
    let mut line = String::new();
    let mut taken = reader.take(limit as u64 + 1);
    match taken.read_line(&mut line) {
        Ok(0) => Err(HttpError::new(400, format!("unexpected end of {what}"))),
        Ok(_) if line.len() > limit => Err(HttpError::new(400, format!("{what} too long"))),
        Ok(_) => {
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Ok(line)
        }
        Err(err) => Err(HttpError::new(400, format!("failed reading {what}: {err}"))),
    }
}

/// Parses one HTTP/1.1 request from `reader`. Strict by design: no
/// chunked transfer coding, no continuation lines, bounded line and
/// header counts, and the body must be exactly `Content-Length` bytes.
fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<HttpRequest, HttpError> {
    let request_line = read_line_limited(reader, MAX_REQUEST_LINE, "request line")?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed request line: {request_line:?}"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(
            400,
            format!("unsupported protocol version: {version:?}"),
        ));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(reader, MAX_HEADER_LINE, "header")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(400, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::new(
            400,
            "chunked transfer encoding is not supported; send Content-Length",
        ));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, value)) => value
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("invalid Content-Length: {value:?}")))?,
        None => 0,
    };
    if content_length > max_body_bytes {
        return Err(HttpError::new(
            413,
            format!(
                "request body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"
            ),
        ));
    }

    let mut body = vec![0_u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|err| HttpError::new(400, format!("failed reading request body: {err}")))?;

    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Runs the accept/dispatch loop until `shutdown` is set.
///
/// `handler` is called once per successfully parsed request, from one of
/// `options.workers` worker threads, and its response is written back
/// verbatim; parse failures are answered with `kind:"error"` documents
/// without reaching the handler. When the admission queue is full, new
/// connections get an immediate `503`. Once `shutdown` is observed the
/// listener stops accepting, queued and in-flight requests drain to
/// completion, and the call returns.
pub fn serve<H>(
    listener: TcpListener,
    options: &ServerOptions,
    shutdown: &AtomicBool,
    handler: H,
) -> io::Result<ServeSummary>
where
    H: Fn(&HttpRequest) -> HttpResponse + Sync,
{
    let workers = options.workers.max(1);
    let (sender, receiver) = mpsc::sync_channel::<TcpStream>(options.queue_depth);
    let receiver = Mutex::new(receiver);
    let served = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let handler = &handler;
    let mut accept_error = None;

    // Where the waker thread connects to unblock `accept()` once the
    // shutdown flag flips (a wildcard bind is poked via loopback).
    let mut wake_addr = listener.local_addr()?;
    if wake_addr.ip().is_unspecified() {
        wake_addr.set_ip(match wake_addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    let accept_done = AtomicBool::new(false);

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = receiver.lock().expect("serve receiver poisoned").recv();
                match next {
                    Ok(stream) => {
                        handle_connection(stream, options.max_body_bytes, handler);
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    // The accept loop dropped the sender: drained, done.
                    Err(_) => break,
                }
            });
        }

        // The accept loop blocks in `accept()` for zero admission
        // latency; this waker pokes it with a throwaway connection when
        // the flag flips (set by a signal handler or a /v1/shutdown
        // worker — neither can unblock the listener itself), and keeps
        // poking until the loop confirms it broke out.
        scope.spawn(|| {
            while !accept_done.load(Ordering::Acquire) {
                if shutdown.load(Ordering::Acquire) {
                    let _ = TcpStream::connect(wake_addr);
                }
                thread::sleep(SHUTDOWN_POLL);
            }
        });

        loop {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if shutdown.load(Ordering::Acquire) {
                        // The waker's poke (or an unlucky client racing
                        // the drain): refused by dropping.
                        break;
                    }
                    let _ = stream.set_read_timeout(Some(options.io_timeout));
                    let _ = stream.set_write_timeout(Some(options.io_timeout));
                    match sender.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            refuse_connection(stream);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) => {
                    accept_error = Some(err);
                    break;
                }
            }
        }
        accept_done.store(true, Ordering::Release);
        // Closing the channel is the drain signal: workers finish the
        // queued connections, then observe the disconnect and exit.
        drop(sender);
    });

    match accept_error {
        Some(err) => Err(err),
        None => Ok(ServeSummary {
            served: served.load(Ordering::Relaxed),
            rejected: rejected.load(Ordering::Relaxed),
        }),
    }
}

fn handle_connection<H>(stream: TcpStream, max_body_bytes: usize, handler: &H)
where
    H: Fn(&HttpRequest) -> HttpResponse,
{
    let mut reader = BufReader::new(&stream);
    let response = match read_request(&mut reader, max_body_bytes) {
        Ok(request) => handler(&request),
        Err(err) => err.into_response(),
    };
    let _ = response.write_to(&mut &stream);
    let _ = stream.shutdown(Shutdown::Both);
}

fn refuse_connection(stream: TcpStream) {
    let response = error_response(503, "server busy: the request queue is full, retry later");
    let _ = response.write_to(&mut &stream);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Point-in-time counters of a [`ResultCache`], reported by
/// `GET /v1/health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cached responses currently resident.
    pub entries: usize,
    /// Bytes of cached response bodies currently resident.
    pub bytes: usize,
    /// The configured byte budget (`0` = caching disabled).
    pub budget_bytes: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including all lookups when disabled).
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
}

#[derive(Debug)]
struct CacheEntry {
    body: Arc<String>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<u128, CacheEntry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A content-addressed response cache with an LRU byte budget.
///
/// Keys are [`ja_hysteresis::json::content_hash`] digests of the
/// normalized request document, so two requests that differ only in JSON
/// key order (or in fields that cannot affect the response bytes) share
/// one entry. Values are the exact response bodies; byte-determinism of
/// the report writer is what makes serving them back correct.
///
/// Eviction scans linearly for the least-recently-used entry: the cache
/// holds few, large entries (whole reports), so an O(entries) scan on
/// insert is cheaper than maintaining an ordered index.
#[derive(Debug)]
pub struct ResultCache {
    budget_bytes: usize,
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    /// Creates a cache bounded by `budget_bytes` of response bodies.
    /// A budget of `0` disables caching: every lookup misses and
    /// nothing is stored.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Looks up a response body, refreshing its recency on a hit.
    pub fn get(&self, key: u128) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let body = Arc::clone(&entry.body);
                inner.hits += 1;
                Some(body)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a response body, evicting least-recently-used entries
    /// until it fits. Bodies larger than the whole budget are not
    /// cached. Returns the (possibly shared) body for the response.
    pub fn insert(&self, key: u128, body: String) -> Arc<String> {
        let body = Arc::new(body);
        if body.len() > self.budget_bytes {
            return body;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(previous) = inner.map.remove(&key) {
            inner.bytes -= previous.body.len();
        }
        while inner.bytes + body.len() > self.budget_bytes {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| *key)
            else {
                break;
            };
            let evicted = inner.map.remove(&oldest).expect("oldest key just seen");
            inner.bytes -= evicted.body.len();
            inner.evictions += 1;
        }
        inner.bytes += body.len();
        inner.map.insert(
            key,
            CacheEntry {
                body: Arc::clone(&body),
                last_used: tick,
            },
        );
        body
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget_bytes: self.budget_bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;
    use std::sync::mpsc::channel;
    use std::sync::Condvar;

    fn parse_response(raw: &str) -> (u16, Vec<(String, String)>, String) {
        let (head, body) = raw
            .split_once("\r\n\r\n")
            .expect("response has a header/body separator");
        let mut lines = head.lines();
        let status_line = lines.next().expect("status line");
        let status = status_line
            .split(' ')
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let headers = lines
            .map(|line| {
                let (name, value) = line.split_once(':').expect("header colon");
                (name.trim().to_ascii_lowercase(), value.trim().to_string())
            })
            .collect();
        (status, headers, body.to_string())
    }

    fn send_raw(addr: SocketAddr, request: &str) -> (u16, Vec<(String, String)>, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("write request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        parse_response(&raw)
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
        send_raw(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    struct RunningServer {
        addr: SocketAddr,
        shutdown: Arc<AtomicBool>,
        join: thread::JoinHandle<io::Result<ServeSummary>>,
    }

    fn start_server<H>(options: ServerOptions, handler: H) -> RunningServer
    where
        H: Fn(&HttpRequest) -> HttpResponse + Sync + Send + 'static,
    {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let join = thread::spawn(move || serve(listener, &options, &flag, handler));
        RunningServer {
            addr,
            shutdown,
            join,
        }
    }

    impl RunningServer {
        fn stop(self) -> ServeSummary {
            self.shutdown.store(true, Ordering::Release);
            self.join
                .join()
                .expect("server thread")
                .expect("serve result")
        }
    }

    #[test]
    fn serves_a_request_and_reports_the_summary() {
        let server = start_server(ServerOptions::default(), |request| {
            assert_eq!(request.method, "POST");
            assert_eq!(request.path, "/v1/eval");
            assert_eq!(request.header("host"), Some("test"));
            assert_eq!(request.header("HOST"), Some("test"));
            HttpResponse::json(200, String::from_utf8(request.body.clone()).unwrap())
                .with_header("X-Ja-Cache", "miss")
        });
        let (status, headers, body) = post(server.addr, "/v1/eval", "{\"kind\":\"ping\"}");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"kind\":\"ping\"}");
        let header = |name: &str| {
            headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(header("x-ja-cache"), Some("miss"));
        assert_eq!(header("content-length"), Some("15"));
        assert_eq!(header("connection"), Some("close"));
        assert_eq!(header("content-type"), Some("application/json"));
        let summary = server.stop();
        assert_eq!(
            summary,
            ServeSummary {
                served: 1,
                rejected: 0
            }
        );
    }

    #[test]
    fn streamed_responses_are_ndjson_without_content_length() {
        let server = start_server(ServerOptions::default(), |_| {
            HttpResponse::ndjson_stream(|out| {
                writeln!(out, "{{\"index\":0}}")?;
                writeln!(out, "{{\"kind\":\"batch_manifest\"}}")
            })
        });
        let (status, headers, body) = post(server.addr, "/v1/eval", "{}");
        assert_eq!(status, 200);
        let header = |name: &str| {
            headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(header("content-type"), Some("application/x-ndjson"));
        assert_eq!(header("connection"), Some("close"));
        assert_eq!(
            header("content-length"),
            None,
            "streamed bodies are EOF-delimited"
        );
        assert_eq!(body, "{\"index\":0}\n{\"kind\":\"batch_manifest\"}\n");
        server.stop();
    }

    #[test]
    fn malformed_requests_get_error_documents_without_reaching_the_handler() {
        let server = start_server(ServerOptions::default(), |_| {
            panic!("handler must not run for malformed requests")
        });
        let cases: &[(&str, u16, &str)] = &[
            ("BROKEN\r\n\r\n", 400, "malformed request line"),
            (
                "GET /v1/health HTTP/9.9\r\n\r\n",
                400,
                "unsupported protocol version",
            ),
            (
                "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
                400,
                "invalid Content-Length",
            ),
            (
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                400,
                "chunked transfer encoding",
            ),
            (
                "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
                400,
                "failed reading request body",
            ),
        ];
        for (raw, want_status, want_fragment) in cases {
            let (status, _, body) = send_raw(server.addr, raw);
            assert_eq!(status, *want_status, "request {raw:?}");
            assert!(
                body.contains(want_fragment),
                "body {body:?} should mention {want_fragment:?}"
            );
            assert!(body.contains("\"kind\": \"error\""));
        }
        server.stop();
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let options = ServerOptions {
            max_body_bytes: 16,
            ..ServerOptions::default()
        };
        let server = start_server(options, |_| panic!("handler must not run"));
        let (status, _, body) = post(server.addr, "/v1/eval", &"x".repeat(64));
        assert_eq!(status, 413);
        assert!(body.contains("exceeds the 16-byte limit"));
        server.stop();
    }

    /// A handler gate: requests block inside the handler until released.
    struct Gate {
        entered: Mutex<usize>,
        open: Mutex<bool>,
        signal: Condvar,
    }

    impl Gate {
        fn new() -> Self {
            Self {
                entered: Mutex::new(0),
                open: Mutex::new(false),
                signal: Condvar::new(),
            }
        }

        fn enter_and_wait(&self) {
            *self.entered.lock().unwrap() += 1;
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.signal.wait(open).unwrap();
            }
        }

        fn wait_for_entries(&self, count: usize) {
            while *self.entered.lock().unwrap() < count {
                thread::sleep(Duration::from_millis(1));
            }
        }

        fn release(&self) {
            *self.open.lock().unwrap() = true;
            self.signal.notify_all();
        }
    }

    #[test]
    fn full_queue_rejects_with_503_and_drain_completes_queued_work() {
        let gate = Arc::new(Gate::new());
        let handler_gate = Arc::clone(&gate);
        let options = ServerOptions {
            workers: 1,
            queue_depth: 1,
            ..ServerOptions::default()
        };
        let server = start_server(options, move |_| {
            handler_gate.enter_and_wait();
            HttpResponse::json(200, "{\"ok\":true}")
        });

        // First request occupies the only worker (observed via the gate);
        // the second fills the single queue slot; the third must bounce.
        let addr = server.addr;
        let spawn_client = || {
            let (tx, rx) = channel();
            let handle = thread::spawn(move || {
                let result = post(addr, "/v1/eval", "{}");
                let _ = tx.send(());
                result
            });
            (handle, rx)
        };
        let (first, _) = spawn_client();
        gate.wait_for_entries(1);
        let (second, second_done) = spawn_client();
        // The accept loop enqueues connections in arrival order, so once
        // the first is in the handler the second lands in the queue slot.
        // Give the accept loop a moment to pull it off the listener.
        thread::sleep(Duration::from_millis(50));
        let (status, _, body) = post(addr, "/v1/eval", "{}");
        assert_eq!(status, 503, "third request must be refused: {body}");
        assert!(body.contains("queue is full"));
        assert!(
            second_done.try_recv().is_err(),
            "second request must still be queued when the third bounces"
        );

        // Shut down while one request is in flight and one is queued:
        // the drain must complete both successfully.
        server.shutdown.store(true, Ordering::Release);
        thread::sleep(Duration::from_millis(20));
        gate.release();
        let (status, _, _) = first.join().expect("first client");
        assert_eq!(status, 200);
        let (status, _, _) = second.join().expect("second client");
        assert_eq!(status, 200);
        let summary = server
            .join
            .join()
            .expect("server thread")
            .expect("serve result");
        assert_eq!(
            summary,
            ServeSummary {
                served: 2,
                rejected: 1
            }
        );
    }

    #[test]
    fn cache_serves_hits_and_evicts_least_recently_used() {
        let cache = ResultCache::new(10);
        assert_eq!(cache.get(1), None);
        cache.insert(1, "aaaa".to_string());
        cache.insert(2, "bbbb".to_string());
        assert_eq!(cache.get(1).as_deref().map(String::as_str), Some("aaaa"));
        // Inserting 4 more bytes exceeds the 10-byte budget; key 2 is now
        // the least recently used (key 1 was just refreshed) and goes.
        cache.insert(3, "cccc".to_string());
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1).as_deref().map(String::as_str), Some("aaaa"));
        assert_eq!(cache.get(3).as_deref().map(String::as_str), Some("cccc"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, 8);
        assert_eq!(stats.budget_bytes, 10);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn cache_replaces_entries_and_skips_oversized_bodies() {
        let cache = ResultCache::new(10);
        cache.insert(1, "aaaa".to_string());
        cache.insert(1, "bb".to_string());
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 2);
        assert_eq!(stats.evictions, 0);
        // Larger than the whole budget: returned for the response but
        // never stored.
        let body = cache.insert(9, "x".repeat(11));
        assert_eq!(body.len(), 11);
        assert_eq!(cache.get(9), None);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let cache = ResultCache::new(0);
        cache.insert(1, "body".to_string());
        assert_eq!(cache.get(1), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn error_body_is_a_versioned_error_document() {
        let body = error_body(503, "busy");
        assert!(body.contains("\"schema_version\": 1"));
        assert!(body.contains("\"kind\": \"error\""));
        assert!(body.contains("\"status\": 503"));
        assert!(body.contains("\"error\": \"busy\""));
    }
}
