//! Parallel scenario execution.
//!
//! [`BatchRunner`] is the engine behind [`crate::scenario::run_batch`]: it
//! distributes a scenario list over a pool of scoped worker threads
//! (`std::thread::scope`, no external dependencies), with chunked work
//! stealing over an atomic cursor and a configurable error policy.  Results
//! are tagged with their input index and re-sorted, so a
//! [`BatchReport`] is **deterministic**: the entries come back in input
//! order with bit-identical floating-point content regardless of the worker
//! count (each scenario's computation is sequential and self-contained; the
//! executor only changes *where* it runs).  The one exception is fail-fast
//! cancellation, which depends on timing — see [`ErrorPolicy::FailFast`].
//!
//! Workers keep a [`RunScratch`] alive across the scenarios they execute:
//! consecutive scenarios sharing a (backend, material, configuration)
//! triple reuse the constructed backend through
//! [`HysteresisBackend::reset`] instead of rebuilding it, so the parallel
//! win is not eaten by per-scenario construction and allocator traffic.
//!
//! The distribution machinery itself (chunked claims over an atomic
//! cursor, worker-local state, index-ordered results) is exposed as the
//! generic [`parallel_map`], which also powers the multi-start fitting
//! batches of [`crate::fit`] — any deterministic per-job workload with
//! reusable worker scratch can ride the same pool.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use ja_hysteresis::backend::HysteresisBackend;
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::error::JaError;
use magnetics::material::JaParameters;

use crate::scenario::{BackendKind, BatchEntry, BatchReport, Scenario};

/// How a batch reacts to a failing scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Run every scenario and record failures alongside successes (the
    /// historical `run_batch` behaviour).  Reports are fully deterministic.
    #[default]
    CollectAll,
    /// Stop scheduling new work once any scenario fails; scenarios that
    /// were not yet executed are recorded as [`JaError::Cancelled`].  Which
    /// scenarios get cancelled depends on worker timing, so fail-fast
    /// reports are only deterministic for a single worker.
    FailFast,
}

/// Builder-style executor for scenario batches.
///
/// ```
/// use hdl_models::exec::BatchRunner;
/// use hdl_models::scenario::{BackendKind, Excitation, ScenarioGrid};
///
/// let grid = ScenarioGrid::new()
///     .backends(BackendKind::TIMELESS)
///     .excitation("major", Excitation::major_loop(10_000.0, 100.0, 1).unwrap());
/// let report = BatchRunner::new()
///     .workers(2)
///     .run(grid.scenarios().unwrap());
/// assert_eq!(report.entries.len(), 3);
/// assert_eq!(report.workers, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchRunner {
    workers: Option<NonZeroUsize>,
    chunk_size: Option<NonZeroUsize>,
    policy: ErrorPolicy,
}

impl BatchRunner {
    /// An executor with the default knobs: one worker per available core,
    /// chunk size 1 (best load balance for uneven scenario runtimes),
    /// collect-all error policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` restores the default
    /// (`std::thread::available_parallelism`).  The effective count never
    /// exceeds the number of scenarios.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = NonZeroUsize::new(workers);
        self
    }

    /// Sets how many scenarios a worker claims from the shared cursor at a
    /// time; `0` restores the default of 1.  Larger chunks reduce cursor
    /// contention but can leave workers idle at the tail of uneven grids.
    #[must_use]
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = NonZeroUsize::new(chunk_size);
        self
    }

    /// Sets the error policy.
    #[must_use]
    pub fn error_policy(mut self, policy: ErrorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand for [`ErrorPolicy::FailFast`].
    #[must_use]
    pub fn fail_fast(self) -> Self {
        self.error_policy(ErrorPolicy::FailFast)
    }

    /// The worker count the runner would use for `jobs` scenarios.
    pub fn resolved_workers(&self, jobs: usize) -> usize {
        resolved_workers(self.workers.map_or(0, NonZeroUsize::get), jobs)
    }

    /// Runs every scenario and collects a [`BatchReport`] with one entry
    /// per scenario, in input order.
    pub fn run(&self, scenarios: impl IntoIterator<Item = Scenario>) -> BatchReport {
        let scenarios: Vec<Scenario> = scenarios.into_iter().collect();
        let workers = self.resolved_workers(scenarios.len());
        let chunk = self.chunk_size.map_or(1, NonZeroUsize::get);
        let started = Instant::now();

        let abort = AtomicBool::new(false);
        let results = parallel_map(
            &scenarios,
            workers,
            chunk,
            RunScratch::new,
            |scenario, scratch| {
                if self.policy == ErrorPolicy::FailFast && abort.load(Ordering::Relaxed) {
                    (Err(JaError::Cancelled), Duration::ZERO)
                } else {
                    let t0 = Instant::now();
                    let outcome = scenario.run_with_scratch(scratch);
                    if outcome.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    (outcome, t0.elapsed())
                }
            },
        );

        let entries = scenarios
            .into_iter()
            .zip(results)
            .map(|(scenario, (outcome, wall_clock))| BatchEntry {
                scenario,
                outcome,
                wall_clock,
            })
            .collect();
        BatchReport {
            entries,
            workers,
            elapsed: started.elapsed(),
        }
    }
}

/// Resolves a configured worker count for `jobs` units of work: `0` means
/// one worker per available core, and the result is clamped to the job
/// count with a floor of 1.  The single worker-resolution policy shared by
/// [`BatchRunner`] and the fitting batches of [`crate::fit`].
pub fn resolved_workers(configured: usize, jobs: usize) -> usize {
    let configured = if configured == 0 {
        thread::available_parallelism().map_or(1, NonZeroUsize::get)
    } else {
        configured
    };
    configured.min(jobs).max(1)
}

/// Runs `run` over every job on a pool of `workers` scoped threads and
/// returns the results **in job order** — the generic core of
/// [`BatchRunner`], also used by the multi-start fitting batches of
/// [`crate::fit`].
///
/// Each worker claims `chunk` jobs at a time from a shared atomic cursor
/// and keeps one instance of worker-local state (built by `make_state`)
/// alive across all the jobs it executes — the scratch-reuse pattern that
/// keeps per-job construction and allocator traffic off the hot path.
/// Results are tagged with their job index and re-sorted, so as long as
/// `run` is a pure function of the job (plus state that `run` fully resets
/// or overwrites per job), the output is **deterministic**: identical for
/// any worker count, including the inline `workers <= 1` path that spawns
/// no threads at all.
///
/// Cross-job coordination (e.g. fail-fast abort) lives in the closure:
/// capture an [`AtomicBool`] and consult it per job, as
/// [`BatchRunner::run`] does.
pub fn parallel_map<T, S, R, FS, F>(
    jobs: &[T],
    workers: usize,
    chunk: usize,
    make_state: FS,
    run: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> R + Sync,
{
    let chunk = chunk.max(1);
    if workers <= 1 {
        let mut state = make_state();
        return jobs.iter().map(|job| run(job, &mut state)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = make_state();
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs.len() {
                            break;
                        }
                        let end = start.saturating_add(chunk).min(jobs.len());
                        for (index, job) in jobs.iter().enumerate().take(end).skip(start) {
                            local.push((index, run(job, &mut state)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("parallel_map worker panicked"))
            .collect()
    });

    let mut results: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    for (index, result) in per_worker.into_iter().flatten() {
        results[index] = Some(result);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every job index produced exactly one result"))
        .collect()
}

/// Worker-local reusable state for running scenarios.
///
/// Holds the most recently constructed backend; when the next scenario uses
/// the same (backend kind, material, configuration) triple, the backend is
/// [`reset`](HysteresisBackend::reset) and reused instead of rebuilt.
/// Reset returns a backend to the demagnetised state with cleared
/// statistics, so a reused run is bit-identical to a fresh one (asserted by
/// the executor's tests).
#[derive(Default)]
pub struct RunScratch {
    cached: Option<CachedBackend>,
}

struct CachedBackend {
    kind: BackendKind,
    params: JaParameters,
    config: JaConfig,
    backend: Box<dyn HysteresisBackend>,
}

impl RunScratch {
    /// An empty scratch (no cached backend).
    pub fn new() -> Self {
        Self::default()
    }

    /// A demagnetised backend for the scenario: the cached one when the
    /// scenario matches it, a freshly built one otherwise.
    ///
    /// # Errors
    ///
    /// Propagates backend construction or reset failures.
    pub fn backend_for(
        &mut self,
        scenario: &Scenario,
    ) -> Result<&mut dyn HysteresisBackend, JaError> {
        let reusable = self.cached.as_ref().is_some_and(|cached| {
            cached.kind == scenario.backend
                && cached.params == scenario.params
                && cached.config == scenario.config
        });
        let cached = if reusable {
            let cached = self.cached.as_mut().expect("checked above");
            cached.backend.reset()?;
            cached
        } else {
            let backend = scenario.backend.build(scenario.params, scenario.config)?;
            self.cached.insert(CachedBackend {
                kind: scenario.backend,
                params: scenario.params,
                config: scenario.config,
                backend,
            })
        };
        Ok(cached.backend.as_mut())
    }
}

impl std::fmt::Debug for RunScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunScratch")
            .field("cached", &self.cached.as_ref().map(|c| c.kind))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Excitation, ScenarioGrid};

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .backends(BackendKind::ALL)
            .config("dh10", JaConfig::default())
            .config("dh25", JaConfig::default().with_dh_max(25.0))
            .excitation(
                "major",
                Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
            )
    }

    fn assert_outcomes_bitwise_equal(a: &BatchReport, b: &BatchReport) {
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.scenario.name, y.scenario.name);
            match (&x.outcome, &y.outcome) {
                (Ok(ox), Ok(oy)) => {
                    assert_eq!(ox.stats, oy.stats, "{}", x.scenario.name);
                    assert_eq!(ox.curve.len(), oy.curve.len(), "{}", x.scenario.name);
                    for (p, q) in ox.curve.points().iter().zip(oy.curve.points()) {
                        assert_eq!(p.h.value().to_bits(), q.h.value().to_bits());
                        assert_eq!(p.b.as_tesla().to_bits(), q.b.as_tesla().to_bits());
                        assert_eq!(p.m.value().to_bits(), q.m.value().to_bits());
                    }
                }
                (Err(ex), Err(ey)) => assert_eq!(ex, ey, "{}", x.scenario.name),
                (ox, oy) => panic!(
                    "{}: outcome kinds differ: {ox:?} vs {oy:?}",
                    x.scenario.name
                ),
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let scenarios = small_grid().scenarios().expect("grid");
        let serial = BatchRunner::new().workers(1).run(scenarios.clone());
        let parallel = BatchRunner::new().workers(4).run(scenarios);
        assert_eq!(serial.workers, 1);
        assert_eq!(parallel.workers, 4);
        assert_outcomes_bitwise_equal(&serial, &parallel);
    }

    #[test]
    fn chunked_distribution_covers_every_scenario() {
        let scenarios = small_grid().scenarios().expect("grid");
        let expected = scenarios.len();
        let report = BatchRunner::new().workers(3).chunk_size(2).run(scenarios);
        assert_eq!(report.entries.len(), expected);
        assert_eq!(report.successes().count(), expected);
        assert!(report.elapsed > Duration::ZERO);
        assert!(report.serial_runtime() >= report.total_runtime());
        assert!(report.speedup() > 0.0);
    }

    #[test]
    fn resolved_workers_clamps_to_jobs_and_floor() {
        let runner = BatchRunner::new().workers(8);
        assert_eq!(runner.resolved_workers(3), 3);
        assert_eq!(runner.resolved_workers(100), 8);
        assert_eq!(runner.resolved_workers(0), 1);
        // workers(0) restores the auto default, which is at least 1.
        assert!(BatchRunner::new().workers(0).resolved_workers(100) >= 1);
    }

    #[test]
    fn fail_fast_cancels_scenarios_after_a_failure() {
        let bad = Scenario::new(
            "bad",
            JaParameters::date2006(),
            JaConfig::default().with_dh_max(-1.0),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        );
        let good = Scenario::fig1(BackendKind::DirectTimeless, 500.0).expect("scenario");
        let report = BatchRunner::new()
            .workers(1)
            .fail_fast()
            .run([bad, good.clone(), good]);
        assert_eq!(report.entries.len(), 3);
        assert!(report.entries[0].outcome.is_err());
        for entry in &report.entries[1..] {
            assert_eq!(entry.outcome.as_ref().err(), Some(&JaError::Cancelled));
        }
        // Collect-all keeps running after the failure.
        let report = BatchRunner::new().workers(1).run([
            Scenario::new(
                "bad",
                JaParameters::date2006(),
                JaConfig::default().with_dh_max(-1.0),
                BackendKind::DirectTimeless,
                Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
            ),
            Scenario::fig1(BackendKind::DirectTimeless, 500.0).expect("scenario"),
        ]);
        assert_eq!(report.failures().count(), 1);
        assert_eq!(report.successes().count(), 1);
    }

    #[test]
    fn fail_fast_multi_worker_still_reports_every_entry() {
        let bad = Scenario::new(
            "bad",
            JaParameters::date2006(),
            JaConfig::default().with_dh_max(-1.0),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        );
        let mut scenarios = small_grid().scenarios().expect("grid");
        scenarios.insert(0, bad);
        let expected = scenarios.len();
        let report = BatchRunner::new().workers(4).fail_fast().run(scenarios);
        assert_eq!(report.entries.len(), expected);
        assert!(report.failures().count() >= 1);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let scenario = Scenario::fig1(BackendKind::DirectTimeless, 250.0).expect("scenario");
        let mut scratch = RunScratch::new();
        let first = scenario.run_with_scratch(&mut scratch).expect("run");
        // Second run hits the cached backend (reset path).
        let second = scenario.run_with_scratch(&mut scratch).expect("run");
        assert_eq!(first.stats, second.stats);
        assert_eq!(first.curve, second.curve);
        let fresh = scenario.run().expect("run");
        assert_eq!(first.curve, fresh.curve);
        assert!(format!("{scratch:?}").contains("DirectTimeless"));
    }

    #[test]
    fn scratch_rebuilds_when_the_scenario_changes() {
        let mut scratch = RunScratch::new();
        for kind in BackendKind::ALL {
            let scenario = Scenario::fig1(kind, 500.0).expect("scenario");
            let outcome = scenario.run_with_scratch(&mut scratch).expect("run");
            assert_eq!(outcome.backend, kind);
            assert!(outcome.stats.samples > 0);
        }
    }

    #[test]
    fn parallel_map_orders_results_and_keeps_worker_state() {
        let jobs: Vec<usize> = (0..100).collect();
        let double = |job: &usize, seen: &mut usize| {
            *seen += 1;
            (*job * 2, *seen)
        };
        let serial = parallel_map(&jobs, 1, 1, || 0usize, double);
        let parallel = parallel_map(&jobs, 4, 3, || 0usize, double);
        // Job-order results regardless of worker count or chunking...
        let values = |r: &[(usize, usize)]| r.iter().map(|(v, _)| *v).collect::<Vec<_>>();
        assert_eq!(values(&serial), values(&parallel));
        assert_eq!(serial[7].0, 14);
        // ...with worker-local state alive across a worker's jobs: the lone
        // serial worker saw all 100, every parallel worker at most 100.
        assert_eq!(serial.last().unwrap().1, 100);
        assert!(parallel.iter().all(|(_, seen)| (1..=100).contains(seen)));
        // Degenerate inputs.
        assert!(parallel_map(&[] as &[usize], 4, 1, || (), |_, ()| ()).is_empty());
        assert_eq!(parallel_map(&jobs, 8, 0, || (), |job, ()| *job).len(), 100);
    }

    #[test]
    fn empty_batch_produces_an_empty_report() {
        let report = BatchRunner::new().run(std::iter::empty::<Scenario>());
        assert!(report.entries.is_empty());
        assert_eq!(report.workers, 1);
        assert_eq!(report.serial_runtime(), Duration::ZERO);
        assert_eq!(report.speedup(), 0.0);
    }
}
