//! Error type of the hysteresis model.

use std::error::Error;
use std::fmt;

use analog_solver::SolverError;
use magnetics::MagneticsError;
use waveform::WaveformError;

/// Errors produced while configuring or driving the Jiles–Atherton model.
#[derive(Debug, Clone, PartialEq)]
pub enum JaError {
    /// Invalid material parameters (propagated from the magnetics crate).
    Material(MagneticsError),
    /// Invalid excitation or trace handling (propagated from the waveform
    /// crate).
    Waveform(WaveformError),
    /// An analogue-solver failure (propagated from the `analog-solver`
    /// crate) — circuit-driven scenarios surface transient-engine errors
    /// (singular MNA matrix, Newton non-convergence, adaptive step-size
    /// underflow) through this variant instead of ad-hoc string mapping at
    /// each call site.
    Solver(SolverError),
    /// A model configuration value is out of range.
    InvalidConfig {
        /// Name of the offending option.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Requirement violated.
        requirement: &'static str,
    },
    /// The applied field was NaN or infinite.
    NonFiniteField {
        /// The offending value.
        value: f64,
    },
    /// The model state became non-finite — only possible when the
    /// numerical guards are disabled, and reported instead of silently
    /// producing NaN curves.
    StateDiverged {
        /// The field at which the divergence was detected.
        at_field: f64,
    },
    /// A backend-specific substrate failure (e.g. the discrete-event kernel
    /// under the SystemC-style backend), reported through the polymorphic
    /// [`crate::backend::HysteresisBackend`] API.
    Backend {
        /// Label of the failing backend.
        backend: &'static str,
        /// Substrate error message.
        reason: String,
    },
    /// A scenario grid expanded to zero scenarios because one of its axes is
    /// empty — almost always a bug in the caller (a batch that silently does
    /// no work), so it is reported instead of succeeding vacuously.
    EmptyGrid {
        /// Name of the empty axis.
        axis: &'static str,
    },
    /// The scenario never ran: a fail-fast batch aborted after an earlier
    /// entry failed.
    Cancelled,
}

impl fmt::Display for JaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JaError::Material(err) => write!(f, "material error: {err}"),
            JaError::Waveform(err) => write!(f, "waveform error: {err}"),
            JaError::Solver(err) => write!(f, "solver error: {err}"),
            JaError::InvalidConfig {
                name,
                value,
                requirement,
            } => write!(
                f,
                "invalid configuration `{name}` = {value}: must satisfy {requirement}"
            ),
            JaError::NonFiniteField { value } => {
                write!(f, "applied field is not finite: {value}")
            }
            JaError::StateDiverged { at_field } => write!(
                f,
                "magnetisation state diverged at H = {at_field} A/m (guards disabled?)"
            ),
            JaError::Backend { backend, reason } => {
                write!(f, "backend `{backend}` failed: {reason}")
            }
            JaError::EmptyGrid { axis } => {
                write!(
                    f,
                    "scenario grid expands to zero scenarios: the `{axis}` axis is empty"
                )
            }
            JaError::Cancelled => {
                write!(
                    f,
                    "scenario cancelled: a fail-fast batch aborted after an earlier failure"
                )
            }
        }
    }
}

impl Error for JaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JaError::Material(err) => Some(err),
            JaError::Waveform(err) => Some(err),
            JaError::Solver(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MagneticsError> for JaError {
    fn from(err: MagneticsError) -> Self {
        JaError::Material(err)
    }
}

impl From<WaveformError> for JaError {
    fn from(err: WaveformError) -> Self {
        JaError::Waveform(err)
    }
}

impl From<SolverError> for JaError {
    fn from(err: SolverError) -> Self {
        JaError::Solver(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let inner = MagneticsError::NonFiniteInput { name: "h" };
        let err: JaError = inner.clone().into();
        assert!(err.to_string().contains("material error"));
        assert!(err.source().is_some());

        let err = JaError::NonFiniteField { value: f64::NAN };
        assert!(err.to_string().contains("not finite"));
        assert!(err.source().is_none());
    }

    #[test]
    fn waveform_error_converts() {
        let err: JaError = WaveformError::InvalidBreakpoints { reason: "too few" }.into();
        assert!(matches!(err, JaError::Waveform(_)));
    }

    #[test]
    fn solver_error_converts_and_sources() {
        let err: JaError = SolverError::SingularMatrix { column: 2 }.into();
        assert!(matches!(err, JaError::Solver(_)));
        assert!(err.to_string().contains("solver error"));
        assert!(err.to_string().contains("column 2"));
        assert!(err.source().is_some());
    }

    #[test]
    fn batch_error_variants_display() {
        let err = JaError::EmptyGrid {
            axis: "excitations",
        };
        assert!(err.to_string().contains("excitations"));
        assert!(JaError::Cancelled.to_string().contains("fail-fast"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<JaError>();
    }
}
