//! Timed event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::process::ProcessId;
use crate::signal::SignalId;
use crate::time::SimTime;
use crate::value::Value;

/// A timed event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Write a value to a signal at the scheduled time.
    SignalWrite {
        /// Target signal.
        signal: SignalId,
        /// Value to write.
        value: Value,
    },
    /// Wake a process at the scheduled time (timed trigger).
    Wakeup {
        /// Process to trigger.
        process: ProcessId,
    },
}

#[derive(Debug)]
struct QueueEntry {
    time: SimTime,
    sequence: u64,
    event: Event,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.sequence).cmp(&(other.time, other.sequence))
    }
}

/// A time-ordered event queue with stable ordering for same-time events
/// (insertion order is preserved, as in SystemC's evaluation phase).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<QueueEntry>>,
    next_sequence: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event at an absolute time.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let entry = QueueEntry {
            time,
            sequence: self.next_sequence,
            event,
        };
        self.next_sequence += 1;
        self.heap.push(Reverse(entry));
    }

    /// Time of the earliest queued event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops every event scheduled exactly at `time`, in insertion order.
    pub fn pop_at(&mut self, time: SimTime) -> Vec<Event> {
        let mut events = Vec::new();
        while let Some(Reverse(entry)) = self.heap.peek() {
            if entry.time != time {
                break;
            }
            let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
            events.push(entry.event);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        let p = ProcessId(0);
        q.push(SimTime::from_nanos(20), Event::Wakeup { process: p });
        q.push(SimTime::from_nanos(10), Event::Wakeup { process: p });
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(10)));
        let first = q.pop_at(SimTime::from_nanos(10));
        assert_eq!(first.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(20)));
    }

    #[test]
    fn same_time_events_preserve_insertion_order() {
        let mut q = EventQueue::new();
        let s = SignalId(3);
        q.push(
            SimTime::from_nanos(5),
            Event::SignalWrite {
                signal: s,
                value: Value::Real(1.0),
            },
        );
        q.push(
            SimTime::from_nanos(5),
            Event::SignalWrite {
                signal: s,
                value: Value::Real(2.0),
            },
        );
        let events = q.pop_at(SimTime::from_nanos(5));
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::SignalWrite {
                signal: s,
                value: Value::Real(1.0)
            }
        );
        assert_eq!(
            events[1],
            Event::SignalWrite {
                signal: s,
                value: Value::Real(2.0)
            }
        );
        assert!(q.is_empty());
    }

    #[test]
    fn pop_at_wrong_time_returns_nothing() {
        let mut q = EventQueue::new();
        q.push(
            SimTime::from_nanos(5),
            Event::Wakeup {
                process: ProcessId(1),
            },
        );
        assert!(q.pop_at(SimTime::from_nanos(4)).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_has_no_next_time() {
        let q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        assert!(q.is_empty());
    }
}
