//! Experiment E5: runtime of the timeless model against the
//! solver-integrated baselines ("long analysis times" claim).

use criterion::{black_box, Criterion};
use hdl_models::ams::{SolverIntegratedBaseline, SolverMethod};
use hdl_models::scenario::{BackendKind, Excitation, Scenario};
use ja_hysteresis::config::JaConfig;
use magnetics::material::JaParameters;
use waveform::triangular::Triangular;

const T_END: f64 = 2.0;
const DT: f64 = 2.0 / 8_000.0;

fn timeless_scenario(waveform: &Triangular) -> Scenario {
    Scenario::new(
        "runtime/timeless",
        JaParameters::date2006(),
        JaConfig::default(),
        BackendKind::AmsTimeless,
        Excitation::sampled(waveform, T_END, DT).expect("excitation"),
    )
}

fn print_experiment() {
    println!("== E5: work comparison over one full paper sweep (2 cycles, 8000 samples) ==");
    let waveform = Triangular::new(10_000.0, 1.0).expect("waveform");

    let outcome = timeless_scenario(&waveform).run().expect("run");
    println!(
        "timeless model         : {} samples, {} slope updates, {} slope evaluations",
        outcome.stats.samples, outcome.stats.updates, outcome.stats.slope_evaluations
    );

    let baseline = SolverIntegratedBaseline::new(JaParameters::date2006(), JaConfig::default())
        .expect("baseline");
    for (name, method) in [
        ("baseline forward Euler ", SolverMethod::ForwardEuler),
        ("baseline backward Euler", SolverMethod::BackwardEuler),
        ("baseline trapezoidal   ", SolverMethod::Trapezoidal),
        (
            "baseline adaptive RKF45",
            SolverMethod::AdaptiveRkf45 { rel_tol: 1e-6 },
        ),
    ] {
        let result = baseline.run(&waveform, T_END, DT, method).expect("run");
        println!(
            "{name}: {} rhs evaluations, {} newton iterations, {} non-converged steps",
            result.rhs_evaluations, result.newton_iterations, result.non_converged_steps
        );
    }
    println!("\n(wall-clock timings follow from the Criterion measurements below)\n");
}

fn benches(c: &mut Criterion) {
    let waveform = Triangular::new(10_000.0, 1.0).expect("waveform");
    let mut group = c.benchmark_group("runtime_comparison");
    group.sample_size(10);
    let timeless = timeless_scenario(&waveform);
    group.bench_function("timeless", |b| {
        b.iter(|| black_box(timeless.run().expect("run")))
    });
    let baseline = SolverIntegratedBaseline::new(JaParameters::date2006(), JaConfig::default())
        .expect("baseline");
    for (name, method) in [
        ("baseline_forward_euler", SolverMethod::ForwardEuler),
        ("baseline_backward_euler", SolverMethod::BackwardEuler),
        ("baseline_trapezoidal", SolverMethod::Trapezoidal),
        (
            "baseline_adaptive_rkf45",
            SolverMethod::AdaptiveRkf45 { rel_tol: 1e-6 },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(baseline.run(&waveform, T_END, DT, method).expect("run")))
        });
    }
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
