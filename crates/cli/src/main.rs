//! `ja` — the executable front door of the timeless Jiles–Atherton
//! reproduction (Al-Junaid & Kazmierski, DATE 2006).
//!
//! The library crates already provide the machinery (scenario grids, the
//! parallel batch runner, fitting, the inverse solve, CSV/ASCII export);
//! this binary exposes it behind a stable command-line and one versioned,
//! machine-readable JSON report format that CI and services can consume.
//! The `REPORT SCHEMA` section of [`GLOBAL_HELP`] is the schema's
//! human-readable source of truth; the constants live in
//! `ja_hysteresis::json`.

mod commands;
mod common;
mod grid_config;
mod opts;
mod serve_api;

use std::process::ExitCode;

/// A CLI failure: what to print and which exit code to use.
#[derive(Debug)]
pub struct CliError {
    /// Message printed to stderr (prefixed with `ja:`).
    pub message: String,
    /// Process exit code: 2 for usage errors, 1 for runtime failures.
    pub code: u8,
}

impl CliError {
    /// A usage error (exit code 2): the invocation itself is wrong.
    pub fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }

    /// A runtime failure (exit code 1): the invocation was fine, the work
    /// failed.
    pub fn failure(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }
}

impl From<ja_hysteresis::error::JaError> for CliError {
    fn from(err: ja_hysteresis::error::JaError) -> Self {
        CliError::failure(err.to_string())
    }
}

/// Global help text.  The `REPORT SCHEMA` section doubles as the
/// authoritative field-by-field description of the machine-readable report
/// format (`ja_hysteresis::json::SCHEMA_VERSION` = 1); the README's schema
/// table is derived from it, and the CLI's integration tests assert the
/// emitted documents against these fields.
pub const GLOBAL_HELP: &str = "\
ja — timeless Jiles–Atherton hysteresis toolkit (DATE 2006 reproduction)

USAGE:
    ja <SUBCOMMAND> [OPTIONS]
    ja help <SUBCOMMAND>

SUBCOMMANDS:
    sweep       Run one scenario and export the BH trace (ascii | csv | json)
    transient   Run one circuit-driven scenario through the transient engine
    batch       Run a scenario grid in parallel, emit a batch report (JSON)
    lossmap     Frequency x amplitude x temperature loss map with a fitted
                Steinmetz law per material (JSON)
    fit         Fit JA parameters to a measured BH loop (CSV in, JSON out)
    inverse     Flux-driven solve: target B trace in, required H trace out
    compare     Backend-agreement table across implementation styles
    bench-gate  Diff two bench reports, fail on perf regressions
    serve       Long-running evaluation service with a content-addressed
                result cache (wire protocol: docs/PROTOCOL.md)
    bench-serve Load-generate against the service (req/s, p50/p99)

OPTIONS:
    -h, --help      This help (per-subcommand: `ja help <SUBCOMMAND>`)
    -V, --version   Version

REPORT SCHEMA (schema_version 1)
  Every JSON report opens with the shared envelope:
    schema_version  int     1; bumped on any breaking schema change
    kind            string  batch | sweep | transient | fit | inverse |
                            compare | bench | loss_map, the streaming
                            documents batch_manifest | batch_checkpoint,
                            plus the serve-only documents error | health |
                            shutdown and the request kinds batch_request |
                            fit_request | sweep_request |
                            transient_request (docs/PROTOCOL.md has the
                            serve side; docs/SCHEMA.md consolidates all of
                            it in one table)

  kind=batch (ja batch):
    scenarios   int    grid size
    succeeded   int    entries with status ok
    failed      int    errors + cancellations
    entries     array  one object per scenario, in input order:
      scenario    string       \"<excitation>/<backend>/<config>/<material>\"
      status      string       ok | error | cancelled
      error       string       failure message     (status != ok only)
      backend     string       backend label       (status = ok only)
      samples     int          BH-trace length     (status = ok only)
      metrics     object|null  loop metrics; null when the trace does not
                               form a closable loop (status = ok only)
      stats       object       backend cost counters (status = ok only)
      transient   object       transient-engine counters; present only for
                               circuit-driven scenarios.  Deterministic
                               step-control outcomes, NOT timings, so they
                               are never gated behind --timings.
      temperature_c float      the scenario's operating temperature; only
                               for scenarios pinned to an operating point
                               that sets one (grid `temperature = ...`).
                               Material parameters were resolved through
                               the material's thermal coefficients before
                               simulation (see docs/ARCHITECTURE.md).
      frequency_hz  float      the operating point's electrical frequency
                               (grid `geometry = ... frequency=...`)
      loss        object       core-loss breakdown; present when the
                               operating point carries a geometry and a
                               frequency: hysteresis_w, eddy_w, total_w,
                               energy_per_cycle_j.  Deterministic (derived
                               from the BH trace), never gated behind
                               --timings.
      kernel      object       ONLY with --timings, and only for the
                               event-kernel backend: delta_cycles,
                               events_scheduled, process_activations.
                               Deterministic substrate-cost counters, but
                               they describe the simulation machinery
                               rather than the physics, so they ride with
                               the timing fields.
    timing      object  ONLY with --timings: workers, elapsed_ns,
                        serial_ns, speedup (plus per-entry wall_clock_ns /
                        runtime_ns, and for entries executed as a
                        structure-of-arrays lockstep group,
                        backend_routing: \"soa\" with lockstep_lanes).
                        Omitted by default so reports are byte-identical
                        across --workers values AND across --routing
                        modes (SoA f64 lanes are bit-identical to scalar
                        runs).

  Streamed batch NDJSON (ja batch --format ndjson; served batch_request
  with options.stream true — both surfaces share one writer, so the
  bytes are identical):
    one compact record line per grid entry, in index order (so the
    stream is byte-identical across --workers values), each the batch
    entry object above prefixed with
      index       int    the entry's position in the grid
    and NEVER carrying timings; sealed by a final manifest line:
    kind=batch_manifest: scenarios, succeeded, failed, entries_digest
      (32 hex digits: 128-bit FNV-1a over every preceding record line's
      bytes — equal manifests imply byte-identical streams; a stream
      without a final manifest line is truncated).
    kind=batch_checkpoint (the --output sidecar file, written atomically
      every --checkpoint-every records and deleted on completion;
      consumed by --resume): grid_digest (32 hex digits; refuses a
      foreign grid), entries, byte_offset (the output is truncated back
      to this offset on resume, discarding a torn trailing record),
      succeeded, failed, digest_state (suspended digest, so the resumed
      run's entries_digest still covers every record from entry 0).
      A resumed run's output is byte-identical to an uninterrupted one.

  metrics object (keys from magnetics::LoopMetrics::named_values):
    b_max_t, h_max_a_per_m, coercivity_a_per_m, remanence_t,
    loop_area_j_per_m3, negative_slope_samples

  stats object (keys mirror ja_hysteresis::model::JaStatistics):
    samples, updates, slope_evaluations, negative_slope_events,
    rejected_updates

  transient object (keys mirror analog_solver::circuit::TransientStats):
    accepted_steps, rejected_steps, newton_iterations, lu_solves,
    non_converged_steps

  kind=sweep (ja sweep --format json): envelope + one entry (fields as in
    a batch entry).
  kind=transient (ja transient --format json): envelope + one entry
    (fields as in a batch entry, transient object included).
  kind=fit (ja fit): starts, seed, then per fitted loop: loop (name),
    input_samples, h_peak_a_per_m, measured (metrics object), entries
    (array, one per starting point: start (params object), status
    ok | error, cost, evaluations, params), best_start (int | null),
    params {m_sat_a_per_m, a_a_per_m, a2_a_per_m, k_a_per_m, alpha, c}
    (the best start's; null if every start failed), cost, evaluations
    (total).  `ja fit --input` inlines its single loop's fields flat;
    `ja fit --config` nests one such object per loop under `loops`.
    Timing fields (per-start wall_clock_ns, trailing `timing` object —
    for lockstep-routed fits with backend_routing: \"soa\" and
    lockstep_lanes) appear only with --timings, so default reports are
    byte-identical for any --workers value and any --routing mode.
  kind=inverse (ja inverse --format json): samples, h_peak_a_per_m,
    b_peak_t, metrics (object|null).
  kind=loss_map (ja lossmap): points, succeeded, failed, entries (array,
    one per frequency x amplitude x temperature x material point, in grid
    order: scenario, status, material, peak_h_a_per_m, frequency_hz,
    temperature_c, b_pk_t, loss object), fits (array, one per material:
    material, points, then the two-exponent Steinmetz fit
    P = k * f^alpha * B_pk^beta as k, alpha, beta — or error when the map
    does not constrain the fit).  Byte-identical for any --workers /
    --routing value.
  kind=compare (ja compare --format json): max_abs_diff_b_t,
    relative_diff, worst_pair (array of 2 labels | null), outcomes (array
    of entries).
  kind=bench (criterion stand-in --json and ja bench-serve --json,
    consumed by ja bench-gate): benches {bench id -> median ns/iteration}.

  Served documents (ja serve; wire framing in docs/PROTOCOL.md):
    kind=error (any non-200 response): status (int, mirrors the HTTP
      status), error (string message).
    kind=health (GET /v1/health): status \"ok\", eval_workers, cache
      {entries, bytes, budget_bytes, hits, misses, evictions}.
    kind=shutdown (POST /v1/shutdown): draining true.
    POST /v1/eval request kinds batch_request | fit_request |
      sweep_request | transient_request produce byte-identical bodies to
      the offline batch | fit | sweep | transient reports above.

EXIT STATUS: 0 success; 1 runtime failure (including batch scenario
failures and bench-gate regressions); 2 usage error.";

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(subcommand) = args.first() else {
        return Err(CliError::usage(format!(
            "missing subcommand\n\n{GLOBAL_HELP}"
        )));
    };
    let rest = &args[1..];
    match subcommand.as_str() {
        "-h" | "--help" => {
            println!("{GLOBAL_HELP}");
            Ok(())
        }
        "-V" | "--version" => {
            println!("ja {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        "help" => {
            let topic = rest.first().map(String::as_str);
            let text = match topic {
                None => GLOBAL_HELP,
                Some("sweep") => commands::sweep::HELP,
                Some("transient") => commands::transient::HELP,
                Some("batch") => commands::batch::HELP,
                Some("lossmap") => commands::lossmap::HELP,
                Some("fit") => commands::fit::HELP,
                Some("inverse") => commands::inverse::HELP,
                Some("compare") => commands::compare::HELP,
                Some("bench-gate") => commands::bench_gate::HELP,
                Some("serve") => commands::serve::HELP,
                Some("bench-serve") => commands::bench_serve::HELP,
                Some(other) => {
                    return Err(CliError::usage(format!("unknown subcommand `{other}`")))
                }
            };
            println!("{text}");
            Ok(())
        }
        command if wants_help(rest) => {
            let text = match command {
                "sweep" => commands::sweep::HELP,
                "transient" => commands::transient::HELP,
                "batch" => commands::batch::HELP,
                "lossmap" => commands::lossmap::HELP,
                "fit" => commands::fit::HELP,
                "inverse" => commands::inverse::HELP,
                "compare" => commands::compare::HELP,
                "bench-gate" => commands::bench_gate::HELP,
                "serve" => commands::serve::HELP,
                "bench-serve" => commands::bench_serve::HELP,
                other => return Err(CliError::usage(format!("unknown subcommand `{other}`"))),
            };
            println!("{text}");
            Ok(())
        }
        "sweep" => commands::sweep::run(rest),
        "transient" => commands::transient::run(rest),
        "batch" => commands::batch::run(rest),
        "lossmap" => commands::lossmap::run(rest),
        "fit" => commands::fit::run(rest),
        "inverse" => commands::inverse::run(rest),
        "compare" => commands::compare::run(rest),
        "bench-gate" => commands::bench_gate::run(rest),
        "serve" => commands::serve::run(rest),
        "bench-serve" => commands::bench_serve::run(rest),
        other => Err(CliError::usage(format!(
            "unknown subcommand `{other}` (see `ja --help`)"
        ))),
    }
}

fn wants_help(args: &[String]) -> bool {
    args.iter().any(|arg| arg == "-h" || arg == "--help")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("ja: {}", err.message);
            ExitCode::from(err.code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        let err = run(&["transmogrify".to_owned()]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("transmogrify"));
        assert!(run(&[]).is_err());
    }

    #[test]
    fn help_text_documents_the_schema() {
        // The help is the schema's source of truth: every envelope kind and
        // every metrics/stats key must appear in it.
        for needle in [
            "schema_version",
            "batch | sweep | transient | fit | inverse |",
            "compare | bench",
            "accepted_steps",
            "non_converged_steps",
            "b_max_t",
            "h_max_a_per_m",
            "coercivity_a_per_m",
            "remanence_t",
            "loop_area_j_per_m3",
            "negative_slope_samples",
            "slope_evaluations",
            "rejected_updates",
            "wall_clock_ns",
            "delta_cycles",
            "events_scheduled",
            "process_activations",
            "m_sat_a_per_m",
            "backend_routing",
            "lockstep_lanes",
            "batch_manifest",
            "entries_digest",
            "batch_checkpoint",
            "grid_digest",
            "digest_state",
            "loss_map",
            "temperature_c",
            "frequency_hz",
            "hysteresis_w",
            "eddy_w",
            "total_w",
            "energy_per_cycle_j",
            "b_pk_t",
            "alpha, beta",
        ] {
            assert!(GLOBAL_HELP.contains(needle), "missing `{needle}`");
        }
    }

    #[test]
    fn schema_keys_in_help_match_the_library() {
        use magnetics::loop_analysis::loop_metrics;
        // Generate real metrics and confirm every key the library emits is
        // documented in the help text.
        let outcome = hdl_models::scenario::Scenario::fig1(
            hdl_models::scenario::BackendKind::DirectTimeless,
            250.0,
        )
        .unwrap()
        .run()
        .unwrap();
        let metrics = loop_metrics(&outcome.curve).unwrap();
        for (key, _) in metrics.named_values() {
            assert!(GLOBAL_HELP.contains(key), "undocumented metric key `{key}`");
        }
    }
}
