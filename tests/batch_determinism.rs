//! Determinism of the parallel batch executor: the same `ScenarioGrid` run
//! with 1, 2 and 8 workers must produce `BatchReport`s whose entries are
//! identical in order and in floating-point content (bitwise).  Only the
//! timing fields (`wall_clock`, `elapsed`, `ScenarioOutcome::runtime`) may
//! differ between runs.

use ja_repro::hdl_models::exec::{BatchRunner, SoaRouting};
use ja_repro::hdl_models::scenario::{
    BackendKind, BatchReport, CircuitExcitation, Excitation, OperatingPoint, ScenarioGrid,
    StepControl,
};
use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::magnetics::geometry::CoreGeometry;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::magnetics::thermal::ThermalCoefficients;

fn grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .backends(BackendKind::ALL)
        .config("dh10", JaConfig::default())
        .config("dh25", JaConfig::default().with_dh_max(25.0))
        .excitation("fig1", Excitation::fig1(500.0).expect("excitation"))
        .excitation(
            "major",
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        )
}

/// The mixed grid of the acceptance criterion: field-driven and
/// circuit-driven scenarios (fixed and adaptive stepping) side by side on
/// one backend.
fn mixed_grid() -> ScenarioGrid {
    let mut inrush_fixed = CircuitExcitation::inrush();
    inrush_fixed.t_end = 0.02;
    let inrush_adaptive = inrush_fixed
        .clone()
        .with_step_control(StepControl::Adaptive(CircuitExcitation::adaptive_defaults()));
    ScenarioGrid::new()
        .backend(BackendKind::DirectTimeless)
        .config("dh10", JaConfig::default())
        .excitation(
            "major",
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        )
        .excitation("inrush-fixed", Excitation::Circuit(inrush_fixed))
        .excitation("inrush-adaptive", Excitation::Circuit(inrush_adaptive))
}

/// Everything in a report that must be reproducible, with the
/// floating-point payload captured bit-for-bit.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    name: String,
    payload: Result<OutcomeBits, String>,
}

#[derive(Debug, PartialEq, Eq)]
struct OutcomeBits {
    backend: &'static str,
    samples: u64,
    updates: u64,
    slope_evaluations: u64,
    curve_bits: Vec<(u64, u64, u64)>,
    metric_bits: Option<(u64, u64, u64, u64)>,
    transient: Option<(u64, u64, u64)>,
    loss_bits: Option<(u64, u64, u64, u64)>,
    temperature_bits: Option<u64>,
}

fn fingerprint(report: &BatchReport) -> Vec<Fingerprint> {
    report
        .entries
        .iter()
        .map(|entry| Fingerprint {
            name: entry.scenario.name.clone(),
            payload: match &entry.outcome {
                Ok(outcome) => Ok(OutcomeBits {
                    backend: outcome.backend.label(),
                    samples: outcome.stats.samples,
                    updates: outcome.stats.updates,
                    slope_evaluations: outcome.stats.slope_evaluations,
                    curve_bits: outcome
                        .curve
                        .points()
                        .iter()
                        .map(|p| {
                            (
                                p.h.value().to_bits(),
                                p.b.as_tesla().to_bits(),
                                p.m.value().to_bits(),
                            )
                        })
                        .collect(),
                    metric_bits: outcome.metrics.map(|m| {
                        (
                            m.b_max.as_tesla().to_bits(),
                            m.coercivity.value().to_bits(),
                            m.remanence.as_tesla().to_bits(),
                            m.loop_area.to_bits(),
                        )
                    }),
                    transient: outcome.transient.map(|t| {
                        (
                            t.accepted_steps as u64,
                            t.rejected_steps as u64,
                            t.newton_iterations as u64,
                        )
                    }),
                    loss_bits: outcome.loss.map(|loss| {
                        (
                            loss.hysteresis_w.to_bits(),
                            loss.eddy_w.to_bits(),
                            loss.total_w.to_bits(),
                            loss.energy_per_cycle_j.to_bits(),
                        )
                    }),
                    temperature_bits: outcome
                        .operating_point
                        .and_then(|op| op.temperature_c)
                        .map(f64::to_bits),
                }),
                Err(err) => Err(err.to_string()),
            },
        })
        .collect()
}

#[test]
fn batch_report_is_bit_identical_across_worker_counts() {
    let scenarios = grid().scenarios().expect("non-empty grid");
    assert_eq!(scenarios.len(), 16); // 4 backends x 2 configs x 2 excitations

    let single = BatchRunner::new().workers(1).run(scenarios.clone());
    assert_eq!(single.workers, 1);
    assert_eq!(single.failures().count(), 0);
    let reference = fingerprint(&single);
    assert_eq!(reference.len(), scenarios.len());

    for workers in [2, 8] {
        let parallel = BatchRunner::new().workers(workers).run(scenarios.clone());
        assert_eq!(parallel.workers, workers);
        assert_eq!(
            fingerprint(&parallel),
            reference,
            "{workers}-worker report diverged from the single-worker report"
        );
    }
}

/// A grid whose (config, excitation) cells hold several `DirectTimeless`
/// scenarios — the shape the Auto routing batches into structure-of-arrays
/// lockstep groups.
fn groupable_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .material("date2006", JaParameters::date2006())
        .material("ja1984", JaParameters::jiles_atherton_1984())
        .material("soft-ferrite", JaParameters::soft_ferrite())
        .material("hard-steel", JaParameters::hard_steel())
        .backend(BackendKind::DirectTimeless)
        .config("dh10", JaConfig::default())
        .excitation("fig1", Excitation::fig1(500.0).expect("excitation"))
        .excitation(
            "major",
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        )
}

#[test]
fn batch_report_is_bit_identical_across_soa_routing_and_worker_counts() {
    // Lockstep routing is a scheduling decision, not a result decision:
    // the SoA f64 lanes are bit-identical to scalar runs, so forcing
    // either routing at any worker count must reproduce the same report.
    let scenarios = groupable_grid().scenarios().expect("non-empty grid");
    assert_eq!(scenarios.len(), 8); // 4 materials x 1 backend x 2 excitations

    let scalar = BatchRunner::new()
        .workers(1)
        .soa_routing(SoaRouting::ForceScalar)
        .run(scenarios.clone());
    assert_eq!(scalar.failures().count(), 0);
    let reference = fingerprint(&scalar);

    for routing in [SoaRouting::Auto, SoaRouting::ForceSoa] {
        for workers in [1, 2, 8] {
            let routed = BatchRunner::new()
                .workers(workers)
                .soa_routing(routing)
                .run(scenarios.clone());
            assert_eq!(
                fingerprint(&routed),
                reference,
                "{routing:?} report at {workers} workers diverged from the scalar report"
            );
            // And it really did run in lockstep: 4 lanes per group.
            for entry in &routed.entries {
                let outcome = entry.outcome.as_ref().expect("ok");
                assert_eq!(outcome.lockstep_lanes, Some(4), "{}", entry.scenario.name);
            }
        }
    }
}

/// A temperature-axis loss-map grid: two materials resolved through their
/// thermal coefficients at three operating points, each carrying geometry
/// and frequency so every outcome reports a loss breakdown.
fn thermal_loss_grid() -> ScenarioGrid {
    let mut grid = ScenarioGrid::new()
        .material_with_thermal(
            "date2006",
            JaParameters::date2006(),
            ThermalCoefficients::date2006(),
        )
        .material_with_thermal(
            "hard-steel",
            JaParameters::hard_steel(),
            ThermalCoefficients::hard_steel(),
        )
        .backend(BackendKind::DirectTimeless)
        .config("dh10", JaConfig::default())
        .excitation(
            "major",
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        );
    for t_c in [-40.0, 25.0, 125.0] {
        grid = grid.operating_point(
            format!("t{t_c}"),
            OperatingPoint::at_temperature(t_c)
                .with_frequency(50.0)
                .with_geometry(CoreGeometry::demo()),
        );
    }
    grid
}

#[test]
fn thermal_loss_grid_is_bit_identical_across_workers_and_routing() {
    // Thermal parameter resolution happens once per scenario
    // (`Scenario::resolved_params`) and feeds the scalar backends and the
    // SoA lanes identically, so a temperature-axis grid must reproduce
    // bit-for-bit across worker counts AND routing modes.
    let scenarios = thermal_loss_grid().scenarios().expect("non-empty grid");
    assert_eq!(scenarios.len(), 6); // 2 materials x 3 operating points

    let scalar = BatchRunner::new()
        .workers(1)
        .soa_routing(SoaRouting::ForceScalar)
        .run(scenarios.clone());
    assert_eq!(scalar.failures().count(), 0);
    let reference = fingerprint(&scalar);

    // Every outcome carries a loss breakdown and its temperature, and the
    // thermal scaling really happened: the cold and hot runs of the same
    // material trace different curves.
    for f in &reference {
        let bits = f.payload.as_ref().expect("ok");
        assert!(bits.loss_bits.is_some(), "{}: no loss", f.name);
        assert!(
            bits.temperature_bits.is_some(),
            "{}: no temperature",
            f.name
        );
    }
    let curve_of = |needle: &str| {
        let f = reference
            .iter()
            .find(|f| f.name.ends_with(needle))
            .unwrap_or_else(|| panic!("no scenario ends with {needle}"));
        &f.payload.as_ref().expect("ok").curve_bits
    };
    assert_ne!(
        curve_of("date2006/t-40"),
        curve_of("date2006/t125"),
        "thermal scaling must change the traced loop"
    );

    for routing in [
        SoaRouting::ForceScalar,
        SoaRouting::Auto,
        SoaRouting::ForceSoa,
    ] {
        for workers in [1, 2, 8] {
            let routed = BatchRunner::new()
                .workers(workers)
                .soa_routing(routing)
                .run(scenarios.clone());
            assert_eq!(
                fingerprint(&routed),
                reference,
                "{routing:?} thermal report at {workers} workers diverged from the scalar report"
            );
            if !matches!(routing, SoaRouting::ForceScalar) {
                // Grouping keys include the operating point: the two
                // materials of each (config, excitation, point) cell run
                // as one two-lane lockstep group.
                for entry in &routed.entries {
                    let outcome = entry.outcome.as_ref().expect("ok");
                    assert_eq!(outcome.lockstep_lanes, Some(2), "{}", entry.scenario.name);
                }
            }
        }
    }
}

#[test]
fn run_batch_default_matches_single_worker() {
    let scenarios = grid().scenarios().expect("non-empty grid");
    let default_run = ja_repro::hdl_models::scenario::run_batch(scenarios.clone());
    let single = BatchRunner::new().workers(1).run(scenarios);
    assert_eq!(fingerprint(&default_run), fingerprint(&single));
    assert!(default_run.workers >= 1);
}

#[test]
fn mixed_field_and_circuit_batch_is_bit_identical_across_worker_counts() {
    let scenarios = mixed_grid().scenarios().expect("non-empty grid");
    assert_eq!(scenarios.len(), 3);

    let single = BatchRunner::new().workers(1).run(scenarios.clone());
    assert_eq!(single.failures().count(), 0);
    let reference = fingerprint(&single);
    // The circuit entries carry transient counters, the field entry none.
    assert!(reference.iter().any(|f| matches!(
        &f.payload,
        Ok(bits) if bits.transient.is_some()
    )));
    assert!(reference.iter().any(|f| matches!(
        &f.payload,
        Ok(bits) if bits.transient.is_none()
    )));

    for workers in [2, 8] {
        let parallel = BatchRunner::new().workers(workers).run(scenarios.clone());
        assert_eq!(
            fingerprint(&parallel),
            reference,
            "{workers}-worker mixed report diverged from the single-worker report"
        );
    }
}
