//! Determinism of the streaming NDJSON path: the byte stream written by
//! `report::write_ndjson_batch` must be identical across 1/2/8 worker
//! counts, and an interrupted run resumed from its checkpoint must
//! reproduce the uninterrupted bytes exactly — including the final
//! manifest line and its entries digest.

use std::io::{self, Write};

use ja_repro::hdl_models::exec::BatchRunner;
use ja_repro::hdl_models::report::{write_ndjson_batch, StreamCheckpoint};
use ja_repro::hdl_models::scenario::{BackendKind, Excitation, ScenarioGrid};
use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::ja_hysteresis::json::JsonValue;

fn grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .backends(BackendKind::ALL)
        .config("dh10", JaConfig::default())
        .config("dh25", JaConfig::default().with_dh_max(25.0))
        .excitation("fig1", Excitation::fig1(500.0).expect("excitation"))
        .excitation(
            "major",
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        )
}

fn stream_with_workers(workers: usize) -> (Vec<u8>, StreamCheckpoint) {
    let scenarios = grid().scenarios().expect("non-empty grid");
    let runner = BatchRunner::new().workers(workers);
    let mut bytes = Vec::new();
    let state = write_ndjson_batch(&runner, &scenarios, None, &mut bytes, |_, _| Ok(()))
        .expect("in-memory stream cannot fail");
    (bytes, state)
}

#[test]
fn ndjson_stream_is_byte_identical_across_worker_counts() {
    let (reference, state) = stream_with_workers(1);
    assert_eq!(state.entries, 16); // 4 backends x 2 configs x 2 excitations
    assert_eq!(state.failed, 0);

    let text = String::from_utf8(reference.clone()).expect("NDJSON is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 17, "16 records + 1 manifest line");
    for (index, line) in lines[..16].iter().enumerate() {
        let record = JsonValue::parse(line).expect("record parses");
        assert_eq!(
            record.get("index").and_then(JsonValue::as_i64),
            Some(index as i64),
            "records are emitted in grid order"
        );
    }
    let manifest = JsonValue::parse(lines[16]).expect("manifest parses");
    assert_eq!(
        manifest.get("kind").and_then(JsonValue::as_str),
        Some("batch_manifest")
    );
    assert_eq!(
        manifest.get("scenarios").and_then(JsonValue::as_i64),
        Some(16)
    );
    assert_eq!(
        manifest
            .get("entries_digest")
            .and_then(JsonValue::as_str)
            .map(str::to_owned),
        Some(format!("{:032x}", state.digest_state))
    );

    for workers in [2, 8] {
        let (bytes, _) = stream_with_workers(workers);
        assert_eq!(
            bytes, reference,
            "{workers}-worker NDJSON stream diverged from the single-worker stream"
        );
    }
}

#[test]
fn interrupted_and_resumed_stream_is_byte_identical_to_uninterrupted() {
    let (reference, _) = stream_with_workers(2);
    let scenarios = grid().scenarios().expect("non-empty grid");

    // Interrupt after the fifth record, with the last durable checkpoint
    // taken at the third — exactly the window a crash leaves behind.
    let mut bytes = Vec::new();
    let mut durable: Option<StreamCheckpoint> = None;
    let runner = BatchRunner::new().workers(2);
    let result = write_ndjson_batch(&runner, &scenarios, None, &mut bytes, |state, _| {
        if state.entries == 3 {
            durable = Some(*state);
        }
        if state.entries == 5 {
            return Err(io::Error::other("simulated crash"));
        }
        Ok(())
    });
    assert!(result.is_err(), "the interrupt must surface");
    let checkpoint = durable.expect("checkpoint was taken");
    assert_eq!(checkpoint.entries, 3);

    // The resume protocol: truncate to the checkpointed offset (the CLI's
    // `set_len`), discarding the two records — and any torn tail — that
    // landed after the checkpoint.
    bytes.truncate(checkpoint.byte_offset as usize);
    write!(bytes, "{{\"index\":99,\"scen").expect("vec write");
    bytes.truncate(checkpoint.byte_offset as usize);

    let resumed_state = write_ndjson_batch(
        &runner,
        &scenarios,
        Some(&checkpoint),
        &mut bytes,
        |_, _| Ok(()),
    )
    .expect("resume succeeds");
    assert_eq!(resumed_state.entries, scenarios.len());
    assert_eq!(
        bytes, reference,
        "resumed stream diverged from the uninterrupted stream"
    );
}

#[test]
fn resume_refuses_a_checkpoint_from_a_different_grid() {
    let (_, finished) = stream_with_workers(1);
    let other = ScenarioGrid::new()
        .backend(BackendKind::DirectTimeless)
        .config("dh10", JaConfig::default())
        .excitation("fig1", Excitation::fig1(500.0).expect("excitation"))
        .scenarios()
        .expect("non-empty grid");
    let runner = BatchRunner::new().workers(1);
    let mut bytes = Vec::new();
    let err = write_ndjson_batch(&runner, &other, Some(&finished), &mut bytes, |_, _| Ok(()))
        .expect_err("grid mismatch must be rejected");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(bytes.is_empty(), "nothing may be written on a refusal");
}
