//! Experiment E9: streaming execution decouples peak memory from grid
//! size.
//!
//! The stored path (`BatchRunner::run`) retains every scenario's curve
//! until the monolithic report is serialized, so its peak heap grows
//! linearly with the number of grid entries. The streaming path
//! (`report::write_ndjson_batch`) renders each entry to one NDJSON
//! record as it completes and drops the outcome immediately, so its peak
//! stays flat — only the in-flight scenarios and the reorder buffer are
//! ever resident. A counting `#[global_allocator]` makes both peaks
//! observable; the timed benchmarks show the throughput cost of
//! streaming is negligible (same engine, same records rendered once).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{black_box, Criterion};
use hdl_models::exec::BatchRunner;
use hdl_models::report::write_ndjson_batch;
use hdl_models::scenario::{BackendKind, Excitation, Scenario, ScenarioGrid};
use ja_hysteresis::config::JaConfig;

/// A [`System`]-backed allocator that tracks live and peak heap bytes.
/// Relaxed atomics are fine: the measured sections run their workload to
/// completion before reading the counters, and worker threads join
/// inside the workload.
struct CountingAllocator {
    live: AtomicUsize,
    peak: AtomicUsize,
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator {
    live: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = self.live.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

impl CountingAllocator {
    fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Restarts peak tracking from the current live size and returns the
    /// baseline, so `peak() - baseline` is the workload's own high-water
    /// mark.
    fn reset_peak(&self) -> usize {
        let live = self.live();
        self.peak.store(live, Ordering::Relaxed);
        live
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A grid of `entries` scenarios that differ only in `ΔH_max`, so entry
/// count scales freely without changing the per-entry work shape.
fn grid(entries: usize) -> Vec<Scenario> {
    let mut grid = ScenarioGrid::new()
        .backend(BackendKind::DirectTimeless)
        .excitation("fig1", Excitation::fig1(500.0).expect("excitation"));
    for i in 0..entries {
        let dh_max = 10.0 + i as f64 * 0.001;
        grid = grid.config(
            format!("dh{dh_max}"),
            JaConfig::default().with_dh_max(dh_max),
        );
    }
    grid.scenarios().expect("non-empty grid")
}

fn stored_peak(scenarios: &[Scenario]) -> usize {
    let runner = BatchRunner::new().workers(2);
    let baseline = ALLOC.reset_peak();
    let report = runner.run(scenarios.to_vec());
    let peak = ALLOC.peak() - baseline;
    black_box(&report);
    peak
}

fn streamed_peak(scenarios: &[Scenario]) -> usize {
    let runner = BatchRunner::new().workers(2);
    let baseline = ALLOC.reset_peak();
    let state = write_ndjson_batch(
        &runner,
        scenarios,
        None,
        &mut std::io::sink(),
        |_, _| Ok(()),
    )
    .expect("sink stream cannot fail");
    let peak = ALLOC.peak() - baseline;
    assert_eq!(state.failed, 0, "grid must succeed");
    peak
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn print_experiment(smoke: bool) {
    println!("== E9: peak heap of stored vs streamed grid execution (fig1 sweep per entry) ==\n");
    println!(
        "{:>8}  {:>16}  {:>16}  {:>14}",
        "entries", "stored peak MiB", "streamed peak MiB", "stored/streamed"
    );
    // The smoke sizes merely prove the measurement runs; the full sizes
    // show the 10x-entries contrast the streaming path exists for.
    let sizes: &[usize] = if smoke {
        &[200, 1_000]
    } else {
        &[1_000, 10_000]
    };
    for &entries in sizes {
        let scenarios = grid(entries);
        let stored = stored_peak(&scenarios);
        let streamed = streamed_peak(&scenarios);
        println!(
            "{:>8}  {:>16.2}  {:>16.2}  {:>14.1}",
            entries,
            mib(stored),
            mib(streamed),
            stored as f64 / streamed as f64
        );
    }
    println!(
        "\nstored peaks scale with the entry count; streamed peaks track only the\nin-flight scenarios, so the ratio widens as the grid grows.\n"
    );
}

fn benches(c: &mut Criterion) {
    let scenarios = grid(512);
    let mut group = c.benchmark_group("stream_grid");
    group.sample_size(10);
    group.bench_function("stored", |b| {
        b.iter(|| black_box(BatchRunner::new().workers(2).run(scenarios.clone())))
    });
    group.bench_function("streamed", |b| {
        b.iter(|| {
            let runner = BatchRunner::new().workers(2);
            write_ndjson_batch(&runner, &scenarios, None, &mut std::io::sink(), |_, _| {
                Ok(())
            })
            .expect("sink stream cannot fail")
        })
    });
    group.finish();
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    print_experiment(smoke);
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
