//! Excitation waveforms, field schedules, traces and export helpers.
//!
//! The paper drives its hysteresis model with a triangular waveform "in a DC
//! sweep, i.e. timeless simulations", and overlays non-biased minor loops on
//! top of the major loop.  This crate provides both views of an excitation:
//!
//! * **time-domain waveforms** ([`generator`], [`triangular`], [`sine`],
//!   [`pwm`], [`pwl`], [`composite`]) — `h(t)` functions used by the
//!   analogue-solver baseline, which genuinely integrates over time;
//! * **field schedules** ([`schedule`]) — ordered sequences of `H` samples
//!   with explicit reversal points, used by the timeless models where time
//!   plays no role at all;
//! * **trace capture and export** ([`trace`], [`export`]) — tabular capture
//!   of simulation results, CSV output and a small ASCII scatter plot used to
//!   eyeball the BH loops in the terminal (the stand-in for the paper's
//!   Fig. 1 bitmap);
//! * **analysis helpers** ([`turning_points`], [`stats`]).
//!
//! # Example
//!
//! ```
//! use waveform::schedule::FieldSchedule;
//!
//! # fn main() -> Result<(), waveform::WaveformError> {
//! // Three full triangular cycles between ±10 kA/m in 10 A/m steps.
//! let schedule = FieldSchedule::major_loop(10_000.0, 10.0, 3)?;
//! let samples: Vec<f64> = schedule.iter().collect();
//! assert!(samples.iter().all(|h| h.abs() <= 10_000.0 + 1e-9));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composite;
pub mod error;
pub mod export;
pub mod generator;
pub mod pwl;
pub mod pwm;
pub mod sampler;
pub mod schedule;
pub mod sine;
pub mod stats;
pub mod trace;
pub mod triangular;
pub mod turning_points;

pub use error::WaveformError;
pub use generator::Waveform;
