//! The SystemC-style event-driven model: the paper's three processes
//! (`core`, `monitorH`, `Integral`) running on the discrete-event kernel,
//! compared against the equation-style (VHDL-AMS-like) implementation
//! through the backend-agnostic scenario engine.
//!
//! Run with: `cargo run --example systemc_style`

use std::error::Error;

use ja_repro::hdl_models::scenario::{backend_agreement, BackendKind, Excitation, Scenario};
use ja_repro::hdl_models::systemc::SystemCJaCore;
use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::magnetics::material::JaParameters;

fn main() -> Result<(), Box<dyn Error>> {
    // DC-sweep (timeless) run of the SystemC port, as a scenario.
    let outcome = Scenario::fig1(BackendKind::SystemC, 10.0)?.run()?;
    let metrics = outcome.full_metrics()?;
    println!("== SystemC-style model, timeless DC sweep (scenario engine) ==");
    println!("  samples            = {}", outcome.curve.len());
    println!("  integral steps     = {}", outcome.stats.updates);
    println!(
        "  sweep time         = {:.1} ms",
        outcome.runtime.as_secs_f64() * 1e3
    );
    println!("  B_max              = {:.3} T", metrics.b_max.as_tesla());
    println!(
        "  coercivity         = {:.0} A/m",
        metrics.coercivity.value()
    );
    println!(
        "  remanence          = {:.3} T",
        metrics.remanence.as_tesla()
    );
    println!("  negative dB/dH     = {}", metrics.negative_slope_samples);

    // Timed testbench: the same module driven by scheduled signal writes —
    // kernel-level machinery the polymorphic API deliberately does not
    // expose, so the module is driven directly here.
    let excitation = Excitation::fig1(10.0)?;
    let samples: Vec<f64> = excitation.to_samples().into_iter().take(2_000).collect();
    let mut timed = SystemCJaCore::date2006()?;
    let (timed_curve, recorder) = timed.run_timed(&samples, 1e-6)?;
    println!("\n== SystemC-style model, timed testbench ==");
    println!("  events simulated   = {}", recorder.len());
    println!(
        "  final sim time     = {} us",
        recorder
            .times()
            .last()
            .map(|t| t.as_seconds() * 1e6)
            .unwrap_or(0.0)
    );
    println!(
        "  B at end           = {:.4} T",
        timed_curve.last().map(|p| p.b.as_tesla()).unwrap_or(0.0)
    );
    println!("  process activations= {}", timed.activations());
    println!("  delta cycles       = {}", timed.delta_cycles());

    // Equivalence with the equation-style implementation (paper: "both
    // implementations produce virtually identical results"), through the
    // backend trait.
    let report = backend_agreement(
        JaParameters::date2006(),
        JaConfig::default(),
        &excitation,
        &[BackendKind::SystemC, BackendKind::AmsTimeless],
    )?;
    println!("\n== SystemC vs AMS-style equivalence (experiment E6) ==");
    println!("  samples compared   = {}", report.outcomes[0].curve.len());
    println!("  max |dB|           = {:.3e} T", report.max_abs_diff_b);
    println!("  relative to B_max  = {:.3e}", report.relative_diff);
    println!(
        "  SystemC updates    = {}",
        report.outcomes[0].stats.updates
    );
    println!(
        "  AMS slope updates  = {}",
        report.outcomes[1].stats.updates
    );
    Ok(())
}
