//! Core-loss estimation from BH traces.
//!
//! The hysteresis loop area gives the energy dissipated per cycle and unit
//! volume; combined with a [`crate::geometry::CoreGeometry`] and an
//! excitation frequency it yields the hysteresis loss in watts.  The
//! classical eddy-current term for thin laminations and a Steinmetz-style
//! power-law fit are provided as well, so the reproduction can report the
//! loss breakdown a magnetics engineer would expect from a core model.

use crate::bh::BhCurve;
use crate::error::MagneticsError;
use crate::geometry::CoreGeometry;
use crate::loop_analysis::loop_area;

/// Loss breakdown of a core under periodic excitation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreLoss {
    /// Hysteresis loss in watts.
    pub hysteresis_w: f64,
    /// Classical eddy-current loss in watts.
    pub eddy_w: f64,
    /// Total of the two contributions in watts.
    pub total_w: f64,
    /// Energy lost to hysteresis per cycle, in joules.
    pub energy_per_cycle_j: f64,
}

/// Parameters of the classical eddy-current loss model for laminated cores:
/// `P_e = (π²/6) · σ · d² · f² · B_pk² · V`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaminationSpec {
    /// Electrical conductivity of the lamination material (S/m).
    pub conductivity_s_per_m: f64,
    /// Lamination thickness (m).
    pub thickness_m: f64,
}

impl LaminationSpec {
    /// A typical 0.35 mm silicon-steel lamination.
    pub fn silicon_steel_0p35mm() -> Self {
        Self {
            conductivity_s_per_m: 2.0e6,
            thickness_m: 0.35e-3,
        }
    }
}

/// Computes the loss breakdown of one excitation cycle.
///
/// `curve` must contain exactly one full cycle of the BH trajectory (its
/// enclosed area is taken as the per-cycle hysteresis energy density).
///
/// # Errors
///
/// Returns [`MagneticsError::InvalidParameter`] when the frequency is not
/// finite and positive, or [`MagneticsError::InsufficientSamples`] when the
/// curve holds fewer than 8 samples.
pub fn core_loss(
    curve: &BhCurve,
    geometry: &CoreGeometry,
    frequency_hz: f64,
    lamination: Option<LaminationSpec>,
) -> Result<CoreLoss, MagneticsError> {
    if !frequency_hz.is_finite() || frequency_hz <= 0.0 {
        return Err(MagneticsError::InvalidParameter {
            name: "frequency_hz",
            value: frequency_hz,
            requirement: "finite and > 0",
        });
    }
    if curve.len() < 8 {
        return Err(MagneticsError::InsufficientSamples {
            required: 8,
            available: curve.len(),
        });
    }
    let volume = geometry.volume_m3();
    let energy_density = loop_area(curve); // J/m^3 per cycle
    let energy_per_cycle = energy_density * volume;
    let hysteresis_w = energy_per_cycle * frequency_hz;

    let eddy_w = match lamination {
        Some(spec) => {
            let b_pk = curve.peak_flux_density()?.as_tesla();
            (std::f64::consts::PI.powi(2) / 6.0)
                * spec.conductivity_s_per_m
                * spec.thickness_m.powi(2)
                * frequency_hz.powi(2)
                * b_pk.powi(2)
                * volume
        }
        None => 0.0,
    };

    Ok(CoreLoss {
        hysteresis_w,
        eddy_w,
        total_w: hysteresis_w + eddy_w,
        energy_per_cycle_j: energy_per_cycle,
    })
}

/// Fits a Steinmetz power law `P = k_h · f · B_pk^β` (hysteresis-only form)
/// to a set of `(frequency, peak flux density, measured loss)` points,
/// returning `(k_h, β)`.
///
/// The fit is a linear least-squares in log space; at least two points with
/// distinct peak flux densities are required.
///
/// # Errors
///
/// Returns [`MagneticsError::InsufficientSamples`] for fewer than two
/// points, and [`MagneticsError::NonFiniteInput`] when any point is not
/// strictly positive.
pub fn fit_steinmetz(points: &[(f64, f64, f64)]) -> Result<(f64, f64), MagneticsError> {
    if points.len() < 2 {
        return Err(MagneticsError::InsufficientSamples {
            required: 2,
            available: points.len(),
        });
    }
    if points
        .iter()
        .any(|&(f, b, p)| !(f > 0.0 && b > 0.0 && p > 0.0))
    {
        return Err(MagneticsError::NonFiniteInput { name: "points" });
    }
    // log(P/f) = log(k_h) + beta * log(B)
    let xs: Vec<f64> = points.iter().map(|&(_, b, _)| b.ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(f, _, p)| (p / f).ln()).collect();
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    if sxx < 1e-12 {
        return Err(MagneticsError::InvalidParameter {
            name: "points",
            value: sxx,
            requirement: "at least two distinct peak flux densities",
        });
    }
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let beta = sxy / sxx;
    let k_h = (mean_y - beta * mean_x).exp();
    Ok((k_h, beta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bh::BhCurve;

    fn rectangular_loop(b_s: f64, h_c: f64, n: usize) -> BhCurve {
        // An idealised rectangular loop of area ~ 4 * Hc * Bs.
        let mut curve = BhCurve::new();
        for i in 0..=n {
            let h = -3.0 * h_c + 6.0 * h_c * i as f64 / n as f64;
            let b = if h > -h_c { b_s } else { -b_s };
            curve.push_raw(h, b, 0.0);
        }
        for i in 0..=n {
            let h = 3.0 * h_c - 6.0 * h_c * i as f64 / n as f64;
            let b = if h < h_c { -b_s } else { b_s };
            curve.push_raw(h, b, 0.0);
        }
        curve
    }

    #[test]
    fn hysteresis_loss_scales_with_frequency_and_volume() {
        let curve = rectangular_loop(1.5, 1000.0, 400);
        let geom = CoreGeometry::new(1e-4, 0.1).unwrap();
        let at_50 = core_loss(&curve, &geom, 50.0, None).unwrap();
        let at_100 = core_loss(&curve, &geom, 100.0, None).unwrap();
        assert!(at_50.hysteresis_w > 0.0);
        assert!((at_100.hysteresis_w / at_50.hysteresis_w - 2.0).abs() < 1e-9);
        assert_eq!(at_50.eddy_w, 0.0);
        assert!((at_50.total_w - at_50.hysteresis_w).abs() < 1e-12);
        // Loop area of the ideal rectangle is 4*Hc*Bs = 6000 J/m^3.
        let expected_energy = 6000.0 * geom.volume_m3();
        assert!((at_50.energy_per_cycle_j - expected_energy).abs() / expected_energy < 0.05);
    }

    #[test]
    fn eddy_loss_scales_with_frequency_squared() {
        let curve = rectangular_loop(1.5, 1000.0, 400);
        let geom = CoreGeometry::new(1e-4, 0.1).unwrap();
        let spec = LaminationSpec::silicon_steel_0p35mm();
        let at_50 = core_loss(&curve, &geom, 50.0, Some(spec)).unwrap();
        let at_100 = core_loss(&curve, &geom, 100.0, Some(spec)).unwrap();
        assert!(at_50.eddy_w > 0.0);
        assert!((at_100.eddy_w / at_50.eddy_w - 4.0).abs() < 1e-9);
        assert!(at_100.total_w > at_100.hysteresis_w);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let curve = rectangular_loop(1.5, 1000.0, 400);
        let geom = CoreGeometry::demo();
        assert!(core_loss(&curve, &geom, 0.0, None).is_err());
        let short = BhCurve::new();
        assert!(core_loss(&short, &geom, 50.0, None).is_err());
    }

    #[test]
    fn steinmetz_fit_recovers_known_exponent() {
        // Synthesise P = 2.5 * f * B^1.8
        let points: Vec<(f64, f64, f64)> = [(50.0, 0.5), (50.0, 1.0), (100.0, 1.5), (200.0, 0.8)]
            .iter()
            .map(|&(f, b): &(f64, f64)| (f, b, 2.5 * f * b.powf(1.8)))
            .collect();
        let (k_h, beta) = fit_steinmetz(&points).unwrap();
        assert!((k_h - 2.5).abs() < 1e-6);
        assert!((beta - 1.8).abs() < 1e-6);
    }

    #[test]
    fn steinmetz_fit_rejects_degenerate_input() {
        assert!(fit_steinmetz(&[(50.0, 1.0, 10.0)]).is_err());
        assert!(fit_steinmetz(&[(50.0, 1.0, 10.0), (60.0, 1.0, 12.0)]).is_err());
        assert!(fit_steinmetz(&[(50.0, -1.0, 10.0), (60.0, 1.0, 12.0)]).is_err());
    }
}
