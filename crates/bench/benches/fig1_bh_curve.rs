//! Experiment E1 / Fig. 1: the BH curve with non-biased minor loops.
//!
//! Prints the loop metrics of the reproduced figure for both
//! implementations, then benchmarks the full sweep.

use criterion::{black_box, Criterion};
use hdl_models::comparison::{fig1_direct_curve, fig1_schedule, fig1_systemc_curve, DEFAULT_STEP};
use hdl_models::systemc::SystemCJaCore;
use ja_bench::{print_metrics_header, print_metrics_row};
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::model::JilesAtherton;
use ja_hysteresis::sweep::sweep_schedule;
use magnetics::loop_analysis::loop_metrics;
use magnetics::material::JaParameters;

fn print_experiment() {
    println!("== E1 / Fig. 1: BH curve, triangular DC sweep ±10 kA/m with non-biased minor loops ==");
    println!("paper reference: B spans roughly ±2 T over ±10 kA/m (Fig. 1 axes)\n");
    print_metrics_header();
    let systemc = fig1_systemc_curve(DEFAULT_STEP).expect("systemc run");
    print_metrics_row("SystemC-style (event kernel)", &loop_metrics(&systemc).unwrap());
    let direct = fig1_direct_curve(DEFAULT_STEP, JaConfig::default()).expect("direct run");
    print_metrics_row("library model (direct sweep)", &loop_metrics(&direct).unwrap());
    println!();
}

fn benches(c: &mut Criterion) {
    let schedule = fig1_schedule(DEFAULT_STEP).expect("schedule");
    let mut group = c.benchmark_group("fig1_bh_curve");
    group.sample_size(10);
    group.bench_function("systemc_event_kernel_sweep", |b| {
        b.iter(|| {
            let mut core = SystemCJaCore::date2006().expect("module");
            black_box(core.run_schedule(&schedule).expect("sweep"))
        })
    });
    group.bench_function("library_direct_sweep", |b| {
        b.iter(|| {
            let mut model = JilesAtherton::new(JaParameters::date2006()).expect("model");
            black_box(sweep_schedule(&mut model, &schedule).expect("sweep"))
        })
    });
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
