//! Integration test for experiment E1: the full Fig. 1 pipeline, from the
//! field schedule through the SystemC-style model to the loop metrics and
//! export layer.

use ja_repro::hdl_models::comparison::{fig1_schedule, fig1_systemc_curve, DEFAULT_STEP};
use ja_repro::hdl_models::systemc::SystemCJaCore;
use ja_repro::magnetics::loop_analysis;
use ja_repro::waveform::export::{ascii_plot, write_csv};
use ja_repro::waveform::trace::Trace;

#[test]
fn fig1_bh_curve_matches_paper_envelope() {
    let curve = fig1_systemc_curve(DEFAULT_STEP).expect("schedule and kernel are well-formed");
    let metrics = loop_analysis::loop_metrics(&curve).expect("complete loop");

    // Fig. 1 axes: H spans ±10 kA/m and B roughly ±2 T.
    assert!((metrics.h_max.value() - 10_000.0).abs() < 1e-9);
    assert!(
        metrics.b_max.as_tesla() > 1.4 && metrics.b_max.as_tesla() < 2.2,
        "B_max = {} T",
        metrics.b_max.as_tesla()
    );
    // A wide ferromagnetic loop: coercivity in the kA/m range, strong
    // remanence, positive enclosed area.
    assert!(metrics.coercivity.value() > 1_000.0 && metrics.coercivity.value() < 6_000.0);
    assert!(metrics.remanence.as_tesla() > 0.3);
    assert!(metrics.loop_area > 1_000.0);
    // The headline numerical claim: no unphysical negative-slope samples.
    assert_eq!(metrics.negative_slope_samples, 0);
}

#[test]
fn fig1_minor_loops_nest_inside_major_loop() {
    let schedule = fig1_schedule(DEFAULT_STEP).expect("valid schedule");
    let mut core = SystemCJaCore::date2006().expect("well-formed module");
    let curve = core.run_schedule(&schedule).expect("sweep");

    // Peak of the whole trace comes from the major loop...
    let b_peak = curve.peak_flux_density().unwrap().as_tesla();
    // ...while the last minor loop (smallest amplitude) stays well inside.
    let tail = &curve.points()[curve.len() - 500..];
    let b_tail_peak = tail
        .iter()
        .map(|p| p.b.as_tesla().abs())
        .fold(0.0, f64::max);
    assert!(
        b_tail_peak < b_peak * 0.9,
        "tail {b_tail_peak} vs peak {b_peak}"
    );
    // Minor loops are non-biased: their field stays within ±2.5 kA/m.
    assert!(tail.iter().all(|p| p.h.value().abs() <= 2_500.0 + 1e-9));
}

#[test]
fn fig1_trace_exports_to_csv_and_ascii() {
    let curve = fig1_systemc_curve(50.0).expect("coarse sweep");
    let mut trace = Trace::new(["h", "b"]);
    for p in curve.points() {
        trace.push_row(&[p.h.value(), p.b.as_tesla()]).unwrap();
    }
    let mut csv = Vec::new();
    write_csv(&trace, &mut csv).expect("csv export");
    let text = String::from_utf8(csv).unwrap();
    assert!(text.starts_with("h,b\n"));
    assert_eq!(text.lines().count(), trace.len() + 1);

    let h: Vec<f64> = curve.points().iter().map(|p| p.h.value()).collect();
    let b: Vec<f64> = curve.points().iter().map(|p| p.b.as_tesla()).collect();
    let plot = ascii_plot(&h, &b, 60, 20).expect("plot");
    assert!(plot.contains('*'));
}
