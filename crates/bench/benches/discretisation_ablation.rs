//! Experiment E8 (ablation): effect of the ΔH_max threshold and of the
//! integration order on accuracy and cost of the timeless discretisation.

use criterion::{black_box, Criterion};
use hdl_models::comparison::discretisation_ablation;
use hdl_models::scenario::{BackendKind, Excitation, Scenario};
use ja_hysteresis::config::{JaConfig, SlopeIntegration};
use magnetics::material::JaParameters;

fn print_experiment() {
    println!("== E8: discretisation ablation (ΔH_max and integration order) ==");
    println!(
        "{:>10} {:>14} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "dHmax[A/m]", "method", "Bmax[T]", "Hc[A/m]", "Br[T]", "area[J/m3]", "slope evals"
    );
    let rows = discretisation_ablation(
        &[1.0, 5.0, 10.0, 50.0, 100.0, 250.0, 500.0],
        &[
            SlopeIntegration::ForwardEuler,
            SlopeIntegration::Heun,
            SlopeIntegration::RungeKutta4,
        ],
    )
    .expect("ablation runs");
    for row in rows {
        println!(
            "{:>10} {:>14} {:>9.3} {:>9.0} {:>9.3} {:>12.0} {:>12}",
            row.dh_max,
            format!("{:?}", row.integration),
            row.metrics.b_max.as_tesla(),
            row.metrics.coercivity.value(),
            row.metrics.remanence.as_tesla(),
            row.metrics.loop_area,
            row.slope_evaluations
        );
    }
    println!();
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("discretisation_ablation");
    group.sample_size(10);
    for method in [
        SlopeIntegration::ForwardEuler,
        SlopeIntegration::Heun,
        SlopeIntegration::RungeKutta4,
    ] {
        let scenario = Scenario::new(
            format!("ablation/{method:?}"),
            JaParameters::date2006(),
            JaConfig::default().with_integration(method),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 10.0, 2).expect("excitation"),
        );
        group.bench_function(format!("{method:?}_dh10"), |b| {
            b.iter(|| black_box(scenario.run().expect("sweep")))
        });
    }
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
