//! BH-curve containers.
//!
//! A [`BhCurve`] is an ordered trace of `(H, B)` samples, optionally carrying
//! the magnetisation `M` as well.  This is the common exchange format
//! between the hysteresis models, the loop analysis and the export layer:
//! the models append samples as the excitation is swept, and the analysis
//! reads them back out.

use crate::error::MagneticsError;
use crate::units::{FieldStrength, FluxDensity, Magnetisation};

/// One sample of a BH trace.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct BhPoint {
    /// Applied field `H`.
    pub h: FieldStrength,
    /// Flux density `B`.
    pub b: FluxDensity,
    /// Magnetisation `M` (if the producing model tracks it; zero otherwise).
    pub m: Magnetisation,
}

impl BhPoint {
    /// Creates a sample carrying field, flux density and magnetisation.
    pub fn new(h: FieldStrength, b: FluxDensity, m: Magnetisation) -> Self {
        Self { h, b, m }
    }

    /// Creates a sample from field and flux density only.
    pub fn from_h_b(h: FieldStrength, b: FluxDensity) -> Self {
        Self {
            h,
            b,
            m: Magnetisation::zero(),
        }
    }
}

/// An ordered BH trace.
///
/// The container enforces nothing about the shape of the data — it can hold
/// an initial magnetisation curve, a single loop, or a long sweep with many
/// nested minor loops — and provides the accessors the analysis code needs.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct BhCurve {
    points: Vec<BhPoint>,
}

impl BhCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Creates an empty curve with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            points: Vec::with_capacity(capacity),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, point: BhPoint) {
        self.points.push(point);
    }

    /// Appends a sample given as raw `(H, B, M)` values in SI units.
    pub fn push_raw(&mut self, h: f64, b: f64, m: f64) {
        self.points.push(BhPoint::new(
            FieldStrength::new(h),
            FluxDensity::new(b),
            Magnetisation::new(m),
        ));
    }

    /// Removes every sample while keeping the allocation, so the curve can
    /// be refilled without touching the allocator (hot-path reuse in the
    /// batch executor's sweep drivers).
    pub fn clear(&mut self) {
        self.points.clear();
    }

    /// Reserves capacity for at least `additional` further samples.
    pub fn reserve(&mut self, additional: usize) {
        self.points.reserve(additional);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the curve holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrow the samples.
    pub fn points(&self) -> &[BhPoint] {
        &self.points
    }

    /// Iterator over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, BhPoint> {
        self.points.iter()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<&BhPoint> {
        self.points.last()
    }

    /// Largest |B| in the trace.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InsufficientSamples`] on an empty curve.
    pub fn peak_flux_density(&self) -> Result<FluxDensity, MagneticsError> {
        self.require(1)?;
        let peak = self
            .points
            .iter()
            .map(|p| p.b.as_tesla().abs())
            .fold(0.0_f64, f64::max);
        Ok(FluxDensity::new(peak))
    }

    /// Largest |H| in the trace.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InsufficientSamples`] on an empty curve.
    pub fn peak_field(&self) -> Result<FieldStrength, MagneticsError> {
        self.require(1)?;
        let peak = self
            .points
            .iter()
            .map(|p| p.h.value().abs())
            .fold(0.0_f64, f64::max);
        Ok(FieldStrength::new(peak))
    }

    /// Range of `H` covered by the trace as `(min, max)`.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InsufficientSamples`] on an empty curve.
    pub fn field_range(&self) -> Result<(FieldStrength, FieldStrength), MagneticsError> {
        self.require(1)?;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in &self.points {
            lo = lo.min(p.h.value());
            hi = hi.max(p.h.value());
        }
        Ok((FieldStrength::new(lo), FieldStrength::new(hi)))
    }

    /// Splits the trace at the field turning points, returning the index of
    /// the first sample of every monotone branch.  The first branch always
    /// starts at index 0.
    pub fn branch_starts(&self) -> Vec<usize> {
        let mut starts = vec![0];
        if self.points.len() < 3 {
            return starts;
        }
        let mut prev_dir = 0.0;
        for i in 1..self.points.len() {
            let dh = self.points[i].h.value() - self.points[i - 1].h.value();
            let dir = if dh > 0.0 {
                1.0
            } else if dh < 0.0 {
                -1.0
            } else {
                prev_dir
            };
            if prev_dir != 0.0 && dir != 0.0 && dir != prev_dir {
                starts.push(i - 1);
            }
            if dir != 0.0 {
                prev_dir = dir;
            }
        }
        starts
    }

    /// Returns the number of samples at which `B` decreases while `H`
    /// increases (or vice versa) — i.e. samples exhibiting a locally
    /// negative differential permeability.  The paper's slope clamp is meant
    /// to drive this count to zero.
    pub fn negative_slope_samples(&self) -> usize {
        let mut count = 0;
        for w in self.points.windows(2) {
            let dh = w[1].h.value() - w[0].h.value();
            let db = w[1].b.as_tesla() - w[0].b.as_tesla();
            if dh != 0.0 && db / dh < 0.0 {
                count += 1;
            }
        }
        count
    }

    fn require(&self, n: usize) -> Result<(), MagneticsError> {
        if self.points.len() < n {
            return Err(MagneticsError::InsufficientSamples {
                required: n,
                available: self.points.len(),
            });
        }
        Ok(())
    }
}

impl FromIterator<BhPoint> for BhCurve {
    fn from_iter<T: IntoIterator<Item = BhPoint>>(iter: T) -> Self {
        Self {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<BhPoint> for BhCurve {
    fn extend<T: IntoIterator<Item = BhPoint>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

impl<'a> IntoIterator for &'a BhCurve {
    type Item = &'a BhPoint;
    type IntoIter = std::slice::Iter<'a, BhPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl IntoIterator for BhCurve {
    type Item = BhPoint;
    type IntoIter = std::vec::IntoIter<BhPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_curve() -> BhCurve {
        // H goes 0 -> 10 -> -10 -> 10, B follows linearly (no hysteresis).
        let mut curve = BhCurve::new();
        let mut h = 0.0;
        let mut dir = 1.0;
        for _ in 0..400 {
            curve.push_raw(h, h * 1e-4, h * 10.0);
            h += dir * 0.25;
            if h >= 10.0 {
                dir = -1.0;
            } else if h <= -10.0 {
                dir = 1.0;
            }
        }
        curve
    }

    #[test]
    fn push_and_len() {
        let mut curve = BhCurve::new();
        assert!(curve.is_empty());
        curve.push(BhPoint::from_h_b(
            FieldStrength::new(1.0),
            FluxDensity::new(0.5),
        ));
        curve.push_raw(2.0, 1.0, 3.0);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve.last().unwrap().h.value(), 2.0);
    }

    #[test]
    fn peak_values() {
        let curve = triangle_curve();
        assert!((curve.peak_field().unwrap().value() - 10.0).abs() < 0.3);
        assert!(curve.peak_flux_density().unwrap().as_tesla() > 9.0e-4);
    }

    #[test]
    fn empty_curve_errors() {
        let curve = BhCurve::new();
        assert!(curve.peak_field().is_err());
        assert!(curve.peak_flux_density().is_err());
        assert!(curve.field_range().is_err());
    }

    #[test]
    fn field_range_covers_sweep() {
        let curve = triangle_curve();
        let (lo, hi) = curve.field_range().unwrap();
        assert!(lo.value() <= -9.5);
        assert!(hi.value() >= 9.5);
    }

    #[test]
    fn branch_starts_detect_reversals() {
        let curve = triangle_curve();
        let starts = curve.branch_starts();
        // 0 -> 10 -> -10 -> 10 has at least two reversals.
        assert!(starts.len() >= 3, "starts = {starts:?}");
        assert_eq!(starts[0], 0);
    }

    #[test]
    fn negative_slope_count_zero_for_monotone_b_of_h() {
        let curve = triangle_curve();
        assert_eq!(curve.negative_slope_samples(), 0);
    }

    #[test]
    fn negative_slope_detected() {
        let mut curve = BhCurve::new();
        curve.push_raw(0.0, 0.0, 0.0);
        curve.push_raw(1.0, -0.5, 0.0); // B drops while H rises
        curve.push_raw(2.0, 0.5, 0.0);
        assert_eq!(curve.negative_slope_samples(), 1);
    }

    #[test]
    fn from_iterator_and_extend() {
        let pts = vec![
            BhPoint::from_h_b(FieldStrength::new(0.0), FluxDensity::new(0.0)),
            BhPoint::from_h_b(FieldStrength::new(1.0), FluxDensity::new(0.1)),
        ];
        let mut curve: BhCurve = pts.clone().into_iter().collect();
        curve.extend(pts);
        assert_eq!(curve.len(), 4);
        assert_eq!((&curve).into_iter().count(), 4);
        assert_eq!(curve.into_iter().count(), 4);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let curve = BhCurve::with_capacity(128);
        assert!(curve.is_empty());
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut curve = BhCurve::new();
        curve.reserve(16);
        curve.push_raw(1.0, 0.1, 10.0);
        curve.clear();
        assert!(curve.is_empty());
        curve.push_raw(2.0, 0.2, 20.0);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve.last().unwrap().h.value(), 2.0);
    }
}
