//! Jiles–Atherton ferromagnetic hysteresis with **timeless discretisation of
//! the magnetisation slope** — the primary contribution of Al-Junaid &
//! Kazmierski, *"HDL Models of Ferromagnetic Core Hysteresis Using Timeless
//! Discretisation of the Magnetic Slope"*, DATE 2006.
//!
//! # The idea
//!
//! The JA magnetisation slope (Eq. 1 of the paper)
//!
//! ```text
//! dM         1        M_an − M            c     dM_an
//! ──   =  ─────── · ─────────────────  + ───── · ─────
//! dH      (1 + c)   δk − α·(M_an − M)    (1+c)    dH
//! ```
//!
//! is discontinuous at every field reversal (δ = sign(dH) flips), which is
//! what breaks analogue solvers that integrate it over *time*.  The paper's
//! technique integrates it over the *field* instead: the model watches `H`,
//! and whenever it has moved by more than a threshold `ΔH_max` it takes an
//! explicit integration step `ΔM = ΔH · dM/dH` — no time, no analogue
//! solver, no convergence loop.  Two guards remove the unphysical behaviour
//! of the raw equations: the slope is clamped non-negative, and an update
//! whose sign opposes the field increment is rejected.
//!
//! # Crate layout
//!
//! * [`params`] — re-export of the [`magnetics`] parameter set plus the
//!   model configuration ([`config::JaConfig`]);
//! * [`state`] — the magnetisation state variables (`M_irr`, `M_rev`,
//!   `M_total`, `H_last`);
//! * [`slope`] — the slope equation itself, with and without the guards;
//! * [`timeless`] — the timeless integrator (forward Euler in `H`, plus
//!   Heun and RK4-in-`H` variants for the ablation study);
//! * [`model`] — [`model::JilesAtherton`], the user-facing model: feed it a
//!   field value, read back magnetisation and flux density;
//! * [`time_domain`] — the conventional formulation (`dM/dt = dM/dH ·
//!   dH/dt`) used as the baseline the paper compares against;
//! * [`sweep`] — DC-sweep driver turning a [`waveform::schedule::FieldSchedule`]
//!   into a [`magnetics::bh::BhCurve`];
//! * [`soa`] — [`soa::SoaBatch`], the structure-of-arrays lockstep kernel
//!   stepping many parameter sets through one field sequence at once
//!   (bit-identical to the scalar model in `f64` mode);
//! * [`backend`] — the [`backend::HysteresisBackend`] trait unifying every
//!   implementation style (direct, time-domain, and the HDL models of the
//!   `hdl-models` crate) behind one polymorphic driving API;
//! * [`json`] — the hand-rolled JSON document model behind the versioned
//!   machine-readable run reports (the environment has no registry access,
//!   so no `serde_json`), including [`json::SCHEMA_VERSION`].
//!
//! # Quickstart
//!
//! ```
//! use ja_hysteresis::model::JilesAtherton;
//! use ja_hysteresis::sweep::sweep_schedule;
//! use magnetics::material::JaParameters;
//! use waveform::schedule::FieldSchedule;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's material and a ±10 kA/m triangular DC sweep.
//! let mut model = JilesAtherton::new(JaParameters::date2006())?;
//! let schedule = FieldSchedule::major_loop(10_000.0, 10.0, 2)?;
//! let result = sweep_schedule(&mut model, &schedule)?;
//! let metrics = magnetics::loop_analysis::loop_metrics(result.curve())?;
//! assert!(metrics.b_max.as_tesla() > 1.5);          // saturates near ±2 T
//! assert_eq!(metrics.negative_slope_samples, 0);    // no unphysical slopes
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod error;
pub mod fitting;
pub mod inverse;
pub mod json;
pub mod model;
pub mod params;
pub mod slope;
pub mod soa;
pub mod state;
pub mod sweep;
pub mod time_domain;
pub mod timeless;

pub use backend::HysteresisBackend;
pub use config::JaConfig;
pub use error::JaError;
pub use model::JilesAtherton;
