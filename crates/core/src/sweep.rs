//! DC-sweep driver: apply a time-free field schedule to a model and collect
//! the BH trace — "a triangular waveform used in a DC sweep, i.e. timeless
//! simulations" (paper, §3).

use magnetics::bh::BhCurve;
use waveform::schedule::FieldSchedule;
use waveform::trace::Trace;

use crate::error::JaError;
use crate::model::JilesAtherton;

/// Result of a DC sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    curve: BhCurve,
    trace: Trace,
    samples: usize,
    updates: u64,
}

impl SweepResult {
    /// The BH trace.
    pub fn curve(&self) -> &BhCurve {
        &self.curve
    }

    /// Consumes the result, returning the BH trace.
    pub fn into_curve(self) -> BhCurve {
        self.curve
    }

    /// A tabular trace with columns `h`, `b`, `m`, `m_an` (for CSV export).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of field samples applied.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of slope-integration updates the model performed during the
    /// sweep (≤ `samples`, depending on `ΔH_max`).
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

/// Sweeps a model through every sample of a [`FieldSchedule`].
///
/// # Errors
///
/// Propagates any model error ([`JaError::NonFiniteField`],
/// [`JaError::StateDiverged`]).
pub fn sweep_schedule(
    model: &mut JilesAtherton,
    schedule: &FieldSchedule,
) -> Result<SweepResult, JaError> {
    sweep_samples(model, schedule.iter())
}

/// Sweeps a model through an arbitrary sequence of field samples (A/m).
///
/// # Errors
///
/// Propagates any model error.
pub fn sweep_samples<I>(model: &mut JilesAtherton, samples: I) -> Result<SweepResult, JaError>
where
    I: IntoIterator<Item = f64>,
{
    let updates_before = model.statistics().updates;
    let samples = samples.into_iter();
    // FieldSchedule iterators know their exact length; arbitrary iterators
    // contribute at least their lower bound, so the common case fills the
    // buffers without a single reallocation.
    let capacity = samples.size_hint().0;
    let mut curve = BhCurve::with_capacity(capacity);
    let mut trace = Trace::with_capacity(["h", "b", "m", "m_an"], capacity);
    let mut count = 0usize;
    for h in samples {
        let sample = model.apply_field(h)?;
        curve.push_raw(sample.h.value(), sample.b.as_tesla(), sample.m.value());
        trace
            .push_row(&[
                sample.h.value(),
                sample.b.as_tesla(),
                sample.m.value(),
                sample.m_an,
            ])
            .expect("trace has exactly four columns");
        count += 1;
    }
    Ok(SweepResult {
        curve,
        trace,
        samples: count,
        updates: model.statistics().updates - updates_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::loop_analysis;
    use magnetics::material::JaParameters;
    use waveform::schedule::FieldSchedule;

    fn paper_model() -> JilesAtherton {
        JilesAtherton::new(JaParameters::date2006()).expect("valid parameters")
    }

    #[test]
    fn major_loop_sweep_reproduces_figure_shape() {
        let mut model = paper_model();
        let schedule = FieldSchedule::major_loop(10_000.0, 10.0, 2).unwrap();
        let result = sweep_schedule(&mut model, &schedule).unwrap();
        let metrics = loop_analysis::loop_metrics(result.curve()).unwrap();
        // Fig. 1 axes: B spans roughly ±2 T over ±10 kA/m.
        assert!(metrics.b_max.as_tesla() > 1.5 && metrics.b_max.as_tesla() < 2.3);
        assert!((metrics.h_max.value() - 10_000.0).abs() < 1e-9);
        assert!(metrics.coercivity.value() > 1_000.0);
        assert!(metrics.remanence.as_tesla() > 0.3);
        assert!(metrics.loop_area > 0.0);
        assert_eq!(metrics.negative_slope_samples, 0);
        assert_eq!(result.samples(), schedule.len());
        assert!(result.updates() > 1000);
    }

    #[test]
    fn nested_minor_loops_stay_inside_major_loop() {
        let mut model = paper_model();
        let schedule =
            FieldSchedule::nested_minor_loops(10_000.0, &[7_500.0, 5_000.0, 2_500.0], 10.0)
                .unwrap();
        let result = sweep_schedule(&mut model, &schedule).unwrap();
        let metrics = loop_analysis::loop_metrics(result.curve()).unwrap();
        assert!(metrics.b_max.as_tesla() < 2.3);
        assert_eq!(metrics.negative_slope_samples, 0);

        // The minor-loop tail must stay strictly inside the major loop's
        // flux-density extremes.
        let tail_start = result.curve().len() - 200;
        let tail_max = result.curve().points()[tail_start..]
            .iter()
            .map(|p| p.b.as_tesla().abs())
            .fold(0.0, f64::max);
        assert!(tail_max < metrics.b_max.as_tesla());
    }

    #[test]
    fn trace_and_curve_have_matching_lengths() {
        let mut model = paper_model();
        let schedule = FieldSchedule::major_loop(5_000.0, 25.0, 1).unwrap();
        let result = sweep_schedule(&mut model, &schedule).unwrap();
        assert_eq!(result.trace().len(), result.curve().len());
        assert_eq!(result.trace().names(), &["h", "b", "m", "m_an"]);
        let curve = result.into_curve();
        assert!(!curve.is_empty());
    }

    #[test]
    fn sweep_samples_accepts_plain_iterators() {
        let mut model = paper_model();
        let result = sweep_samples(&mut model, (0..100).map(|i| i as f64 * 50.0)).unwrap();
        assert_eq!(result.samples(), 100);
        assert!(result.curve().last().unwrap().b.as_tesla() > 0.0);
    }

    #[test]
    fn sweep_propagates_model_errors() {
        let mut model = paper_model();
        assert!(sweep_samples(&mut model, vec![0.0, f64::NAN]).is_err());
    }

    #[test]
    fn repeated_cycles_converge_to_a_closed_loop() {
        let mut model = paper_model();
        let schedule = FieldSchedule::major_loop(10_000.0, 10.0, 3).unwrap();
        let result = sweep_schedule(&mut model, &schedule).unwrap();
        // One full cycle corresponds to 4 * peak / step samples.
        let period = (4.0 * 10_000.0 / 10.0) as usize;
        let closure = loop_analysis::loop_closure_error(result.curve(), period).unwrap();
        let b_max = result.curve().peak_flux_density().unwrap().as_tesla();
        assert!(closure < 0.02 * b_max, "closure error {closure} T");
    }
}
