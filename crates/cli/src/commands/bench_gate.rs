//! `ja bench-gate` — diff two bench reports, fail on perf regressions.
//!
//! Consumes the `kind: "bench"` reports the criterion stand-in's `--json`
//! flag writes (one merged document per run: `BENCH_baseline.json`
//! committed to the repository, `BENCH_pr.json` produced by CI's
//! bench-smoke job) and emits a one-line-per-bench markdown table suitable
//! for `$GITHUB_STEP_SUMMARY`.

use std::collections::BTreeMap;
use std::io::Write;

use ja_hysteresis::json::{JsonValue, SCHEMA_VERSION, SCHEMA_VERSION_KEY};

use crate::common::{read_input, write_output};
use crate::{opts, CliError};

/// Per-subcommand help (see `ja help bench-gate`).
pub const HELP: &str = "\
ja bench-gate — compare bench medians against a baseline, fail on regression

USAGE:
    ja bench-gate --baseline PATH --current PATH [OPTIONS]

OPTIONS:
    --baseline PATH       committed reference report (kind: \"bench\")
    --current PATH        freshly measured report (kind: \"bench\")
    --max-ratio R         fail when current/baseline exceeds R [default: 2.5]
                          (generous on purpose: smoke-mode medians on a
                          noisy 1-core CI runner jitter far more than a
                          genuine regression signal on a quiet machine)
    --min-baseline-ns NS  skip the ratio check for benches whose baseline
                          median is below NS (sub-floor timings are noise)
                          [default: 0]
    --ratio A/B<=R        additionally assert that bench A's median is at
                          most R times bench B's median *within the
                          --current report* (same machine, same run).
                          A and B are bench ids or unambiguous id
                          suffixes, e.g.
                          \"systemc-event-kernel_sweep/direct-timeless_sweep<=2.6\";
                          several assertions are comma-separated:
                          \"A/B<=R,C/D<=S\"
    --summary PATH        append the markdown table to PATH (e.g.
                          \"$GITHUB_STEP_SUMMARY\")
    --out PATH            write the table to PATH instead of stdout

Both inputs must carry the shared envelope (schema_version 1, kind
\"bench\") — a schema mismatch fails the gate, which is how drift between
the criterion stand-in and the library constant is caught.

The --ratio assertion bounds a *relative* cost (e.g. the event-kernel
backend against the direct model) instead of an absolute median, so it
stays meaningful on runners whose absolute speed varies: a uniform
slowdown cancels out of the quotient.

EXIT STATUS: 0 when no bench regressed, none disappeared and every
--ratio assertion holds; 1 otherwise.  Benches present only in --current
are reported as `new` and do not fail the gate (update the baseline to
start tracking them).";

/// One row of the gate's verdict table.
#[derive(Debug, PartialEq)]
pub struct GateRow {
    /// Bench id.
    pub id: String,
    /// Baseline median (ns), if present.
    pub baseline_ns: Option<f64>,
    /// Current median (ns), if present.
    pub current_ns: Option<f64>,
    /// current/baseline when both are present and baseline > 0.
    pub ratio: Option<f64>,
    /// Verdict: `ok`, `faster`, `below floor`, `new`, `missing` or
    /// `REGRESSION`.
    pub status: &'static str,
}

impl GateRow {
    /// Whether this row fails the gate.
    pub fn fails(&self) -> bool {
        matches!(self.status, "REGRESSION" | "missing")
    }
}

/// Computes the per-bench verdicts (sorted by bench id).
pub fn gate(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    max_ratio: f64,
    min_baseline_ns: f64,
) -> Vec<GateRow> {
    let mut ids: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    ids.sort();
    ids.dedup();
    ids.into_iter()
        .map(|id| {
            let baseline_ns = baseline.get(id).copied();
            let current_ns = current.get(id).copied();
            let (ratio, status) = match (baseline_ns, current_ns) {
                (Some(base), Some(now)) if base > 0.0 => {
                    let ratio = now / base;
                    let status = if base < min_baseline_ns {
                        "below floor"
                    } else if ratio > max_ratio {
                        "REGRESSION"
                    } else if ratio < 1.0 / max_ratio {
                        "faster"
                    } else {
                        "ok"
                    };
                    (Some(ratio), status)
                }
                // A non-positive baseline median cannot anchor a ratio.
                (Some(_), Some(_)) => (None, "below floor"),
                (Some(_), None) => (None, "missing"),
                (None, _) => (None, "new"),
            };
            GateRow {
                id: id.clone(),
                baseline_ns,
                current_ns,
                ratio,
                status,
            }
        })
        .collect()
}

/// Renders the verdicts as a markdown table plus a one-line summary.
pub fn render_markdown(rows: &[GateRow], max_ratio: f64) -> String {
    let mut text = format!("### Bench gate (fail above {max_ratio}x)\n\n");
    text.push_str("| bench | baseline (ns) | current (ns) | ratio | status |\n");
    text.push_str("|---|---:|---:|---:|---|\n");
    let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |v| format!("{v:.1}"));
    for row in rows {
        text.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            row.id,
            fmt(row.baseline_ns),
            fmt(row.current_ns),
            row.ratio
                .map_or_else(|| "-".to_owned(), |r| format!("{r:.2}")),
            row.status,
        ));
    }
    let failures = rows.iter().filter(|row| row.fails()).count();
    text.push_str(&format!(
        "\n{} benches, {failures} gate failure{}\n",
        rows.len(),
        if failures == 1 { "" } else { "s" }
    ));
    text
}

/// Outcome of one `--ratio A/B<=R` assertion, evaluated on the current
/// report.
#[derive(Debug, PartialEq)]
pub struct RatioCheck {
    /// Resolved numerator bench id.
    pub numerator: String,
    /// Resolved denominator bench id.
    pub denominator: String,
    /// Measured `numerator / denominator`.
    pub ratio: f64,
    /// The asserted upper bound.
    pub limit: f64,
}

impl RatioCheck {
    /// Whether the assertion fails.
    pub fn fails(&self) -> bool {
        self.ratio > self.limit
    }
}

/// Resolves `name` against the report's bench ids: an exact id, or a
/// unique `/`-delimited suffix (so `direct-timeless_sweep` finds
/// `fig1_bh_curve/direct-timeless_sweep`).
fn resolve_bench<'m>(ids: &'m BTreeMap<String, f64>, name: &str) -> Vec<&'m str> {
    if ids.contains_key(name) {
        return ids
            .keys()
            .filter(|id| *id == name)
            .map(String::as_str)
            .collect();
    }
    ids.keys()
        .filter(|id| id.ends_with(name) && id[..id.len() - name.len()].ends_with('/'))
        .map(String::as_str)
        .collect()
}

/// Parses and evaluates a comma-separated list of `--ratio A/B<=R`
/// assertions against the current report.
///
/// # Errors
///
/// Whatever [`evaluate_ratio`] reports for the first offending entry.
pub fn evaluate_ratios(
    specs: &str,
    current: &BTreeMap<String, f64>,
) -> Result<Vec<RatioCheck>, CliError> {
    specs
        .split(',')
        .map(str::trim)
        .filter(|spec| !spec.is_empty())
        .map(|spec| evaluate_ratio(spec, current))
        .collect()
}

/// Parses and evaluates a `--ratio A/B<=R` assertion against the current
/// report.  Bench ids contain `/` themselves, so every split point of the
/// left-hand side is tried and exactly one must resolve both operands.
///
/// # Errors
///
/// Usage errors for a malformed spec; failures when the operands resolve
/// to no bench (or ambiguously) or the denominator median is not positive.
pub fn evaluate_ratio(spec: &str, current: &BTreeMap<String, f64>) -> Result<RatioCheck, CliError> {
    let (lhs, bound) = spec
        .rsplit_once("<=")
        .ok_or_else(|| CliError::usage(format!("--ratio `{spec}`: expected the form A/B<=R")))?;
    let limit: f64 = bound
        .trim()
        .parse()
        .map_err(|_| CliError::usage(format!("--ratio `{spec}`: `{bound}` is not a number")))?;
    if limit.is_nan() || limit <= 0.0 {
        return Err(CliError::usage(format!(
            "--ratio `{spec}`: the bound must be > 0"
        )));
    }
    let mut matches: Vec<(&str, &str)> = Vec::new();
    for (i, _) in lhs.match_indices('/') {
        let (num, den) = (&lhs[..i], &lhs[i + 1..]);
        if num.is_empty() || den.is_empty() {
            continue;
        }
        let nums = resolve_bench(current, num);
        let dens = resolve_bench(current, den);
        if nums.len() == 1 && dens.len() == 1 {
            matches.push((nums[0], dens[0]));
        }
    }
    matches.dedup();
    let (numerator, denominator) = match matches.as_slice() {
        [] => {
            return Err(CliError::failure(format!(
                "--ratio `{spec}`: no split of `{lhs}` resolves both sides to benches in the current report"
            )))
        }
        [one] => *one,
        many => {
            return Err(CliError::failure(format!(
                "--ratio `{spec}`: ambiguous — candidate pairs: {}",
                many.iter()
                    .map(|(a, b)| format!("{a} / {b}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            )))
        }
    };
    let num_ns = current[numerator];
    let den_ns = current[denominator];
    if den_ns.is_nan() || den_ns <= 0.0 {
        return Err(CliError::failure(format!(
            "--ratio `{spec}`: denominator `{denominator}` median {den_ns} ns cannot anchor a ratio"
        )));
    }
    Ok(RatioCheck {
        numerator: numerator.to_owned(),
        denominator: denominator.to_owned(),
        ratio: num_ns / den_ns,
        limit,
    })
}

/// Renders a ratio assertion as a markdown line.
pub fn render_ratio(check: &RatioCheck) -> String {
    format!(
        "\nratio `{}` / `{}` = {:.2} (limit {}): {}\n",
        check.numerator,
        check.denominator,
        check.ratio,
        check.limit,
        if check.fails() {
            "**RATIO EXCEEDED**"
        } else {
            "ok"
        }
    )
}

/// Loads a `kind: "bench"` report and returns its medians map.
fn load_bench_report(path: &str) -> Result<BTreeMap<String, f64>, CliError> {
    let doc = JsonValue::parse(&read_input(path)?)
        .map_err(|err| CliError::failure(format!("{path}: {err}")))?;
    let version = doc.get(SCHEMA_VERSION_KEY).and_then(JsonValue::as_i64);
    if version != Some(SCHEMA_VERSION) {
        return Err(CliError::failure(format!(
            "{path}: schema_version {version:?} does not match the supported {SCHEMA_VERSION}"
        )));
    }
    if doc.get("kind").and_then(JsonValue::as_str) != Some("bench") {
        return Err(CliError::failure(format!(
            "{path}: not a `kind: \"bench\"` report"
        )));
    }
    let benches = doc
        .get("benches")
        .and_then(JsonValue::as_object)
        .ok_or_else(|| CliError::failure(format!("{path}: missing `benches` object")))?;
    let mut map = BTreeMap::new();
    for (id, value) in benches {
        let median = value.as_f64().ok_or_else(|| {
            CliError::failure(format!("{path}: bench `{id}` median is not a number"))
        })?;
        map.insert(id.clone(), median);
    }
    Ok(map)
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failures for unreadable/invalid reports,
/// regressions or disappeared benches.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &[],
        &[
            "baseline",
            "current",
            "max-ratio",
            "min-baseline-ns",
            "ratio",
            "summary",
            "out",
        ],
    )?;
    parsed.no_positionals()?;

    let baseline = load_bench_report(parsed.require("baseline")?)?;
    let current = load_bench_report(parsed.require("current")?)?;
    let max_ratio = parsed.f64_or("max-ratio", 2.5)?;
    if max_ratio <= 0.0 {
        return Err(CliError::usage("--max-ratio must be > 0".to_owned()));
    }
    let min_baseline_ns = parsed.f64_or("min-baseline-ns", 0.0)?;
    let ratio_checks = match parsed.value("ratio") {
        None => Vec::new(),
        Some(specs) => evaluate_ratios(specs, &current)?,
    };

    let rows = gate(&baseline, &current, max_ratio, min_baseline_ns);
    let mut markdown = render_markdown(&rows, max_ratio);
    for check in &ratio_checks {
        markdown.push_str(&render_ratio(check));
    }
    write_output(parsed.value("out"), &markdown)?;
    if let Some(path) = parsed.value("summary") {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|err| CliError::failure(format!("cannot open `{path}`: {err}")))?;
        file.write_all(markdown.as_bytes())
            .map_err(|err| CliError::failure(format!("cannot append to `{path}`: {err}")))?;
    }

    let mut failures: Vec<String> = rows
        .iter()
        .filter(|row| row.fails())
        .map(|row| format!("{} ({})", row.id, row.status))
        .collect();
    for check in ratio_checks.iter().filter(|check| check.fails()) {
        failures.push(format!(
            "{} / {} = {:.2} > {}",
            check.numerator, check.denominator, check.ratio, check.limit
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CliError::failure(format!(
            "bench gate failed: {}",
            failures.join(", ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries
            .iter()
            .map(|(id, v)| ((*id).to_owned(), *v))
            .collect()
    }

    #[test]
    fn gate_classifies_every_case() {
        let baseline = map(&[
            ("steady", 100.0),
            ("regressed", 100.0),
            ("sped_up", 100.0),
            ("tiny", 10.0),
            ("gone", 100.0),
            ("zero", 0.0),
        ]);
        let current = map(&[
            ("steady", 140.0),
            ("regressed", 251.0),
            ("sped_up", 30.0),
            ("tiny", 80.0),
            ("zero", 5.0),
            ("fresh", 42.0),
        ]);
        let rows = gate(&baseline, &current, 2.5, 50.0);
        let by_id = |id: &str| rows.iter().find(|row| row.id == id).unwrap();
        assert_eq!(by_id("steady").status, "ok");
        assert_eq!(by_id("regressed").status, "REGRESSION");
        assert!(by_id("regressed").fails());
        assert_eq!(by_id("sped_up").status, "faster");
        assert_eq!(by_id("tiny").status, "below floor", "10ns < 50ns floor");
        assert_eq!(by_id("zero").status, "below floor");
        assert_eq!(by_id("gone").status, "missing");
        assert!(by_id("gone").fails());
        assert_eq!(by_id("fresh").status, "new");
        assert!(!by_id("fresh").fails());
        // Sorted by id.
        let ids: Vec<&str> = rows.iter().map(|row| row.id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn ratio_resolves_suffixes_and_checks_the_bound() {
        let current = map(&[
            ("fig1_bh_curve/systemc-event-kernel_sweep", 600.0),
            ("fig1_bh_curve/direct-timeless_sweep", 300.0),
            (
                "fig1_bh_curve/direct-timeless_sweep_into_reused_buffer",
                290.0,
            ),
        ]);
        let check = evaluate_ratio(
            "systemc-event-kernel_sweep/direct-timeless_sweep<=2.25",
            &current,
        )
        .unwrap();
        assert_eq!(check.numerator, "fig1_bh_curve/systemc-event-kernel_sweep");
        assert_eq!(check.denominator, "fig1_bh_curve/direct-timeless_sweep");
        assert!((check.ratio - 2.0).abs() < 1e-12);
        assert!(!check.fails());

        let tight = evaluate_ratio(
            "systemc-event-kernel_sweep/direct-timeless_sweep<=1.5",
            &current,
        )
        .unwrap();
        assert!(tight.fails(), "2.0 > 1.5 must fail");

        // Full ids work too, even though they contain `/` themselves.
        let full = evaluate_ratio(
            "fig1_bh_curve/systemc-event-kernel_sweep/fig1_bh_curve/direct-timeless_sweep<=3",
            &current,
        )
        .unwrap();
        assert_eq!(full.numerator, "fig1_bh_curve/systemc-event-kernel_sweep");
        assert_eq!(full.denominator, "fig1_bh_curve/direct-timeless_sweep");
    }

    #[test]
    fn ratio_rejects_malformed_unresolvable_and_ambiguous_specs() {
        let current = map(&[
            ("g/alpha_sweep", 100.0),
            ("g/beta_sweep", 100.0),
            ("h/alpha_sweep", 100.0),
        ]);
        assert!(evaluate_ratio("no-bound-here", &current).is_err());
        assert!(evaluate_ratio("a/b<=zebra", &current).is_err());
        assert!(evaluate_ratio("a/b<=-1", &current).is_err());
        assert!(
            evaluate_ratio("missing_sweep/beta_sweep<=2", &current).is_err(),
            "unknown numerator"
        );
        assert!(
            evaluate_ratio("alpha_sweep/beta_sweep<=2", &current).is_err(),
            "alpha_sweep is an ambiguous suffix (g/ and h/)"
        );
        assert!(
            evaluate_ratio("g/alpha_sweep/g/beta_sweep<=2", &current).is_ok(),
            "full ids disambiguate"
        );
    }

    #[test]
    fn ratio_lists_evaluate_every_comma_separated_assertion() {
        let current = map(&[
            ("loss_map/scalar_route", 400.0),
            ("loss_map/soa_route", 300.0),
            ("fig1_bh_curve/direct-timeless_sweep", 100.0),
            ("fig1_bh_curve/systemc-event-kernel_sweep", 190.0),
        ]);
        let checks = evaluate_ratios(
            "soa_route/scalar_route<=1.0, systemc-event-kernel_sweep/direct-timeless_sweep<=2.6",
            &current,
        )
        .unwrap();
        assert_eq!(checks.len(), 2);
        assert_eq!(checks[0].numerator, "loss_map/soa_route");
        assert!(!checks[0].fails(), "0.75 <= 1.0");
        assert_eq!(
            checks[1].numerator,
            "fig1_bh_curve/systemc-event-kernel_sweep"
        );
        assert!(!checks[1].fails(), "1.9 <= 2.6");
        // One bad entry fails the whole list.
        assert!(evaluate_ratios("soa_route/scalar_route<=1.0,nope", &current).is_err());
    }

    #[test]
    fn ratio_markdown_names_both_benches() {
        let check = RatioCheck {
            numerator: "a".to_owned(),
            denominator: "b".to_owned(),
            ratio: 1.75,
            limit: 1.5,
        };
        let line = render_ratio(&check);
        assert!(
            line.contains("`a` / `b` = 1.75 (limit 1.5): **RATIO EXCEEDED**"),
            "{line}"
        );
    }

    #[test]
    fn markdown_has_one_line_per_bench() {
        let rows = gate(
            &map(&[("a", 100.0), ("b", 10.0)]),
            &map(&[("a", 120.0), ("b", 300.0)]),
            2.5,
            0.0,
        );
        let text = render_markdown(&rows, 2.5);
        assert!(text.contains("| a | 100.0 | 120.0 | 1.20 | ok |"), "{text}");
        assert!(
            text.contains("| b | 10.0 | 300.0 | 30.00 | REGRESSION |"),
            "{text}"
        );
        assert!(text.contains("2 benches, 1 gate failure\n"), "{text}");
    }
}
