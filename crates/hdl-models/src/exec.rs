//! Parallel scenario execution.
//!
//! [`BatchRunner`] is the engine behind [`crate::scenario::run_batch`]: it
//! distributes a scenario list over a pool of scoped worker threads
//! (`std::thread::scope`, no external dependencies), with chunked work
//! stealing over an atomic cursor and a configurable error policy.  Results
//! are tagged with their input index and re-sorted, so a
//! [`BatchReport`] is **deterministic**: the entries come back in input
//! order with bit-identical floating-point content regardless of the worker
//! count (each scenario's computation is sequential and self-contained; the
//! executor only changes *where* it runs).  The one exception is fail-fast
//! cancellation, which depends on timing — see [`ErrorPolicy::FailFast`].
//!
//! Workers keep a [`RunScratch`] alive across the scenarios they execute:
//! consecutive scenarios sharing a (backend, material, configuration)
//! triple reuse the constructed backend through
//! [`HysteresisBackend::reset`] instead of rebuilding it, and the flattened
//! sample vector of the current excitation is cached by excitation
//! identity, so the parallel win is not eaten by per-scenario construction
//! and allocator traffic.
//!
//! Direct-timeless scenarios that share a (configuration, excitation,
//! operating point) triple are additionally routed — per [`SoaRouting`],
//! default on — through the structure-of-arrays lockstep batch
//! ([`SoaBatch`]): the whole group runs as one SoA sweep, one lane per
//! scenario, and the per-lane results fan back into ordinary per-entry
//! report slots.  Lane parameters are the scenarios' **resolved**
//! (thermally derived) parameters, the same values the scalar path runs,
//! so SoA `f64` lanes stay bit-identical to the scalar model and routing
//! never changes report content, only throughput.
//!
//! The distribution machinery itself (chunked claims over an atomic
//! cursor, worker-local state, index-ordered results) is exposed as the
//! generic [`parallel_map`], which also powers the multi-start fitting
//! batches of [`crate::fit`] — any deterministic per-job workload with
//! reusable worker scratch can ride the same pool.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use ja_hysteresis::backend::HysteresisBackend;
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::error::JaError;
use ja_hysteresis::soa::{SoaBatch, SoaPrecision};
use magnetics::bh::BhCurve;
use magnetics::loop_analysis;
use magnetics::material::JaParameters;

use crate::scenario::{
    BackendKind, BatchEntry, BatchReport, Excitation, Scenario, ScenarioOutcome,
};

/// How a batch reacts to a failing scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Run every scenario and record failures alongside successes (the
    /// historical `run_batch` behaviour).  Reports are fully deterministic.
    #[default]
    CollectAll,
    /// Stop scheduling new work once any scenario fails; scenarios that
    /// were not yet executed are recorded as [`JaError::Cancelled`].  Which
    /// scenarios get cancelled depends on worker timing, so fail-fast
    /// reports are only deterministic for a single worker.
    FailFast,
}

/// How the runner maps [`BackendKind::DirectTimeless`] scenarios onto the
/// structure-of-arrays lockstep batch ([`SoaBatch`]).
///
/// Scenarios are **groupable** when they share a (configuration,
/// excitation, operating point) triple, use the direct-timeless backend
/// and have a prescribed (non-circuit) stimulus; a group runs as one SoA
/// sweep with one lane per scenario.  In `f64` column mode every lane is bit-identical to the
/// scalar run of the same scenario, so the routing decision never changes
/// report content — only the timing fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SoaRouting {
    /// Route every groupable set of two or more scenarios through the
    /// lockstep batch; everything else runs scalar.  The default.
    #[default]
    Auto,
    /// Route every groupable scenario through the lockstep batch, even
    /// alone in its group (useful for exercising the SoA path).
    ForceSoa,
    /// Run every scenario through the scalar path.
    ForceScalar,
}

/// Builder-style executor for scenario batches.
///
/// ```
/// use hdl_models::exec::BatchRunner;
/// use hdl_models::scenario::{BackendKind, Excitation, ScenarioGrid};
///
/// let grid = ScenarioGrid::new()
///     .backends(BackendKind::TIMELESS)
///     .excitation("major", Excitation::major_loop(10_000.0, 100.0, 1).unwrap());
/// let report = BatchRunner::new()
///     .workers(2)
///     .run(grid.scenarios().unwrap());
/// assert_eq!(report.entries.len(), 3);
/// assert_eq!(report.workers, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchRunner {
    workers: Option<NonZeroUsize>,
    chunk_size: Option<NonZeroUsize>,
    policy: ErrorPolicy,
    routing: SoaRouting,
}

impl BatchRunner {
    /// An executor with the default knobs: one worker per available core,
    /// chunk size 1 (best load balance for uneven scenario runtimes),
    /// collect-all error policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` restores the default
    /// (`std::thread::available_parallelism`).  The effective count never
    /// exceeds the number of scenarios.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = NonZeroUsize::new(workers);
        self
    }

    /// Sets how many scenarios a worker claims from the shared cursor at a
    /// time; `0` restores the default of 1.  Larger chunks reduce cursor
    /// contention but can leave workers idle at the tail of uneven grids.
    #[must_use]
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = NonZeroUsize::new(chunk_size);
        self
    }

    /// Sets the error policy.
    #[must_use]
    pub fn error_policy(mut self, policy: ErrorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand for [`ErrorPolicy::FailFast`].
    #[must_use]
    pub fn fail_fast(self) -> Self {
        self.error_policy(ErrorPolicy::FailFast)
    }

    /// Sets how direct-timeless scenario groups are executed (see
    /// [`SoaRouting`]; the default is [`SoaRouting::Auto`]).
    #[must_use]
    pub fn soa_routing(mut self, routing: SoaRouting) -> Self {
        self.routing = routing;
        self
    }

    /// The worker count the runner would use for `jobs` scenarios.
    pub fn resolved_workers(&self, jobs: usize) -> usize {
        resolved_workers(self.workers.map_or(0, NonZeroUsize::get), jobs)
    }

    /// Runs every scenario and collects a [`BatchReport`] with one entry
    /// per scenario, in input order.
    ///
    /// Under the default [`SoaRouting::Auto`], scenarios sharing a
    /// (configuration, excitation) pair on the direct-timeless backend run
    /// as one structure-of-arrays lockstep sweep instead of one scalar
    /// sweep each — with bit-identical per-entry results, since the SoA
    /// `f64` lanes reproduce the scalar operation sequence exactly.
    pub fn run(&self, scenarios: impl IntoIterator<Item = Scenario>) -> BatchReport {
        let scenarios: Vec<Scenario> = scenarios.into_iter().collect();
        let workers = self.resolved_workers(scenarios.len());
        let chunk = self.chunk_size.map_or(1, NonZeroUsize::get);
        let started = Instant::now();

        let jobs = route_jobs(&scenarios, self.routing);
        let abort = AtomicBool::new(false);
        let job_results = parallel_map(&jobs, workers, chunk, RunScratch::new, |job, scratch| {
            let cancelled = self.policy == ErrorPolicy::FailFast && abort.load(Ordering::Relaxed);
            match job {
                Job::Scalar(index) => {
                    let result = if cancelled {
                        (Err(JaError::Cancelled), Duration::ZERO)
                    } else {
                        let t0 = Instant::now();
                        let outcome = scenarios[*index].run_with_scratch(scratch);
                        if outcome.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        (outcome, t0.elapsed())
                    };
                    vec![(*index, result)]
                }
                Job::Lockstep(members) => {
                    if cancelled {
                        members
                            .iter()
                            .map(|&index| (index, (Err(JaError::Cancelled), Duration::ZERO)))
                            .collect()
                    } else {
                        let results = run_lockstep_group(&scenarios, members, scratch);
                        if results.iter().any(|(outcome, _)| outcome.is_err()) {
                            abort.store(true, Ordering::Relaxed);
                        }
                        members.iter().copied().zip(results).collect()
                    }
                }
            }
        });

        let mut slots: Vec<Option<(Result<ScenarioOutcome, JaError>, Duration)>> =
            (0..scenarios.len()).map(|_| None).collect();
        for (index, result) in job_results.into_iter().flatten() {
            slots[index] = Some(result);
        }
        let entries = scenarios
            .into_iter()
            .zip(slots)
            .map(|(scenario, slot)| {
                let (outcome, wall_clock) =
                    slot.expect("every scenario produced exactly one result");
                BatchEntry {
                    scenario,
                    outcome,
                    wall_clock,
                }
            })
            .collect();
        BatchReport {
            entries,
            workers,
            elapsed: started.elapsed(),
        }
    }

    /// Runs `scenarios[skip..]` and hands each outcome to `emit` **in input
    /// index order**, as soon as it and all its predecessors have finished —
    /// the executor half of the streaming report path.
    ///
    /// Unlike [`run`](Self::run), no [`BatchReport`] is accumulated: an
    /// outcome (and the `BhCurve` inside it) is dropped right after `emit`
    /// returns, so peak memory is bounded by worker-completion skew (the
    /// small reorder buffer holding finished-but-not-yet-contiguous
    /// entries), not by grid size.  Workers deliver results over a channel
    /// to an in-order collector on the calling thread; because each
    /// scenario's computation is sequential and self-contained, the emitted
    /// sequence is **bit-identical for any worker count** — the property the
    /// NDJSON writer's byte-determinism rests on.
    ///
    /// `skip` supports checkpoint/resume: entries `0..skip` are neither run
    /// nor emitted.  Skipping cannot change the remaining outcomes — every
    /// scenario is independent, and SoA lockstep regrouping is
    /// result-neutral by the lane/scalar bit-equality invariant.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by `emit`; remaining outcomes are
    /// still computed (workers drain) but no longer emitted.
    pub fn run_streamed<E>(
        &self,
        scenarios: &[Scenario],
        skip: usize,
        mut emit: impl FnMut(usize, &Result<ScenarioOutcome, JaError>) -> Result<(), E>,
    ) -> Result<StreamSummary, E> {
        let skip = skip.min(scenarios.len());
        let pending = &scenarios[skip..];
        let workers = self.resolved_workers(pending.len());
        let chunk = self.chunk_size.map_or(1, NonZeroUsize::get);
        let jobs = route_jobs(pending, self.routing);
        let abort = AtomicBool::new(false);

        let run_job = |job: &Job,
                       scratch: &mut RunScratch|
         -> Vec<(usize, Result<ScenarioOutcome, JaError>)> {
            let cancelled = self.policy == ErrorPolicy::FailFast && abort.load(Ordering::Relaxed);
            match job {
                Job::Scalar(index) => {
                    let outcome = if cancelled {
                        Err(JaError::Cancelled)
                    } else {
                        let outcome = pending[*index].run_with_scratch(scratch);
                        if outcome.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        outcome
                    };
                    vec![(*index, outcome)]
                }
                Job::Lockstep(members) => {
                    if cancelled {
                        members
                            .iter()
                            .map(|&index| (index, Err(JaError::Cancelled)))
                            .collect()
                    } else {
                        let results = run_lockstep_group(pending, members, scratch);
                        if results.iter().any(|(outcome, _)| outcome.is_err()) {
                            abort.store(true, Ordering::Relaxed);
                        }
                        members
                            .iter()
                            .copied()
                            .zip(results.into_iter().map(|(outcome, _)| outcome))
                            .collect()
                    }
                }
            }
        };

        // The in-order collector: finished entries park in `buffered` until
        // every lower index has been emitted, then flush contiguously.
        let mut buffered: BTreeMap<usize, Result<ScenarioOutcome, JaError>> = BTreeMap::new();
        let mut next = 0_usize;
        let mut succeeded = 0_usize;
        let mut failed = 0_usize;
        let mut emit_error: Option<E> = None;
        let mut collect =
            |index: usize, outcome: Result<ScenarioOutcome, JaError>, emit: EmitSink<'_, E>| {
                buffered.insert(index, outcome);
                while let Some(outcome) = buffered.remove(&next) {
                    if outcome.is_ok() {
                        succeeded += 1;
                    } else {
                        failed += 1;
                    }
                    if emit_error.is_none() {
                        if let Err(error) = emit(skip + next, &outcome) {
                            emit_error = Some(error);
                        }
                    }
                    next += 1;
                }
            };

        if workers <= 1 {
            let mut scratch = RunScratch::new();
            for job in &jobs {
                for (index, outcome) in run_job(job, &mut scratch) {
                    collect(index, outcome, &mut emit);
                }
            }
        } else {
            let (tx, rx) = mpsc::channel::<(usize, Result<ScenarioOutcome, JaError>)>();
            let cursor = AtomicUsize::new(0);
            thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let jobs = &jobs;
                    let cursor = &cursor;
                    let run_job = &run_job;
                    scope.spawn(move || {
                        let mut scratch = RunScratch::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= jobs.len() {
                                break;
                            }
                            let end = start.saturating_add(chunk).min(jobs.len());
                            for job in &jobs[start..end] {
                                for item in run_job(job, &mut scratch) {
                                    if tx.send(item).is_err() {
                                        return;
                                    }
                                }
                            }
                        }
                    });
                }
                drop(tx);
                for (index, outcome) in rx {
                    collect(index, outcome, &mut emit);
                }
            });
        }

        if let Some(error) = emit_error {
            return Err(error);
        }
        debug_assert_eq!(next, pending.len());
        Ok(StreamSummary {
            scenarios: scenarios.len(),
            emitted: pending.len(),
            succeeded,
            failed,
            workers,
        })
    }
}

/// The sink the streaming collector flushes contiguous outcomes into —
/// named so the collector closure's signature stays readable.
type EmitSink<'a, E> = &'a mut dyn FnMut(usize, &Result<ScenarioOutcome, JaError>) -> Result<(), E>;

/// What a [`BatchRunner::run_streamed`] call did, counted over the entries
/// it emitted (a resumed run reports only its own tail; the caller folds in
/// the checkpointed counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total grid size, including entries skipped by resume.
    pub scenarios: usize,
    /// Entries emitted by this run (`scenarios - skip`).
    pub emitted: usize,
    /// Emitted entries whose outcome was `Ok`.
    pub succeeded: usize,
    /// Emitted entries whose outcome was an error or cancellation.
    pub failed: usize,
    /// Resolved worker count.
    pub workers: usize,
}

/// One unit of parallel work: a single scenario on the scalar path, or a
/// group of scenario indices sharing one SoA lockstep sweep.
#[derive(Debug)]
enum Job {
    Scalar(usize),
    Lockstep(Vec<usize>),
}

/// Partitions the scenario list into jobs according to the routing policy.
/// Jobs are ordered by their first scenario index, so a single-worker
/// fail-fast run still cancels in input order.
fn route_jobs(scenarios: &[Scenario], routing: SoaRouting) -> Vec<Job> {
    if routing == SoaRouting::ForceScalar {
        return (0..scenarios.len()).map(Job::Scalar).collect();
    }
    let mut scalar: Vec<usize> = Vec::new();
    // (representative index, members): few distinct (config, excitation)
    // pairs per grid, so a linear scan beats hashing the float-laden keys.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (index, scenario) in scenarios.iter().enumerate() {
        let groupable = scenario.backend == BackendKind::DirectTimeless
            && !matches!(scenario.excitation, Excitation::Circuit(_));
        if !groupable {
            scalar.push(index);
            continue;
        }
        match groups.iter_mut().find(|(representative, _)| {
            let other = &scenarios[*representative];
            other.config == scenario.config
                && other.excitation == scenario.excitation
                && other.operating_point == scenario.operating_point
        }) {
            Some((_, members)) => members.push(index),
            None => groups.push((index, vec![index])),
        }
    }
    let mut jobs: Vec<Job> = scalar.into_iter().map(Job::Scalar).collect();
    for (_, members) in groups {
        if members.len() >= 2 || routing == SoaRouting::ForceSoa {
            jobs.push(Job::Lockstep(members));
        } else {
            jobs.extend(members.into_iter().map(Job::Scalar));
        }
    }
    jobs.sort_by_key(|job| match job {
        Job::Scalar(index) => *index,
        Job::Lockstep(members) => members[0],
    });
    jobs
}

/// Runs one groupable scenario set as a single SoA lockstep sweep, one lane
/// per scenario, and fans the per-lane results back out in member order.
///
/// Lane outcomes are bit-identical to the scalar path (the batch runs `f64`
/// columns); only the timing fields differ — each member is attributed an
/// equal share of the group's wall clock, since the lanes genuinely ran
/// together.  A group whose shared configuration fails validation falls
/// back to the scalar path, which reports the same per-scenario error the
/// group would have masked.
fn run_lockstep_group(
    scenarios: &[Scenario],
    members: &[usize],
    scratch: &mut RunScratch,
) -> Vec<(Result<ScenarioOutcome, JaError>, Duration)> {
    let first = &scenarios[members[0]];
    let reusable = scratch
        .soa
        .as_ref()
        .is_some_and(|batch| *batch.config() == first.config);
    if !reusable {
        match SoaBatch::new(first.config, SoaPrecision::F64) {
            Ok(batch) => scratch.soa = Some(batch),
            Err(_) => {
                // Invalid shared configuration: every member fails the same
                // way; the scalar path produces the exact error.
                return members
                    .iter()
                    .map(|&index| {
                        let t0 = Instant::now();
                        let outcome = scenarios[index].run_with_scratch(scratch);
                        (outcome, t0.elapsed())
                    })
                    .collect();
            }
        }
    }

    // Thermal derivation happens here through the same `resolved_params`
    // the scalar path runs — the lanes and the scalar model must consume
    // bit-identical parameters.  A member whose operating point is out of
    // range sends the whole group down the scalar path, which reports the
    // exact per-scenario error (and still succeeds the valid members).
    scratch.lane_params.clear();
    for &index in members {
        match scenarios[index].resolved_params() {
            Ok(params) => scratch.lane_params.push(params),
            Err(_) => {
                return members
                    .iter()
                    .map(|&index| {
                        let t0 = Instant::now();
                        let outcome = scenarios[index].run_with_scratch(scratch);
                        (outcome, t0.elapsed())
                    })
                    .collect();
            }
        }
    }

    let t0 = Instant::now();
    let RunScratch {
        samples,
        soa,
        lane_params,
        lane_curves,
        ..
    } = scratch;
    let hit = samples
        .as_ref()
        .is_some_and(|(key, _)| key == &first.excitation);
    if !hit {
        *samples = Some((first.excitation.clone(), first.excitation.to_samples()));
    }
    let samples = &samples.as_ref().expect("cached above").1;
    let batch = soa.as_mut().expect("constructed above");

    batch.assign(lane_params);
    lane_curves.resize_with(members.len(), BhCurve::new);
    lane_curves.truncate(members.len());
    batch.run_samples_into_curves(samples, &mut lane_curves[..members.len()]);
    let share = t0.elapsed() / members.len() as u32;

    members
        .iter()
        .enumerate()
        .map(|(lane, &index)| match batch.lane_error(lane) {
            Some(err) => (Err(err.clone()), share),
            None => {
                let curve = std::mem::take(&mut lane_curves[lane]);
                let metrics = loop_analysis::loop_metrics(&curve).ok();
                let loss = scenarios[index].loss_breakdown(&curve);
                let outcome = ScenarioOutcome {
                    name: scenarios[index].name.clone(),
                    backend: scenarios[index].backend,
                    curve,
                    metrics,
                    loss,
                    operating_point: scenarios[index].operating_point,
                    stats: batch.lane_statistics(lane),
                    // Lockstep groups run on the direct backend only, which
                    // has no simulation kernel.
                    kernel: None,
                    transient: None,
                    runtime: share,
                    lockstep_lanes: Some(members.len()),
                };
                (Ok(outcome), share)
            }
        })
        .collect()
}

/// Resolves a configured worker count for `jobs` units of work: `0` means
/// one worker per available core, and the result is clamped to the job
/// count with a floor of 1.  The single worker-resolution policy shared by
/// [`BatchRunner`] and the fitting batches of [`crate::fit`].
pub fn resolved_workers(configured: usize, jobs: usize) -> usize {
    let configured = if configured == 0 {
        thread::available_parallelism().map_or(1, NonZeroUsize::get)
    } else {
        configured
    };
    configured.min(jobs).max(1)
}

/// Runs `run` over every job on a pool of `workers` scoped threads and
/// returns the results **in job order** — the generic core of
/// [`BatchRunner`], also used by the multi-start fitting batches of
/// [`crate::fit`].
///
/// Each worker claims `chunk` jobs at a time from a shared atomic cursor
/// and keeps one instance of worker-local state (built by `make_state`)
/// alive across all the jobs it executes — the scratch-reuse pattern that
/// keeps per-job construction and allocator traffic off the hot path.
/// Results are tagged with their job index and re-sorted, so as long as
/// `run` is a pure function of the job (plus state that `run` fully resets
/// or overwrites per job), the output is **deterministic**: identical for
/// any worker count, including the inline `workers <= 1` path that spawns
/// no threads at all.
///
/// Cross-job coordination (e.g. fail-fast abort) lives in the closure:
/// capture an [`AtomicBool`] and consult it per job, as
/// [`BatchRunner::run`] does.
pub fn parallel_map<T, S, R, FS, F>(
    jobs: &[T],
    workers: usize,
    chunk: usize,
    make_state: FS,
    run: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> R + Sync,
{
    let chunk = chunk.max(1);
    if workers <= 1 {
        let mut state = make_state();
        return jobs.iter().map(|job| run(job, &mut state)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = make_state();
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs.len() {
                            break;
                        }
                        let end = start.saturating_add(chunk).min(jobs.len());
                        for (index, job) in jobs.iter().enumerate().take(end).skip(start) {
                            local.push((index, run(job, &mut state)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("parallel_map worker panicked"))
            .collect()
    });

    let mut results: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    for (index, result) in per_worker.into_iter().flatten() {
        results[index] = Some(result);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every job index produced exactly one result"))
        .collect()
}

/// Worker-local reusable state for running scenarios.
///
/// Holds the most recently constructed backend; when the next scenario uses
/// the same (backend kind, material, configuration) triple, the backend is
/// [`reset`](HysteresisBackend::reset) and reused instead of rebuilt.
/// Reset returns a backend to the demagnetised state with cleared
/// statistics, so a reused run is bit-identical to a fresh one (asserted by
/// the executor's tests).
///
/// The scratch also caches the flattened sample vector of the most recent
/// prescribed excitation (grids repeat one excitation across many
/// scenarios, so re-flattening per run was pure waste), the worker's SoA
/// lockstep batch and its lane parameter/curve buffers.
#[derive(Default)]
pub struct RunScratch {
    cached: Option<CachedBackend>,
    samples: Option<(Excitation, Vec<f64>)>,
    soa: Option<SoaBatch>,
    lane_params: Vec<JaParameters>,
    lane_curves: Vec<BhCurve>,
}

struct CachedBackend {
    kind: BackendKind,
    params: JaParameters,
    config: JaConfig,
    backend: Box<dyn HysteresisBackend>,
}

/// The backend-cache lookup of [`RunScratch::backend_for`], free-standing so
/// callers can keep borrowing the scratch's other fields alongside the
/// returned backend.
fn cached_backend_for<'s>(
    cached: &'s mut Option<CachedBackend>,
    scenario: &Scenario,
) -> Result<&'s mut dyn HysteresisBackend, JaError> {
    // The cache is keyed on the *resolved* (thermally derived) parameters:
    // two scenarios at different operating temperatures run different
    // materials even when their reference parameter sets match.
    let params = scenario.resolved_params()?;
    let reusable = cached.as_ref().is_some_and(|cached| {
        cached.kind == scenario.backend
            && cached.params == params
            && cached.config == scenario.config
    });
    let cached = if reusable {
        let cached = cached.as_mut().expect("checked above");
        cached.backend.reset()?;
        cached
    } else {
        let backend = scenario.backend.build(params, scenario.config)?;
        cached.insert(CachedBackend {
            kind: scenario.backend,
            params,
            config: scenario.config,
            backend,
        })
    };
    Ok(cached.backend.as_mut())
}

impl RunScratch {
    /// An empty scratch (no cached backend).
    pub fn new() -> Self {
        Self::default()
    }

    /// A demagnetised backend for the scenario: the cached one when the
    /// scenario matches it, a freshly built one otherwise.
    ///
    /// # Errors
    ///
    /// Propagates backend construction or reset failures.
    pub fn backend_for(
        &mut self,
        scenario: &Scenario,
    ) -> Result<&mut dyn HysteresisBackend, JaError> {
        cached_backend_for(&mut self.cached, scenario)
    }

    /// Like [`RunScratch::backend_for`], plus the scenario's flattened
    /// sample vector from the excitation cache (recomputed only when the
    /// excitation changed; empty for circuit-driven excitations, whose
    /// field sequence is material-dependent and solver-determined).
    ///
    /// # Errors
    ///
    /// Propagates backend construction or reset failures.
    pub fn backend_and_samples(
        &mut self,
        scenario: &Scenario,
    ) -> Result<(&mut dyn HysteresisBackend, &[f64]), JaError> {
        if matches!(scenario.excitation, Excitation::Circuit(_)) {
            let backend = cached_backend_for(&mut self.cached, scenario)?;
            return Ok((backend, &[]));
        }
        let hit = self
            .samples
            .as_ref()
            .is_some_and(|(key, _)| key == &scenario.excitation);
        if !hit {
            self.samples = Some((
                scenario.excitation.clone(),
                scenario.excitation.to_samples(),
            ));
        }
        let backend = cached_backend_for(&mut self.cached, scenario)?;
        Ok((backend, &self.samples.as_ref().expect("cached above").1))
    }
}

impl std::fmt::Debug for RunScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunScratch")
            .field("cached", &self.cached.as_ref().map(|c| c.kind))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Excitation, ScenarioGrid};

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .backends(BackendKind::ALL)
            .config("dh10", JaConfig::default())
            .config("dh25", JaConfig::default().with_dh_max(25.0))
            .excitation(
                "major",
                Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
            )
    }

    fn assert_outcomes_bitwise_equal(a: &BatchReport, b: &BatchReport) {
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.scenario.name, y.scenario.name);
            match (&x.outcome, &y.outcome) {
                (Ok(ox), Ok(oy)) => {
                    assert_eq!(ox.stats, oy.stats, "{}", x.scenario.name);
                    assert_eq!(ox.curve.len(), oy.curve.len(), "{}", x.scenario.name);
                    for (p, q) in ox.curve.points().iter().zip(oy.curve.points()) {
                        assert_eq!(p.h.value().to_bits(), q.h.value().to_bits());
                        assert_eq!(p.b.as_tesla().to_bits(), q.b.as_tesla().to_bits());
                        assert_eq!(p.m.value().to_bits(), q.m.value().to_bits());
                    }
                }
                (Err(ex), Err(ey)) => assert_eq!(ex, ey, "{}", x.scenario.name),
                (ox, oy) => panic!(
                    "{}: outcome kinds differ: {ox:?} vs {oy:?}",
                    x.scenario.name
                ),
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let scenarios = small_grid().scenarios().expect("grid");
        let serial = BatchRunner::new().workers(1).run(scenarios.clone());
        let parallel = BatchRunner::new().workers(4).run(scenarios);
        assert_eq!(serial.workers, 1);
        assert_eq!(parallel.workers, 4);
        assert_outcomes_bitwise_equal(&serial, &parallel);
    }

    #[test]
    fn chunked_distribution_covers_every_scenario() {
        let scenarios = small_grid().scenarios().expect("grid");
        let expected = scenarios.len();
        let report = BatchRunner::new().workers(3).chunk_size(2).run(scenarios);
        assert_eq!(report.entries.len(), expected);
        assert_eq!(report.successes().count(), expected);
        assert!(report.elapsed > Duration::ZERO);
        assert!(report.serial_runtime() >= report.total_runtime());
        assert!(report.speedup() > 0.0);
    }

    #[test]
    fn resolved_workers_clamps_to_jobs_and_floor() {
        let runner = BatchRunner::new().workers(8);
        assert_eq!(runner.resolved_workers(3), 3);
        assert_eq!(runner.resolved_workers(100), 8);
        assert_eq!(runner.resolved_workers(0), 1);
        // workers(0) restores the auto default, which is at least 1.
        assert!(BatchRunner::new().workers(0).resolved_workers(100) >= 1);
    }

    #[test]
    fn fail_fast_cancels_scenarios_after_a_failure() {
        let bad = Scenario::new(
            "bad",
            JaParameters::date2006(),
            JaConfig::default().with_dh_max(-1.0),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        );
        let good = Scenario::fig1(BackendKind::DirectTimeless, 500.0).expect("scenario");
        let report = BatchRunner::new()
            .workers(1)
            .fail_fast()
            .run([bad, good.clone(), good]);
        assert_eq!(report.entries.len(), 3);
        assert!(report.entries[0].outcome.is_err());
        for entry in &report.entries[1..] {
            assert_eq!(entry.outcome.as_ref().err(), Some(&JaError::Cancelled));
        }
        // Collect-all keeps running after the failure.
        let report = BatchRunner::new().workers(1).run([
            Scenario::new(
                "bad",
                JaParameters::date2006(),
                JaConfig::default().with_dh_max(-1.0),
                BackendKind::DirectTimeless,
                Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
            ),
            Scenario::fig1(BackendKind::DirectTimeless, 500.0).expect("scenario"),
        ]);
        assert_eq!(report.failures().count(), 1);
        assert_eq!(report.successes().count(), 1);
    }

    #[test]
    fn fail_fast_multi_worker_still_reports_every_entry() {
        let bad = Scenario::new(
            "bad",
            JaParameters::date2006(),
            JaConfig::default().with_dh_max(-1.0),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        );
        let mut scenarios = small_grid().scenarios().expect("grid");
        scenarios.insert(0, bad);
        let expected = scenarios.len();
        let report = BatchRunner::new().workers(4).fail_fast().run(scenarios);
        assert_eq!(report.entries.len(), expected);
        assert!(report.failures().count() >= 1);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let scenario = Scenario::fig1(BackendKind::DirectTimeless, 250.0).expect("scenario");
        let mut scratch = RunScratch::new();
        let first = scenario.run_with_scratch(&mut scratch).expect("run");
        // Second run hits the cached backend (reset path).
        let second = scenario.run_with_scratch(&mut scratch).expect("run");
        assert_eq!(first.stats, second.stats);
        assert_eq!(first.curve, second.curve);
        let fresh = scenario.run().expect("run");
        assert_eq!(first.curve, fresh.curve);
        assert!(format!("{scratch:?}").contains("DirectTimeless"));
    }

    #[test]
    fn scratch_rebuilds_when_the_scenario_changes() {
        let mut scratch = RunScratch::new();
        for kind in BackendKind::ALL {
            let scenario = Scenario::fig1(kind, 500.0).expect("scenario");
            let outcome = scenario.run_with_scratch(&mut scratch).expect("run");
            assert_eq!(outcome.backend, kind);
            assert!(outcome.stats.samples > 0);
        }
    }

    #[test]
    fn parallel_map_orders_results_and_keeps_worker_state() {
        let jobs: Vec<usize> = (0..100).collect();
        let double = |job: &usize, seen: &mut usize| {
            *seen += 1;
            (*job * 2, *seen)
        };
        let serial = parallel_map(&jobs, 1, 1, || 0usize, double);
        let parallel = parallel_map(&jobs, 4, 3, || 0usize, double);
        // Job-order results regardless of worker count or chunking...
        let values = |r: &[(usize, usize)]| r.iter().map(|(v, _)| *v).collect::<Vec<_>>();
        assert_eq!(values(&serial), values(&parallel));
        assert_eq!(serial[7].0, 14);
        // ...with worker-local state alive across a worker's jobs: the lone
        // serial worker saw all 100, every parallel worker at most 100.
        assert_eq!(serial.last().unwrap().1, 100);
        assert!(parallel.iter().all(|(_, seen)| (1..=100).contains(seen)));
        // Degenerate inputs.
        assert!(parallel_map(&[] as &[usize], 4, 1, || (), |_, ()| ()).is_empty());
        assert_eq!(parallel_map(&jobs, 8, 0, || (), |job, ()| *job).len(), 100);
    }

    fn multi_material_grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .material("date2006", JaParameters::date2006())
            .material("ja1984", JaParameters::jiles_atherton_1984())
            .material("hard-steel", JaParameters::hard_steel())
            .backend(BackendKind::DirectTimeless)
            .config("dh10", JaConfig::default())
            .excitation(
                "major",
                Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
            )
    }

    #[test]
    fn soa_routing_is_bit_identical_to_scalar() {
        let scenarios = multi_material_grid().scenarios().expect("grid");
        let scalar = BatchRunner::new()
            .workers(1)
            .soa_routing(SoaRouting::ForceScalar)
            .run(scenarios.clone());
        let auto = BatchRunner::new().workers(1).run(scenarios.clone());
        let forced = BatchRunner::new()
            .workers(2)
            .soa_routing(SoaRouting::ForceSoa)
            .run(scenarios);
        assert_outcomes_bitwise_equal(&scalar, &auto);
        assert_outcomes_bitwise_equal(&scalar, &forced);
        // Auto groups the three same-shaped scenarios into one lockstep
        // sweep; the forced-scalar run never does.
        for entry in &auto.entries {
            assert_eq!(entry.outcome.as_ref().expect("ok").lockstep_lanes, Some(3));
        }
        for entry in &scalar.entries {
            assert_eq!(entry.outcome.as_ref().expect("ok").lockstep_lanes, None);
        }
    }

    #[test]
    fn thermal_operating_points_route_soa_and_stay_bit_identical() {
        use crate::scenario::OperatingPoint;
        // Two temperatures over three materials: each operating point is
        // its own lockstep group (the routing key includes the operating
        // point), each lane runs the thermally derived parameters, and
        // the results stay bit-identical to the scalar path.
        let grid = multi_material_grid()
            .operating_point("t-40", OperatingPoint::at_temperature(-40.0))
            .operating_point("t125", OperatingPoint::at_temperature(125.0));
        let scenarios = grid.scenarios().expect("grid");
        assert_eq!(scenarios.len(), 6);
        let scalar = BatchRunner::new()
            .workers(1)
            .soa_routing(SoaRouting::ForceScalar)
            .run(scenarios.clone());
        let auto = BatchRunner::new().workers(2).run(scenarios);
        assert_outcomes_bitwise_equal(&scalar, &auto);
        for entry in &auto.entries {
            let outcome = entry.outcome.as_ref().expect("ok");
            assert_eq!(
                outcome.lockstep_lanes,
                Some(3),
                "one group per operating point: {}",
                entry.scenario.name
            );
        }
        // The derived parameters genuinely differ across the temperature
        // axis: cold and hot runs of the same material disagree.
        let cold = &auto.entries[0].outcome.as_ref().expect("ok").curve;
        let hot = &auto.entries[1].outcome.as_ref().expect("ok").curve;
        assert_ne!(cold, hot, "temperature must change the trace");
    }

    #[test]
    fn auto_routing_keeps_singleton_groups_scalar() {
        // Each (config, excitation) cell of the small grid has exactly one
        // DirectTimeless member — nothing to batch under Auto, but
        // ForceSoa runs even singleton groups in lockstep.
        let scenarios = small_grid().scenarios().expect("grid");
        let auto = BatchRunner::new().workers(1).run(scenarios.clone());
        for entry in &auto.entries {
            assert_eq!(entry.outcome.as_ref().expect("ok").lockstep_lanes, None);
        }
        let forced = BatchRunner::new()
            .workers(1)
            .soa_routing(SoaRouting::ForceSoa)
            .run(scenarios);
        assert_outcomes_bitwise_equal(&auto, &forced);
        for entry in &forced.entries {
            let outcome = entry.outcome.as_ref().expect("ok");
            let expected = match outcome.backend {
                BackendKind::DirectTimeless => Some(1),
                _ => None,
            };
            assert_eq!(outcome.lockstep_lanes, expected, "{}", entry.scenario.name);
        }
    }

    #[test]
    fn lockstep_fan_back_preserves_input_order() {
        // Mixed grid: every backend over three materials.  Only the
        // DirectTimeless scenarios group into lockstep sweeps; the report
        // must still come back in exact input order.
        let scenarios = multi_material_grid()
            .backends(BackendKind::ALL)
            .scenarios()
            .expect("grid");
        let names: Vec<String> = scenarios.iter().map(|s| s.name.clone()).collect();
        let report = BatchRunner::new().workers(3).run(scenarios);
        let reported: Vec<String> = report
            .entries
            .iter()
            .map(|e| e.scenario.name.clone())
            .collect();
        assert_eq!(names, reported);
        assert_eq!(report.successes().count(), names.len());
    }

    #[test]
    fn empty_batch_produces_an_empty_report() {
        let report = BatchRunner::new().run(std::iter::empty::<Scenario>());
        assert!(report.entries.is_empty());
        assert_eq!(report.workers, 1);
        assert_eq!(report.serial_runtime(), Duration::ZERO);
        assert_eq!(report.speedup(), 0.0);
    }

    /// A streamed run's emissions: `(index, outcome)` pairs in emit order.
    type Emitted = Vec<(usize, Result<ScenarioOutcome, JaError>)>;

    /// Collects a streamed run into `(index, outcome)` pairs.
    fn streamed(
        runner: &BatchRunner,
        scenarios: &[Scenario],
        skip: usize,
    ) -> (Emitted, StreamSummary) {
        let mut collected = Vec::new();
        let summary = runner
            .run_streamed(scenarios, skip, |index, outcome| {
                collected.push((index, outcome.clone()));
                Ok::<(), std::convert::Infallible>(())
            })
            .expect("infallible emit");
        (collected, summary)
    }

    #[test]
    fn streamed_run_emits_in_index_order_and_matches_run() {
        let scenarios = multi_material_grid()
            .backends(BackendKind::ALL)
            .scenarios()
            .expect("grid");
        let stored = BatchRunner::new().workers(1).run(scenarios.clone());
        for workers in [1, 2, 8] {
            let (collected, summary) =
                streamed(&BatchRunner::new().workers(workers), &scenarios, 0);
            assert_eq!(summary.scenarios, scenarios.len());
            assert_eq!(summary.emitted, scenarios.len());
            assert_eq!(summary.succeeded, scenarios.len());
            assert_eq!(summary.failed, 0);
            let indices: Vec<usize> = collected.iter().map(|(i, _)| *i).collect();
            assert_eq!(indices, (0..scenarios.len()).collect::<Vec<_>>());
            for ((_, outcome), entry) in collected.iter().zip(&stored.entries) {
                let streamed = outcome.as_ref().expect("ok");
                let stored = entry.outcome.as_ref().expect("ok");
                assert_eq!(streamed.name, stored.name);
                assert_eq!(streamed.stats, stored.stats);
                assert_eq!(streamed.curve, stored.curve);
            }
        }
    }

    #[test]
    fn streamed_run_skip_resumes_mid_grid_with_identical_outcomes() {
        let scenarios = multi_material_grid().scenarios().expect("grid");
        let (full, _) = streamed(&BatchRunner::new().workers(2), &scenarios, 0);
        let skip = 1;
        let (tail, summary) = streamed(&BatchRunner::new().workers(2), &scenarios, skip);
        assert_eq!(summary.emitted, scenarios.len() - skip);
        assert_eq!(tail.len(), full.len() - skip);
        for ((index, outcome), (full_index, full_outcome)) in tail.iter().zip(&full[skip..]) {
            assert_eq!(index, full_index);
            let a = outcome.as_ref().expect("ok");
            let b = full_outcome.as_ref().expect("ok");
            assert_eq!(a.curve, b.curve);
            assert_eq!(a.stats, b.stats);
        }
        // Skipping everything emits nothing.
        let (none, summary) = streamed(&BatchRunner::new().workers(2), &scenarios, scenarios.len());
        assert!(none.is_empty());
        assert_eq!(summary.emitted, 0);
    }

    #[test]
    fn streamed_run_propagates_the_first_emit_error() {
        let scenarios = small_grid().scenarios().expect("grid");
        for workers in [1, 4] {
            let mut emitted = 0_usize;
            let result =
                BatchRunner::new()
                    .workers(workers)
                    .run_streamed(&scenarios, 0, |index, _| {
                        if index >= 2 {
                            return Err("sink full");
                        }
                        emitted += 1;
                        Ok(())
                    });
            assert_eq!(result.unwrap_err(), "sink full");
            assert_eq!(emitted, 2, "{workers} workers");
        }
    }

    #[test]
    fn streamed_run_records_failures_like_run() {
        let bad = Scenario::new(
            "bad",
            JaParameters::date2006(),
            JaConfig::default().with_dh_max(-1.0),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        );
        let good = Scenario::fig1(BackendKind::DirectTimeless, 500.0).expect("scenario");
        let (collected, summary) = streamed(
            &BatchRunner::new().workers(2),
            &[bad, good.clone(), good],
            0,
        );
        assert_eq!(summary.succeeded, 2);
        assert_eq!(summary.failed, 1);
        assert!(collected[0].1.is_err());
        assert!(collected[1].1.is_ok());
    }
}
