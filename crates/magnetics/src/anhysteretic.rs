//! Anhysteretic magnetisation functions.
//!
//! The Jiles–Atherton model drives the magnetisation towards the
//! *anhysteretic* curve `M_an(H_e)`, the magnetisation a material would reach
//! at the effective field `H_e = H + α·M` in the absence of pinning.
//!
//! Three families are provided:
//!
//! * [`Langevin`] — the original Jiles–Atherton form
//!   `M_an = M_sat · (coth(x) − 1/x)`, `x = H_e / a`;
//! * [`ModifiedLangevin`] — the arctangent form used by the paper's SystemC
//!   code (`Lang_mod`): `M_an = M_sat · (2/π) · atan(H_e / a)`, taken from
//!   Wilson et al.;
//! * [`DoubleArctan`] — a two-shape-parameter arctangent blend that gives a
//!   role to the `a2` parameter the paper lists alongside `a`
//!   (`a = 2000 A/m`, `a2 = 3500 A/m`) but never shows in code.  The blend is
//!   `M_an = M_sat · (2/π) · (w·atan(H_e/a) + (1−w)·atan(H_e/a2))`.
//!
//! All functions are odd, monotonically increasing and saturate at
//! `±M_sat`; these invariants are exercised by the property tests.
//!
//! The arctangent-based laws evaluate [`crate::fastmath::atan`] — a
//! polynomial agreeing with libm to 2 ulp whose fixed, inlineable operation
//! sequence lets the lockstep SoA kernel pipeline and vectorise lanes while
//! staying bit-identical to the scalar path (both call the same function).

use crate::error::MagneticsError;
use crate::units::{FieldStrength, Magnetisation};

/// An anhysteretic magnetisation law `M_an(H_e)`.
///
/// Implementations work on the *normalised* magnetisation `m_an = M_an /
/// M_sat` so the same object can serve both the absolute-unit API of this
/// crate and the normalised state variables the paper's SystemC code keeps
/// (`man`, `mtotal` are all normalised there).
pub trait Anhysteretic {
    /// Normalised anhysteretic magnetisation `m_an(H_e) ∈ (−1, 1)` for an
    /// effective field in A/m.
    fn normalised(&self, h_effective: f64) -> f64;

    /// Derivative `d m_an / d H_e` in (A/m)⁻¹.
    fn derivative_normalised(&self, h_effective: f64) -> f64;

    /// Absolute anhysteretic magnetisation `M_an = M_sat · m_an(H_e)`.
    fn magnetisation(&self, h_effective: FieldStrength, m_sat: Magnetisation) -> Magnetisation {
        Magnetisation::new(m_sat.value() * self.normalised(h_effective.value()))
    }

    /// Absolute slope `d M_an / d H_e` (dimensionless, since both are A/m).
    fn slope(&self, h_effective: FieldStrength, m_sat: Magnetisation) -> f64 {
        m_sat.value() * self.derivative_normalised(h_effective.value())
    }
}

/// Classic Langevin anhysteretic: `m_an(H_e) = coth(H_e/a) − a/H_e`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Langevin {
    a: f64,
}

impl Langevin {
    /// Creates a Langevin law with shape parameter `a` (A/m).
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidParameter`] when `a` is not a finite
    /// strictly positive number.
    pub fn new(a: f64) -> Result<Self, MagneticsError> {
        validate_shape_parameter("a", a)?;
        Ok(Self { a })
    }

    /// The shape parameter `a` in A/m.
    pub fn a(&self) -> f64 {
        self.a
    }
}

impl Anhysteretic for Langevin {
    fn normalised(&self, h_effective: f64) -> f64 {
        langevin_function(h_effective / self.a)
    }

    fn derivative_normalised(&self, h_effective: f64) -> f64 {
        langevin_derivative(h_effective / self.a) / self.a
    }
}

/// Modified (arctangent) anhysteretic used by the paper:
/// `m_an(H_e) = (2/π) · atan(H_e / a)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModifiedLangevin {
    a: f64,
}

impl ModifiedLangevin {
    /// Creates a modified-Langevin law with shape parameter `a` (A/m).
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidParameter`] when `a` is not a finite
    /// strictly positive number.
    pub fn new(a: f64) -> Result<Self, MagneticsError> {
        validate_shape_parameter("a", a)?;
        Ok(Self { a })
    }

    /// The shape parameter `a` in A/m.
    pub fn a(&self) -> f64 {
        self.a
    }
}

impl Anhysteretic for ModifiedLangevin {
    fn normalised(&self, h_effective: f64) -> f64 {
        std::f64::consts::FRAC_2_PI * crate::fastmath::atan(h_effective / self.a)
    }

    fn derivative_normalised(&self, h_effective: f64) -> f64 {
        let x = h_effective / self.a;
        std::f64::consts::FRAC_2_PI / (self.a * (1.0 + x * x))
    }
}

/// Two-parameter arctangent blend giving a role to the paper's `a2`:
/// `m_an(H_e) = (2/π) · (w·atan(H_e/a) + (1−w)·atan(H_e/a2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoubleArctan {
    a: f64,
    a2: f64,
    weight: f64,
}

impl DoubleArctan {
    /// Creates a blended arctangent law from two shape parameters (A/m) and
    /// a blend weight in `[0, 1]` applied to the `a` term.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidParameter`] when either shape
    /// parameter is not finite and positive, or the weight is outside
    /// `[0, 1]`.
    pub fn new(a: f64, a2: f64, weight: f64) -> Result<Self, MagneticsError> {
        validate_shape_parameter("a", a)?;
        validate_shape_parameter("a2", a2)?;
        if !(0.0..=1.0).contains(&weight) || !weight.is_finite() {
            return Err(MagneticsError::InvalidParameter {
                name: "weight",
                value: weight,
                requirement: "0 <= weight <= 1",
            });
        }
        Ok(Self { a, a2, weight })
    }

    /// Creates the blend with the paper's parameters (`a = 2000 A/m`,
    /// `a2 = 3500 A/m`) and an even 50/50 weight.
    pub fn date2006() -> Self {
        Self {
            a: 2000.0,
            a2: 3500.0,
            weight: 0.5,
        }
    }

    /// Primary shape parameter `a` (A/m).
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Secondary shape parameter `a2` (A/m).
    pub fn a2(&self) -> f64 {
        self.a2
    }

    /// Blend weight applied to the `a` term.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl Anhysteretic for DoubleArctan {
    fn normalised(&self, h_effective: f64) -> f64 {
        let t1 = crate::fastmath::atan(h_effective / self.a);
        let t2 = crate::fastmath::atan(h_effective / self.a2);
        std::f64::consts::FRAC_2_PI * (self.weight * t1 + (1.0 - self.weight) * t2)
    }

    fn derivative_normalised(&self, h_effective: f64) -> f64 {
        let x1 = h_effective / self.a;
        let x2 = h_effective / self.a2;
        std::f64::consts::FRAC_2_PI
            * (self.weight / (self.a * (1.0 + x1 * x1))
                + (1.0 - self.weight) / (self.a2 * (1.0 + x2 * x2)))
    }
}

/// Enumeration of the supported anhysteretic laws, convenient when a model
/// needs to store "some anhysteretic" without generics or boxing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnhystereticKind {
    /// Classic Langevin `coth(x) − 1/x`.
    Langevin(Langevin),
    /// Arctangent form used by the paper.
    ModifiedLangevin(ModifiedLangevin),
    /// Two-parameter arctangent blend.
    DoubleArctan(DoubleArctan),
}

impl Anhysteretic for AnhystereticKind {
    fn normalised(&self, h_effective: f64) -> f64 {
        match self {
            AnhystereticKind::Langevin(f) => f.normalised(h_effective),
            AnhystereticKind::ModifiedLangevin(f) => f.normalised(h_effective),
            AnhystereticKind::DoubleArctan(f) => f.normalised(h_effective),
        }
    }

    fn derivative_normalised(&self, h_effective: f64) -> f64 {
        match self {
            AnhystereticKind::Langevin(f) => f.derivative_normalised(h_effective),
            AnhystereticKind::ModifiedLangevin(f) => f.derivative_normalised(h_effective),
            AnhystereticKind::DoubleArctan(f) => f.derivative_normalised(h_effective),
        }
    }
}

impl From<Langevin> for AnhystereticKind {
    fn from(value: Langevin) -> Self {
        AnhystereticKind::Langevin(value)
    }
}

impl From<ModifiedLangevin> for AnhystereticKind {
    fn from(value: ModifiedLangevin) -> Self {
        AnhystereticKind::ModifiedLangevin(value)
    }
}

impl From<DoubleArctan> for AnhystereticKind {
    fn from(value: DoubleArctan) -> Self {
        AnhystereticKind::DoubleArctan(value)
    }
}

/// The Langevin function `L(x) = coth(x) − 1/x`, evaluated with a Taylor
/// expansion near zero to avoid catastrophic cancellation.
pub fn langevin_function(x: f64) -> f64 {
    if x.abs() < 1e-4 {
        // L(x) = x/3 - x^3/45 + 2x^5/945 - ...
        let x2 = x * x;
        x / 3.0 - x * x2 / 45.0 + 2.0 * x * x2 * x2 / 945.0
    } else if x.abs() > 350.0 {
        // coth(x) -> ±1 and 1/x -> 0 well before f64 overflows in tanh.
        x.signum() - 1.0 / x
    } else {
        1.0 / x.tanh() - 1.0 / x
    }
}

/// Derivative of the Langevin function, `L'(x) = 1/x² − 1/sinh²(x)`.
pub fn langevin_derivative(x: f64) -> f64 {
    if x.abs() < 1e-4 {
        // L'(x) = 1/3 - x^2/15 + 2x^4/189 - ...
        let x2 = x * x;
        1.0 / 3.0 - x2 / 15.0 + 2.0 * x2 * x2 / 189.0
    } else if x.abs() > 350.0 {
        1.0 / (x * x)
    } else {
        let s = x.sinh();
        1.0 / (x * x) - 1.0 / (s * s)
    }
}

fn validate_shape_parameter(name: &'static str, value: f64) -> Result<(), MagneticsError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(MagneticsError::InvalidParameter {
            name,
            value,
            requirement: "finite and > 0",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn langevin_function_small_argument_matches_series() {
        let x = 1e-6;
        assert!((langevin_function(x) - x / 3.0).abs() < 1e-18);
    }

    #[test]
    fn langevin_function_is_odd() {
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0, 100.0] {
            assert!((langevin_function(x) + langevin_function(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn langevin_function_saturates_at_one() {
        assert!((langevin_function(1e6) - 1.0).abs() < 1e-5);
        assert!((langevin_function(-1e6) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn langevin_derivative_matches_finite_difference() {
        for &x in &[0.05_f64, 0.3, 1.0, 2.0, 5.0, 20.0] {
            let h = 1e-6 * x.max(1.0);
            let fd = (langevin_function(x + h) - langevin_function(x - h)) / (2.0 * h);
            assert!(
                (langevin_derivative(x) - fd).abs() < 1e-6,
                "x = {x}: analytic {} vs fd {}",
                langevin_derivative(x),
                fd
            );
        }
    }

    #[test]
    fn langevin_rejects_non_positive_shape() {
        assert!(Langevin::new(0.0).is_err());
        assert!(Langevin::new(-5.0).is_err());
        assert!(Langevin::new(f64::NAN).is_err());
        assert!(Langevin::new(2000.0).is_ok());
    }

    #[test]
    fn modified_langevin_matches_paper_formula() {
        // The SystemC code computes (2/3.14159265) * atan(x).
        let f = ModifiedLangevin::new(2000.0).unwrap();
        let he = 4000.0;
        let expected = (2.0 / std::f64::consts::PI) * (he / 2000.0_f64).atan();
        assert!((f.normalised(he) - expected).abs() < 1e-12);
    }

    #[test]
    fn modified_langevin_derivative_matches_finite_difference() {
        let f = ModifiedLangevin::new(2000.0).unwrap();
        for &he in &[-9000.0, -100.0, 0.0, 250.0, 5000.0] {
            let h = 1e-3;
            let fd = (f.normalised(he + h) - f.normalised(he - h)) / (2.0 * h);
            assert!((f.derivative_normalised(he) - fd).abs() < 1e-9);
        }
    }

    #[test]
    fn double_arctan_reduces_to_modified_when_weight_is_one() {
        let blend = DoubleArctan::new(2000.0, 3500.0, 1.0).unwrap();
        let single = ModifiedLangevin::new(2000.0).unwrap();
        for &he in &[-8000.0, -1000.0, 0.0, 500.0, 12_000.0] {
            assert!((blend.normalised(he) - single.normalised(he)).abs() < 1e-12);
        }
    }

    #[test]
    fn double_arctan_rejects_bad_weight() {
        assert!(DoubleArctan::new(2000.0, 3500.0, 1.5).is_err());
        assert!(DoubleArctan::new(2000.0, 3500.0, -0.1).is_err());
        assert!(DoubleArctan::new(2000.0, 3500.0, f64::NAN).is_err());
    }

    #[test]
    fn date2006_blend_uses_paper_parameters() {
        let blend = DoubleArctan::date2006();
        assert_eq!(blend.a(), 2000.0);
        assert_eq!(blend.a2(), 3500.0);
        assert_eq!(blend.weight(), 0.5);
    }

    #[test]
    fn absolute_magnetisation_scales_with_m_sat() {
        let f = ModifiedLangevin::new(2000.0).unwrap();
        let m_sat = Magnetisation::new(1.6e6);
        let m = f.magnetisation(FieldStrength::new(2000.0), m_sat);
        let expected = 1.6e6 * (2.0 / std::f64::consts::PI) * 1.0_f64.atan();
        assert!((m.value() - expected).abs() < 1e-6);
    }

    #[test]
    fn kind_dispatch_matches_inner() {
        let inner = ModifiedLangevin::new(2000.0).unwrap();
        let kind: AnhystereticKind = inner.into();
        assert_eq!(kind.normalised(1234.0), inner.normalised(1234.0));
        assert_eq!(
            kind.derivative_normalised(1234.0),
            inner.derivative_normalised(1234.0)
        );
    }

    proptest! {
        #[test]
        fn prop_langevin_bounded_and_odd(x in -1.0e5_f64..1.0e5) {
            let l = langevin_function(x);
            prop_assert!(l.abs() <= 1.0 + 1e-12);
            prop_assert!((l + langevin_function(-x)).abs() < 1e-9);
        }

        #[test]
        fn prop_modified_langevin_monotone(a in 100.0_f64..10_000.0,
                                           h1 in -50_000.0_f64..50_000.0,
                                           dh in 1.0_f64..10_000.0) {
            let f = ModifiedLangevin::new(a).unwrap();
            prop_assert!(f.normalised(h1 + dh) > f.normalised(h1));
        }

        #[test]
        fn prop_double_arctan_bounded(a in 100.0_f64..10_000.0,
                                      a2 in 100.0_f64..10_000.0,
                                      w in 0.0_f64..1.0,
                                      he in -1.0e6_f64..1.0e6) {
            let f = DoubleArctan::new(a, a2, w).unwrap();
            let m = f.normalised(he);
            prop_assert!(m.abs() < 1.0);
            prop_assert!(f.derivative_normalised(he) > 0.0);
        }

        #[test]
        fn prop_langevin_derivative_positive(x in -200.0_f64..200.0) {
            prop_assert!(langevin_derivative(x) > 0.0);
        }
    }
}
