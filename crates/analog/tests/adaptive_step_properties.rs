//! Property tests of the adaptive transient step controller.
//!
//! The controller accepts a step only when its local-truncation-error
//! estimate fits inside the tolerance-weighted scale, so tightening the
//! tolerances must tighten the realised error: halving `rel_tol` and
//! `abs_tol` must never increase the largest recorded LTE estimate, and
//! must never make the controller take fewer accepted steps.

use analog_solver::circuit::elements::{Capacitor, Resistor, VoltageSource};
use analog_solver::circuit::{Circuit, Node, TransientAnalysis, TransientResult};
use analog_solver::ode::adaptive::AdaptiveOptions;
use proptest::prelude::*;

/// One RC charging circuit: `volts` into `r_kohm`·1kΩ and `c_uf`·1µF.
fn run_rc(volts: f64, r_kohm: f64, c_uf: f64, options: AdaptiveOptions) -> TransientResult {
    let mut circuit = Circuit::new();
    let vin = circuit.node();
    let vc = circuit.node();
    circuit
        .add(
            "V1",
            VoltageSource::new(vin, Node::GROUND, waveform::generator::Constant(volts)),
        )
        .expect("source");
    circuit
        .add("R1", Resistor::new(vin, vc, r_kohm * 1e3).expect("R"))
        .expect("resistor");
    circuit
        .add(
            "C1",
            Capacitor::new(vc, Node::GROUND, c_uf * 1e-6).expect("C"),
        )
        .expect("capacitor");
    // Five time constants: the run covers both the fast charge and the
    // settled tail where the controller stretches toward max_step.
    let t_end = 5.0 * r_kohm * 1e3 * c_uf * 1e-6;
    TransientAnalysis::adaptive(options, t_end)
        .expect("analysis")
        .run(&mut circuit)
        .expect("transient run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn halving_the_tolerance_never_increases_the_lte(
        volts in 0.5_f64..20.0,
        r_kohm in 0.2_f64..5.0,
        c_uf in 0.2_f64..5.0,
        rel_tol in 1e-3_f64..2e-2,
    ) {
        let base = AdaptiveOptions {
            rel_tol,
            abs_tol: rel_tol * 0.1,
            initial_step: 1e-7,
            min_step: 1e-13,
            max_step: 1e-3,
        };
        let halved = AdaptiveOptions {
            rel_tol: base.rel_tol * 0.5,
            abs_tol: base.abs_tol * 0.5,
            ..base
        };
        let loose = run_rc(volts, r_kohm, c_uf, base);
        let tight = run_rc(volts, r_kohm, c_uf, halved);

        let lte_loose = loose.max_lte_estimate().expect("adaptive run records LTE");
        let lte_tight = tight.max_lte_estimate().expect("adaptive run records LTE");
        prop_assert!(
            lte_tight <= lte_loose,
            "halving the tolerance increased the LTE: {lte_tight} > {lte_loose}"
        );
        prop_assert!(
            tight.stats().accepted_steps >= loose.stats().accepted_steps,
            "halving the tolerance reduced the step count: {} < {}",
            tight.stats().accepted_steps,
            loose.stats().accepted_steps
        );
        // Both runs land exactly on t_end.
        prop_assert_eq!(loose.times().last(), tight.times().last());
    }
}
