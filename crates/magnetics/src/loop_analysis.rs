//! Hysteresis-loop analysis.
//!
//! Fig. 1 of the paper is a plotted BH curve; since the reproduction works
//! with numeric traces, this module extracts the quantities that
//! characterise such a plot so they can be compared and asserted on:
//!
//! * peak flux density `B_max` (vertical extent of the figure),
//! * coercive field `H_c` (where the loop crosses `B = 0`),
//! * remanent flux density `B_r` (where the loop crosses `H = 0`),
//! * loop area (the hysteresis energy loss per cycle per unit volume),
//! * loop-closure error under periodic excitation,
//! * count of unphysical negative-slope samples.

use crate::bh::BhCurve;
use crate::error::MagneticsError;
use crate::units::{FieldStrength, FluxDensity};

/// Summary metrics of a BH loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopMetrics {
    /// Peak |B| over the trace.
    pub b_max: FluxDensity,
    /// Peak |H| over the trace.
    pub h_max: FieldStrength,
    /// Coercive field: |H| at the `B = 0` crossings, averaged over the
    /// ascending and descending branches.
    pub coercivity: FieldStrength,
    /// Remanence: |B| at the `H = 0` crossings, averaged over branches.
    pub remanence: FluxDensity,
    /// Enclosed loop area in J/m³ per excitation cycle (∮ H dB).
    pub loop_area: f64,
    /// Number of samples with negative differential permeability.
    pub negative_slope_samples: usize,
}

impl LoopMetrics {
    /// The metrics as `(key, value)` pairs, in the order and with the
    /// unit-suffixed key names of the machine-readable report schema
    /// (`schema_version` 1).  This is the single source of the metric keys:
    /// the CLI's JSON reports and the README's schema table are built from
    /// (and asserted against) this list, so a renamed or added metric shows
    /// up as a compile/test failure rather than silent schema drift.
    ///
    /// `negative_slope_samples` is a count, exactly representable as `f64`
    /// for any realistic trace length.
    pub fn named_values(&self) -> [(&'static str, f64); 6] {
        [
            ("b_max_t", self.b_max.as_tesla()),
            ("h_max_a_per_m", self.h_max.value()),
            ("coercivity_a_per_m", self.coercivity.value()),
            ("remanence_t", self.remanence.as_tesla()),
            ("loop_area_j_per_m3", self.loop_area),
            ("negative_slope_samples", self.negative_slope_samples as f64),
        ]
    }
}

/// Computes the full set of [`LoopMetrics`] for a trace that contains at
/// least one complete loop.
///
/// # Errors
///
/// Returns an error if the trace is too short or never crosses `B = 0` /
/// `H = 0` (e.g. an initial magnetisation curve only).
pub fn loop_metrics(curve: &BhCurve) -> Result<LoopMetrics, MagneticsError> {
    if curve.len() < 8 {
        return Err(MagneticsError::InsufficientSamples {
            required: 8,
            available: curve.len(),
        });
    }
    Ok(LoopMetrics {
        b_max: curve.peak_flux_density()?,
        h_max: curve.peak_field()?,
        coercivity: coercivity(curve)?,
        remanence: remanence(curve)?,
        loop_area: loop_area(curve),
        negative_slope_samples: curve.negative_slope_samples(),
    })
}

/// Streaming accumulator computing [`LoopMetrics`] from samples as they are
/// produced, without ever storing the curve.
///
/// This is the memory-decoupling half of the streaming execution path: a
/// million-point sweep can be reduced to its six loop metrics in O(1) space
/// by feeding each `(H, B)` sample to [`push`](Self::push) and calling
/// [`finish`](Self::finish) at the end.
///
/// The accumulator is **bit-identical** to the stored-curve
/// [`loop_metrics`] path: every running reduction (the |B|/|H| peak folds,
/// the trapezoidal `∮ H dB` sum, the two zero-crossing means and the
/// negative-slope count) performs exactly the floating-point operations of
/// its batch counterpart, in the same order, on the same operands.  The
/// equivalence — including the error cases — is asserted by unit tests and
/// a property test over randomly generated traces.
#[derive(Debug, Clone, Default)]
pub struct IncrementalLoopMetrics {
    samples: usize,
    /// Running `fold(0.0, f64::max)` over |B| — mirrors
    /// [`BhCurve::peak_flux_density`].
    b_abs_max: f64,
    /// Running `fold(0.0, f64::max)` over |H| — mirrors
    /// [`BhCurve::peak_field`].
    h_abs_max: f64,
    /// Previous sample as `(H, B)`, shared by every windowed reduction.
    prev: Option<(f64, f64)>,
    /// Signed trapezoidal `∮ H dB`; `.abs()` applied at [`finish`](Self::finish).
    area: f64,
    coercivity_sum: f64,
    coercivity_count: usize,
    remanence_sum: f64,
    remanence_count: usize,
    negative_slope_samples: usize,
}

impl IncrementalLoopMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples pushed so far.
    pub fn len(&self) -> usize {
        self.samples
    }

    /// `true` when no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Feeds one `(H, B)` sample in SI units (A/m, T).
    pub fn push(&mut self, h: f64, b: f64) {
        self.samples += 1;
        self.b_abs_max = self.b_abs_max.max(b.abs());
        self.h_abs_max = self.h_abs_max.max(h.abs());
        if let Some((ph, pb)) = self.prev {
            // Trapezoidal ∮ H dB, one window at a time — the operand order
            // of `loop_area`.
            let h_mid = 0.5 * (ph + h);
            let db = b - pb;
            self.area += h_mid * db;
            // Negative differential permeability, as counted by
            // `BhCurve::negative_slope_samples`.
            let dh = h - ph;
            if dh != 0.0 && db / dh < 0.0 {
                self.negative_slope_samples += 1;
            }
            // The two zero-crossing means of `mean_abs_level_crossings`:
            // B = 0 crossings sampled in H (coercivity), H = 0 crossings
            // sampled in B (remanence).
            crossing_step(
                (pb, ph),
                (b, h),
                &mut self.coercivity_sum,
                &mut self.coercivity_count,
            );
            crossing_step(
                (ph, pb),
                (h, b),
                &mut self.remanence_sum,
                &mut self.remanence_count,
            );
        }
        self.prev = Some((h, b));
    }

    /// Feeds one curve sample.
    pub fn push_point(&mut self, point: &crate::bh::BhPoint) {
        self.push(point.h.value(), point.b.as_tesla());
    }

    /// Closes the accumulation and returns the metrics.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`loop_metrics`] on the same sample sequence:
    /// [`MagneticsError::InsufficientSamples`] below 8 samples, and
    /// [`MagneticsError::MissingCrossing`] when the trace never crossed
    /// `B = 0` / `H = 0` away from the origin.
    pub fn finish(&self) -> Result<LoopMetrics, MagneticsError> {
        if self.samples < 8 {
            return Err(MagneticsError::InsufficientSamples {
                required: 8,
                available: self.samples,
            });
        }
        if self.coercivity_count == 0 {
            return Err(MagneticsError::MissingCrossing {
                what: "B = 0 away from the origin (coercivity)",
            });
        }
        if self.remanence_count == 0 {
            return Err(MagneticsError::MissingCrossing {
                what: "H = 0 away from the origin (remanence)",
            });
        }
        Ok(LoopMetrics {
            b_max: FluxDensity::new(self.b_abs_max),
            h_max: FieldStrength::new(self.h_abs_max),
            coercivity: FieldStrength::new(self.coercivity_sum / self.coercivity_count as f64),
            remanence: FluxDensity::new(self.remanence_sum / self.remanence_count as f64),
            loop_area: self.area.abs(),
            negative_slope_samples: self.negative_slope_samples,
        })
    }
}

/// One step of the `mean_abs_level_crossings` fold, expressed over a single
/// `(previous, current)` window so [`IncrementalLoopMetrics`] can run it
/// without an iterator.  `(x, y)` is (abscissa, ordinate); the keep-filter
/// of the batch path (`|value| > f64::EPSILON`) is inlined — both call
/// sites use it.
fn crossing_step((px, py): (f64, f64), (x, y): (f64, f64), sum: &mut f64, count: &mut usize) {
    if px == 0.0 && x == 0.0 {
        return;
    }
    if (px <= 0.0 && x > 0.0) || (px >= 0.0 && x < 0.0) {
        let t = if (x - px).abs() > f64::EPSILON {
            -px / (x - px)
        } else {
            0.5
        };
        let value = py + t * (y - py);
        if value.abs() > f64::EPSILON {
            *sum += value.abs();
            *count += 1;
        }
    }
}

/// Coercive field `H_c`: the average |H| of every `B = 0` crossing in the
/// trace (excluding the initial-magnetisation start where both are zero).
///
/// # Errors
///
/// Returns [`MagneticsError::MissingCrossing`] when the trace never crosses
/// `B = 0` away from the origin.
pub fn coercivity(curve: &BhCurve) -> Result<FieldStrength, MagneticsError> {
    let mean = mean_abs_level_crossings(
        curve.points().iter().map(|p| (p.b.as_tesla(), p.h.value())),
        |h| h.abs() > f64::EPSILON,
    )
    .ok_or(MagneticsError::MissingCrossing {
        what: "B = 0 away from the origin (coercivity)",
    })?;
    Ok(FieldStrength::new(mean))
}

/// Remanent flux density `B_r`: the average |B| of every `H = 0` crossing
/// away from the origin.
///
/// # Errors
///
/// Returns [`MagneticsError::MissingCrossing`] when the trace never crosses
/// `H = 0` away from the origin.
pub fn remanence(curve: &BhCurve) -> Result<FluxDensity, MagneticsError> {
    let mean = mean_abs_level_crossings(
        curve.points().iter().map(|p| (p.h.value(), p.b.as_tesla())),
        |b| b.abs() > f64::EPSILON,
    )
    .ok_or(MagneticsError::MissingCrossing {
        what: "H = 0 away from the origin (remanence)",
    })?;
    Ok(FluxDensity::new(mean))
}

/// Enclosed loop area `∮ H dB` in J/m³, computed with the trapezoidal rule
/// over the whole trace.  For a trace containing exactly one closed loop
/// this is the hysteresis loss per cycle per unit volume; for several cycles
/// it is the total over all of them.
pub fn loop_area(curve: &BhCurve) -> f64 {
    let pts = curve.points();
    let mut area = 0.0;
    for w in pts.windows(2) {
        let h_mid = 0.5 * (w[0].h.value() + w[1].h.value());
        let db = w[1].b.as_tesla() - w[0].b.as_tesla();
        area += h_mid * db;
    }
    area.abs()
}

/// How well the final sample of a periodically excited trace returns to the
/// state it had one period earlier, measured as |ΔB| between the last sample
/// and the sample `period_samples` before it.  A well-behaved hysteresis
/// model settles onto a closed loop, so this should be small compared to
/// `B_max`.
///
/// # Errors
///
/// Returns [`MagneticsError::InsufficientSamples`] when the trace is shorter
/// than one period plus one sample.
pub fn loop_closure_error(curve: &BhCurve, period_samples: usize) -> Result<f64, MagneticsError> {
    if curve.len() <= period_samples {
        return Err(MagneticsError::InsufficientSamples {
            required: period_samples + 1,
            available: curve.len(),
        });
    }
    let last = curve.points()[curve.len() - 1];
    let previous = curve.points()[curve.len() - 1 - period_samples];
    Ok((last.b.as_tesla() - previous.b.as_tesla()).abs())
}

/// Extracts nested minor loops: every maximal run of samples between two
/// successive field reversals, returned as `(start, end)` index pairs into
/// the trace (half-open ranges).
pub fn monotone_branches(curve: &BhCurve) -> Vec<(usize, usize)> {
    let starts = curve.branch_starts();
    let mut branches = Vec::with_capacity(starts.len());
    for (i, &s) in starts.iter().enumerate() {
        let end = if i + 1 < starts.len() {
            starts[i + 1] + 1
        } else {
            curve.len()
        };
        if end > s + 1 {
            branches.push((s, end));
        }
    }
    branches
}

/// The mean |value| of `ordinate` at the points where `abscissa` crosses
/// zero (linear interpolation between the bracketing samples), or `None`
/// when no crossing survives the `keep` filter (which screens out
/// degenerate crossings, e.g. the origin).
///
/// Crossings are folded into a running sum in trace order instead of being
/// collected — `loop_metrics` is on the fitting hot path, where a
/// per-candidate allocation would defeat the objective's zero-allocation
/// contract.  The streaming mean adds |value| in exactly the order the old
/// collect-then-average implementation did, so the result is bit-identical.
fn mean_abs_level_crossings<I>(samples: I, keep: impl Fn(f64) -> bool) -> Option<f64>
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let mut sum = 0.0_f64;
    let mut count = 0_usize;
    let mut prev: Option<(f64, f64)> = None;
    for (x, y) in samples {
        if let Some((px, py)) = prev {
            if px == 0.0 && x == 0.0 {
                prev = Some((x, y));
                continue;
            }
            if (px <= 0.0 && x > 0.0) || (px >= 0.0 && x < 0.0) {
                let t = if (x - px).abs() > f64::EPSILON {
                    -px / (x - px)
                } else {
                    0.5
                };
                let value = py + t * (y - py);
                if keep(value) {
                    sum += value.abs();
                    count += 1;
                }
            }
        }
        prev = Some((x, y));
    }
    (count > 0).then(|| sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bh::BhCurve;
    use proptest::prelude::*;

    /// Builds a synthetic rectangular-ish hysteresis loop:
    /// B = Bs * tanh((H ± Hc)/w), ascending branch shifted by -Hc,
    /// descending branch by +Hc.
    fn synthetic_loop(h_peak: f64, h_c: f64, b_s: f64, n: usize) -> BhCurve {
        let mut curve = BhCurve::new();
        let w = h_c / 2.0;
        // ascending branch: H from -h_peak to +h_peak
        for i in 0..=n {
            let h = -h_peak + 2.0 * h_peak * i as f64 / n as f64;
            let b = b_s * ((h - h_c) / w).tanh();
            curve.push_raw(h, b, 0.0);
        }
        // descending branch: H from +h_peak to -h_peak
        for i in 0..=n {
            let h = h_peak - 2.0 * h_peak * i as f64 / n as f64;
            let b = b_s * ((h + h_c) / w).tanh();
            curve.push_raw(h, b, 0.0);
        }
        curve
    }

    /// Builds a synthetic lens-shaped loop with closed tips at ±h_peak:
    /// both branches share the linear backbone `k·H` and are separated by
    /// the parabolic lens `d(H) = d0·(1 − (H/h_peak)²)`, giving analytic
    /// remanence (`d0`), coercivity (positive root of `k·H = d(H)`) and
    /// enclosed area (`(8/3)·d0·h_peak`).
    fn lens_loop(h_peak: f64, k: f64, d0: f64, n: usize) -> BhCurve {
        let mut curve = BhCurve::new();
        let lens = |h: f64| d0 * (1.0 - (h / h_peak).powi(2));
        // ascending branch (lower lip): H from -h_peak to +h_peak
        for i in 0..=n {
            let h = -h_peak + 2.0 * h_peak * i as f64 / n as f64;
            curve.push_raw(h, k * h - lens(h), 0.0);
        }
        // descending branch (upper lip): H from +h_peak back to -h_peak
        for i in 0..=n {
            let h = h_peak - 2.0 * h_peak * i as f64 / n as f64;
            curve.push_raw(h, k * h + lens(h), 0.0);
        }
        curve
    }

    const LENS_H_PEAK: f64 = 10_000.0;
    const LENS_K: f64 = 1.8e-4; // > 2·d0/h_peak, so slopes stay positive
    const LENS_D0: f64 = 0.5;

    #[test]
    fn lens_loop_remanence_is_the_lens_half_width() {
        let curve = lens_loop(LENS_H_PEAK, LENS_K, LENS_D0, 2000);
        let br = remanence(&curve).unwrap();
        // At H = 0 both branches sit at ±d0 exactly.
        assert!(
            (br.as_tesla() - LENS_D0).abs() < 1e-3,
            "Br = {} T, expected {LENS_D0} T",
            br.as_tesla()
        );
    }

    #[test]
    fn lens_loop_coercivity_matches_analytic_root() {
        let curve = lens_loop(LENS_H_PEAK, LENS_K, LENS_D0, 2000);
        let hc = coercivity(&curve).unwrap();
        // B = 0 on the ascending branch at k·H = d0(1 − (H/hp)²), the
        // positive root of (d0/hp²)·H² + k·H − d0 = 0.
        let a = LENS_D0 / (LENS_H_PEAK * LENS_H_PEAK);
        let expected = (-LENS_K + (LENS_K * LENS_K + 4.0 * a * LENS_D0).sqrt()) / (2.0 * a);
        assert!(
            (hc.value() - expected).abs() < 0.01 * expected,
            "Hc = {} A/m, expected {expected} A/m",
            hc.value()
        );
    }

    #[test]
    fn lens_loop_area_matches_closed_form() {
        let curve = lens_loop(LENS_H_PEAK, LENS_K, LENS_D0, 2000);
        // ∮ H dB over the lens: ∫ 2·d(H) dH = (8/3)·d0·h_peak.
        let expected = 8.0 / 3.0 * LENS_D0 * LENS_H_PEAK;
        let area = loop_area(&curve);
        assert!(
            (area - expected).abs() < 0.01 * expected,
            "area = {area} J/m³, expected {expected} J/m³"
        );
    }

    #[test]
    fn lens_loop_full_metrics_are_consistent() {
        let curve = lens_loop(LENS_H_PEAK, LENS_K, LENS_D0, 2000);
        let m = loop_metrics(&curve).unwrap();
        assert!((m.h_max.value() - LENS_H_PEAK).abs() < 1e-9);
        // Peak B at +h_peak where the lens vanishes: k·h_peak.
        assert!((m.b_max.as_tesla() - LENS_K * LENS_H_PEAK).abs() < 1e-9);
        assert_eq!(m.negative_slope_samples, 0);
    }

    #[test]
    fn coercivity_of_synthetic_loop() {
        let curve = synthetic_loop(10_000.0, 1000.0, 1.8, 2000);
        let hc = coercivity(&curve).unwrap();
        assert!(
            (hc.value() - 1000.0).abs() < 30.0,
            "Hc = {} A/m",
            hc.value()
        );
    }

    #[test]
    fn remanence_of_synthetic_loop() {
        let curve = synthetic_loop(10_000.0, 1000.0, 1.8, 2000);
        let br = remanence(&curve).unwrap();
        // B at H=0 on either branch: Bs * tanh(Hc/w) = Bs * tanh(2) ~ 0.964 Bs
        let expected = 1.8 * (2.0_f64).tanh();
        assert!(
            (br.as_tesla() - expected).abs() < 0.02,
            "Br = {}",
            br.as_tesla()
        );
    }

    #[test]
    fn loop_area_positive_and_scales_with_coercivity() {
        let narrow = synthetic_loop(10_000.0, 500.0, 1.8, 2000);
        let wide = synthetic_loop(10_000.0, 2000.0, 1.8, 2000);
        let a_narrow = loop_area(&narrow);
        let a_wide = loop_area(&wide);
        assert!(a_narrow > 0.0);
        assert!(a_wide > a_narrow);
    }

    #[test]
    fn metrics_bundle() {
        let curve = synthetic_loop(10_000.0, 1000.0, 1.8, 1000);
        let m = loop_metrics(&curve).unwrap();
        assert!(m.b_max.as_tesla() <= 1.8 + 1e-9);
        assert!((m.h_max.value() - 10_000.0).abs() < 1e-6);
        assert!(m.coercivity.value() > 500.0);
        assert!(m.remanence.as_tesla() > 1.0);
        assert!(m.loop_area > 0.0);
        assert_eq!(m.negative_slope_samples, 0);
    }

    #[test]
    fn named_values_mirror_the_struct() {
        let curve = synthetic_loop(10_000.0, 1000.0, 1.8, 1000);
        let m = loop_metrics(&curve).unwrap();
        let named = m.named_values();
        assert_eq!(named[0], ("b_max_t", m.b_max.as_tesla()));
        assert_eq!(named[1], ("h_max_a_per_m", m.h_max.value()));
        assert_eq!(named[2], ("coercivity_a_per_m", m.coercivity.value()));
        assert_eq!(named[3], ("remanence_t", m.remanence.as_tesla()));
        assert_eq!(named[4], ("loop_area_j_per_m3", m.loop_area));
        assert_eq!(
            named[5],
            ("negative_slope_samples", m.negative_slope_samples as f64)
        );
        // Keys are unique (an accidental duplicate would corrupt reports).
        for (i, (key, _)) in named.iter().enumerate() {
            assert!(named.iter().skip(i + 1).all(|(other, _)| other != key));
        }
    }

    #[test]
    fn metrics_require_enough_samples() {
        let mut curve = BhCurve::new();
        curve.push_raw(0.0, 0.0, 0.0);
        assert!(matches!(
            loop_metrics(&curve),
            Err(MagneticsError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn coercivity_missing_for_initial_curve() {
        // Initial magnetisation curve only: B stays >= 0, no zero crossing
        // away from the origin.
        let mut curve = BhCurve::new();
        for i in 0..100 {
            let h = i as f64 * 10.0;
            curve.push_raw(h, (h / 5000.0).tanh(), 0.0);
        }
        assert!(matches!(
            coercivity(&curve),
            Err(MagneticsError::MissingCrossing { .. })
        ));
    }

    #[test]
    fn loop_closure_error_small_for_closed_loop() {
        let curve = synthetic_loop(10_000.0, 1000.0, 1.8, 500);
        // One full period is the entire trace minus 1; compare last sample
        // to itself shifted by 0 -> use an artificial repeat instead.
        let mut repeated = curve.clone();
        repeated.extend(curve.points().iter().copied());
        let err = loop_closure_error(&repeated, curve.len()).unwrap();
        assert!(err < 1e-12);
    }

    #[test]
    fn loop_closure_requires_enough_samples() {
        let curve = synthetic_loop(10.0, 1.0, 1.0, 10);
        assert!(loop_closure_error(&curve, 10_000).is_err());
    }

    #[test]
    fn monotone_branches_cover_trace() {
        let curve = synthetic_loop(10_000.0, 1000.0, 1.8, 300);
        let branches = monotone_branches(&curve);
        assert!(branches.len() >= 2);
        assert_eq!(branches[0].0, 0);
        assert_eq!(branches.last().unwrap().1, curve.len());
    }

    #[test]
    fn negative_slope_samples_counted_in_metrics() {
        let mut curve = synthetic_loop(10_000.0, 1000.0, 1.8, 200);
        // Inject an artificial glitch.
        curve.push_raw(-10_001.0, 5.0, 0.0);
        curve.push_raw(-10_002.0, -5.0, 0.0);
        let m = loop_metrics(&curve).unwrap();
        assert!(m.negative_slope_samples >= 1);
    }

    /// Streams a stored curve through the incremental accumulator.
    fn incremental(curve: &BhCurve) -> Result<LoopMetrics, MagneticsError> {
        let mut acc = IncrementalLoopMetrics::new();
        for p in curve.iter() {
            acc.push_point(p);
        }
        assert_eq!(acc.len(), curve.len());
        acc.finish()
    }

    /// Asserts the streamed result reproduces the stored result bit-for-bit
    /// (including which error is reported).
    fn assert_bit_identical(
        stored: &Result<LoopMetrics, MagneticsError>,
        streamed: &Result<LoopMetrics, MagneticsError>,
    ) {
        match (stored, streamed) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.b_max.as_tesla().to_bits(), b.b_max.as_tesla().to_bits());
                assert_eq!(a.h_max.value().to_bits(), b.h_max.value().to_bits());
                assert_eq!(
                    a.coercivity.value().to_bits(),
                    b.coercivity.value().to_bits()
                );
                assert_eq!(
                    a.remanence.as_tesla().to_bits(),
                    b.remanence.as_tesla().to_bits()
                );
                assert_eq!(a.loop_area.to_bits(), b.loop_area.to_bits());
                assert_eq!(a.negative_slope_samples, b.negative_slope_samples);
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (stored, streamed) => {
                panic!("stored {stored:?} and streamed {streamed:?} disagree")
            }
        }
    }

    #[test]
    fn incremental_matches_stored_on_synthetic_loop() {
        for n in [8, 37, 200, 2000] {
            let curve = synthetic_loop(10_000.0, 1000.0, 1.8, n);
            assert_bit_identical(&loop_metrics(&curve), &incremental(&curve));
        }
    }

    #[test]
    fn incremental_matches_stored_on_lens_loop() {
        let curve = lens_loop(LENS_H_PEAK, LENS_K, LENS_D0, 2000);
        assert_bit_identical(&loop_metrics(&curve), &incremental(&curve));
    }

    #[test]
    fn incremental_matches_stored_on_glitched_loop() {
        let mut curve = synthetic_loop(10_000.0, 1000.0, 1.8, 200);
        curve.push_raw(-10_001.0, 5.0, 0.0);
        curve.push_raw(-10_002.0, -5.0, 0.0);
        assert_bit_identical(&loop_metrics(&curve), &incremental(&curve));
    }

    #[test]
    fn incremental_matches_stored_error_cases() {
        // Too short.
        let mut short = BhCurve::new();
        short.push_raw(0.0, 0.0, 0.0);
        assert_bit_identical(&loop_metrics(&short), &incremental(&short));
        // Initial magnetisation curve: no B = 0 crossing away from the
        // origin -> coercivity is the first reported failure.
        let mut initial = BhCurve::new();
        for i in 0..100 {
            let h = i as f64 * 10.0;
            initial.push_raw(h, (h / 5000.0).tanh(), 0.0);
        }
        assert_bit_identical(&loop_metrics(&initial), &incremental(&initial));
        // B crosses zero but H never does: remanence is the failure.
        let mut no_h_crossing = BhCurve::new();
        for i in 0..20 {
            no_h_crossing.push_raw(10.0 + i as f64, i as f64 - 10.5, 0.0);
        }
        assert_bit_identical(&loop_metrics(&no_h_crossing), &incremental(&no_h_crossing));
    }

    proptest! {
        /// Random traces — including short, degenerate and non-loop shapes —
        /// reduce to bit-identical metrics (or the identical error) whether
        /// stored or streamed.
        #[test]
        fn incremental_matches_stored_on_random_traces(
            raw in proptest::collection::vec((-1.0e4_f64..1.0e4, -2.5_f64..2.5), 0..64),
        ) {
            let mut curve = BhCurve::new();
            for (h, b) in &raw {
                curve.push_raw(*h, *b, 0.0);
            }
            assert_bit_identical(&loop_metrics(&curve), &incremental(&curve));
        }

        /// Random closed loops exercise the success path with crossings on
        /// both axes.
        #[test]
        fn incremental_matches_stored_on_random_loops(
            h_peak in 1.0e3_f64..2.0e4,
            h_c_frac in 0.05_f64..0.4,
            b_s in 0.2_f64..2.5,
            n in 8_usize..300,
        ) {
            let curve = synthetic_loop(h_peak, h_c_frac * h_peak, b_s, n);
            assert_bit_identical(&loop_metrics(&curve), &incremental(&curve));
        }
    }
}
