//! Strongly typed magnetic quantities.
//!
//! The hysteresis model juggles several physically distinct quantities that
//! are all "just an `f64`" at the machine level: the applied field `H`
//! (A/m), the magnetisation `M` (A/m), the flux density `B` (T) and the
//! total flux `Φ` (Wb).  Mixing these up is one of the classic sources of
//! silent modelling bugs, so this module gives each of them a newtype with
//! the arithmetic that is physically meaningful and nothing more
//! (C-NEWTYPE).
//!
//! All newtypes are `Copy`, ordered, hashable on their bit pattern via
//! `Debug`-friendly wrappers, and expose their raw value through explicit
//! `as_*` accessors so call sites stay readable.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::constants::MU0;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $accessor:ident) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value expressed in the quantity's SI unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Zero of this quantity.
            #[inline]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Returns the raw value in the quantity's SI unit.
            #[inline]
            pub const fn $accessor(self) -> f64 {
                self.0
            }

            /// Returns the raw value in the quantity's SI unit.
            ///
            /// Alias of the unit-specific accessor; useful in generic code.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Sign of the value (`-1.0`, `0.0` or `1.0`).
            #[inline]
            pub fn signum(self) -> f64 {
                if self.0 == 0.0 { 0.0 } else { self.0.signum() }
            }

            /// `true` when the wrapped value is finite (not NaN / ±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Magnetic field strength `H`, in amperes per metre (A/m).
    FieldStrength,
    "A/m",
    as_amperes_per_meter
);

quantity!(
    /// Magnetisation `M`, in amperes per metre (A/m).
    Magnetisation,
    "A/m",
    as_amperes_per_meter
);

quantity!(
    /// Magnetic flux density `B`, in tesla (T).
    FluxDensity,
    "T",
    as_tesla
);

quantity!(
    /// Magnetic flux `Φ`, in weber (Wb).
    MagneticFlux,
    "Wb",
    as_weber
);

impl FieldStrength {
    /// Constructs a field strength from a value in kA/m (the unit of the
    /// paper's Fig. 1 x-axis).
    #[inline]
    pub fn from_kiloamperes_per_meter(value: f64) -> Self {
        Self::new(value * 1.0e3)
    }

    /// Returns the value in kA/m.
    #[inline]
    pub fn as_kiloamperes_per_meter(self) -> f64 {
        self.value() / 1.0e3
    }
}

impl Magnetisation {
    /// Constructs a magnetisation from a value in MA/m (the paper quotes
    /// `Msat = 1.6 MA/m`).
    #[inline]
    pub fn from_megaamperes_per_meter(value: f64) -> Self {
        Self::new(value * 1.0e6)
    }

    /// Normalises the magnetisation against a saturation magnetisation,
    /// returning the dimensionless `M / M_sat` used by the paper's SystemC
    /// code (`mtotal` is stored normalised there).
    #[inline]
    pub fn normalised(self, m_sat: Magnetisation) -> f64 {
        self.value() / m_sat.value()
    }
}

impl FluxDensity {
    /// Computes `B = µ0 · (H + M)`, the constitutive relation the paper's
    /// `JA::core()` process evaluates on every field update.
    #[inline]
    pub fn from_field_and_magnetisation(h: FieldStrength, m: Magnetisation) -> Self {
        Self::new(MU0 * (h.value() + m.value()))
    }

    /// Converts the flux density to a total flux through an area in m².
    #[inline]
    pub fn flux_through(self, area_m2: f64) -> MagneticFlux {
        MagneticFlux::new(self.value() * area_m2)
    }
}

/// Relative permeability (dimensionless).
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct RelativePermeability(f64);

impl RelativePermeability {
    /// Wraps a dimensionless relative permeability.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// The raw dimensionless value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Absolute permeability µ = µ0 · µr, in H/m.
    #[inline]
    pub fn absolute(self) -> f64 {
        self.0 * MU0
    }

    /// Differential relative permeability implied by a slope `dB/dH`
    /// expressed in T·m/A.
    #[inline]
    pub fn from_db_dh(db_dh: f64) -> Self {
        Self(db_dh / MU0)
    }
}

impl fmt::Display for RelativePermeability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "µr = {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_strength_kiloampere_roundtrip() {
        let h = FieldStrength::from_kiloamperes_per_meter(10.0);
        assert_eq!(h.as_amperes_per_meter(), 10_000.0);
        assert_eq!(h.as_kiloamperes_per_meter(), 10.0);
    }

    #[test]
    fn magnetisation_normalisation() {
        let m_sat = Magnetisation::from_megaamperes_per_meter(1.6);
        let m = Magnetisation::new(0.8e6);
        assert!((m.normalised(m_sat) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flux_density_constitutive_relation() {
        let h = FieldStrength::new(1000.0);
        let m = Magnetisation::new(1.0e6);
        let b = FluxDensity::from_field_and_magnetisation(h, m);
        let expected = MU0 * (1000.0 + 1.0e6);
        assert!((b.as_tesla() - expected).abs() < 1e-12);
    }

    #[test]
    fn flux_through_area() {
        let b = FluxDensity::new(1.5);
        let phi = b.flux_through(2.0e-4);
        assert!((phi.as_weber() - 3.0e-4).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = FieldStrength::new(2.0);
        let b = FieldStrength::new(3.0);
        assert_eq!((a + b).value(), 5.0);
        assert_eq!((b - a).value(), 1.0);
        assert_eq!((-a).value(), -2.0);
        assert_eq!((a * 2.0).value(), 4.0);
        assert_eq!((2.0 * a).value(), 4.0);
        assert_eq!((b / 3.0).value(), 1.0);
        assert_eq!(b / a, 1.5);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn signum_and_abs() {
        assert_eq!(FieldStrength::new(-5.0).abs().value(), 5.0);
        assert_eq!(FieldStrength::new(-5.0).signum(), -1.0);
        assert_eq!(FieldStrength::zero().signum(), 0.0);
    }

    #[test]
    fn clamp_limits_value() {
        let v = Magnetisation::new(2.0e6);
        let clamped = v.clamp(Magnetisation::new(-1.6e6), Magnetisation::new(1.6e6));
        assert_eq!(clamped.value(), 1.6e6);
    }

    #[test]
    fn compound_assignment() {
        let mut h = FieldStrength::new(1.0);
        h += FieldStrength::new(2.0);
        assert_eq!(h.value(), 3.0);
        h -= FieldStrength::new(0.5);
        assert_eq!(h.value(), 2.5);
    }

    #[test]
    fn sum_of_quantities() {
        let total: FieldStrength = (1..=4).map(|i| FieldStrength::new(i as f64)).sum();
        assert_eq!(total.value(), 10.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(FluxDensity::new(1.5).to_string(), "1.5 T");
        assert_eq!(FieldStrength::new(3.0).to_string(), "3 A/m");
    }

    #[test]
    fn relative_permeability_conversions() {
        let mu_r = RelativePermeability::new(1000.0);
        assert!((mu_r.absolute() - 1000.0 * MU0).abs() < 1e-12);
        let back = RelativePermeability::from_db_dh(mu_r.absolute());
        assert!((back.value() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!FieldStrength::new(f64::NAN).is_finite());
        assert!(FieldStrength::new(1.0).is_finite());
    }
}
