//! The conventional time-domain formulation — the baseline the paper argues
//! against.
//!
//! Existing HDL implementations convert the magnetisation slope into a time
//! derivative, `dM/dt = dM/dH · dH/dt`, and let the simulator's analogue
//! solver integrate it.  [`MagnetisationOde`] exposes exactly that
//! right-hand side for a given excitation waveform, so it can be handed to
//! any time integrator (the fixed-step driver below, or the
//! `analog-solver` engines used by the `hdl-models` crate).  The slope
//! discontinuity at every field reversal is left in place on purpose: it is
//! the very feature that makes this formulation fragile.

use magnetics::anhysteretic::AnhystereticKind;
use magnetics::bh::BhCurve;
use magnetics::constants::MU0;
use magnetics::material::JaParameters;
use waveform::Waveform;

use crate::config::JaConfig;
use crate::error::JaError;
use crate::slope::{evaluate_total_slope, FieldDirection};

/// The magnetisation ODE `dm/dt = dM/dH(H(t), m) · dH/dt(t)` in normalised
/// magnetisation.
pub struct MagnetisationOde<'a, W> {
    params: JaParameters,
    anhysteretic: AnhystereticKind,
    clamp_negative_slope: bool,
    waveform: &'a W,
}

impl<'a, W: Waveform> MagnetisationOde<'a, W> {
    /// Creates the ODE for a parameter set and an excitation waveform,
    /// using the configuration's anhysteretic choice and slope guard.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Material`] for invalid parameters or
    /// [`JaError::InvalidConfig`] for an invalid configuration.
    pub fn new(params: JaParameters, config: &JaConfig, waveform: &'a W) -> Result<Self, JaError> {
        params.validate()?;
        config.validate()?;
        Ok(Self {
            params,
            anhysteretic: config.anhysteretic.build(&params),
            clamp_negative_slope: config.clamp_negative_slope,
            waveform,
        })
    }

    /// The applied field at time `t`.
    pub fn field(&self, t: f64) -> f64 {
        self.waveform.value(t)
    }

    /// The time derivative of the normalised magnetisation at time `t` for
    /// the normalised magnetisation `m`.
    pub fn dm_dt(&self, t: f64, m: f64) -> f64 {
        let h = self.waveform.value(t);
        let dh_dt = self.waveform.derivative(t);
        let Some(direction) = FieldDirection::from_increment(dh_dt) else {
            return 0.0;
        };
        let dm_dh = evaluate_total_slope(
            &self.params,
            &self.anhysteretic,
            h,
            m,
            direction,
            self.clamp_negative_slope,
        );
        dm_dh * dh_dt
    }

    /// Flux density for a given time and normalised magnetisation.
    pub fn flux_density(&self, t: f64, m: f64) -> f64 {
        MU0 * (self.waveform.value(t) + m * self.params.m_sat.value())
    }

    /// The material parameters.
    pub fn params(&self) -> &JaParameters {
        &self.params
    }
}

/// Time-integration method for the built-in fixed-step driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeIntegration {
    /// Forward Euler in time.
    #[default]
    ForwardEuler,
    /// Classic RK4 in time.
    RungeKutta4,
}

/// Result of a time-domain simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeDomainResult {
    curve: BhCurve,
    times: Vec<f64>,
    rhs_evaluations: u64,
}

impl TimeDomainResult {
    /// The BH trace.
    pub fn curve(&self) -> &BhCurve {
        &self.curve
    }

    /// The time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of right-hand-side (slope) evaluations used.
    pub fn rhs_evaluations(&self) -> u64 {
        self.rhs_evaluations
    }
}

/// Simulates the time-domain formulation with a fixed step.
///
/// # Errors
///
/// Returns [`JaError::InvalidConfig`] for a non-positive `dt` or `t_end`,
/// and [`JaError::StateDiverged`] if the magnetisation becomes non-finite
/// (which the explicit time-domain formulation *can* do at large steps —
/// that failure mode is precisely what experiment E4 quantifies).
pub fn simulate_time_domain<W: Waveform>(
    ode: &MagnetisationOde<'_, W>,
    t_end: f64,
    dt: f64,
    method: TimeIntegration,
) -> Result<TimeDomainResult, JaError> {
    if !dt.is_finite() || dt <= 0.0 {
        return Err(JaError::InvalidConfig {
            name: "dt",
            value: dt,
            requirement: "finite and > 0",
        });
    }
    if !t_end.is_finite() || t_end <= 0.0 {
        return Err(JaError::InvalidConfig {
            name: "t_end",
            value: t_end,
            requirement: "finite and > 0",
        });
    }
    let steps = (t_end / dt).ceil() as usize;
    let mut m = 0.0_f64;
    let mut t = 0.0_f64;
    let mut curve = BhCurve::with_capacity(steps + 1);
    let mut times = Vec::with_capacity(steps + 1);
    let mut evals = 0u64;

    let m_sat = ode.params().m_sat.value();
    curve.push_raw(ode.field(0.0), ode.flux_density(0.0, m), m * m_sat);
    times.push(0.0);

    for _ in 0..steps {
        let h_step = dt.min(t_end - t);
        match method {
            TimeIntegration::ForwardEuler => {
                let k = ode.dm_dt(t, m);
                evals += 1;
                m += h_step * k;
            }
            TimeIntegration::RungeKutta4 => {
                let k1 = ode.dm_dt(t, m);
                let k2 = ode.dm_dt(t + 0.5 * h_step, m + 0.5 * h_step * k1);
                let k3 = ode.dm_dt(t + 0.5 * h_step, m + 0.5 * h_step * k2);
                let k4 = ode.dm_dt(t + h_step, m + h_step * k3);
                evals += 4;
                m += h_step / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
            }
        }
        t += h_step;
        if !m.is_finite() {
            return Err(JaError::StateDiverged {
                at_field: ode.field(t),
            });
        }
        curve.push_raw(ode.field(t), ode.flux_density(t, m), m * m_sat);
        times.push(t);
    }

    Ok(TimeDomainResult {
        curve,
        times,
        rhs_evaluations: evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::loop_analysis;
    use waveform::triangular::Triangular;

    fn paper_setup() -> (JaParameters, JaConfig, Triangular) {
        (
            JaParameters::date2006(),
            JaConfig::default(),
            Triangular::new(10_000.0, 1.0).expect("valid waveform"),
        )
    }

    #[test]
    fn construction_validates() {
        let (p, c, w) = paper_setup();
        assert!(MagnetisationOde::new(p, &c, &w).is_ok());
        let bad = c.with_dh_max(-1.0);
        assert!(MagnetisationOde::new(p, &bad, &w).is_err());
    }

    #[test]
    fn dm_dt_positive_on_rising_field() {
        let (p, c, w) = paper_setup();
        let ode = MagnetisationOde::new(p, &c, &w).unwrap();
        // Early in the cycle the triangular field rises.
        assert!(ode.dm_dt(0.05, 0.0) > 0.0);
        assert_eq!(ode.field(0.25), 10_000.0);
    }

    #[test]
    fn fixed_step_rk4_produces_hysteresis_loop() {
        let (p, c, w) = paper_setup();
        let ode = MagnetisationOde::new(p, &c, &w).unwrap();
        let result =
            simulate_time_domain(&ode, 2.0, 2.0 / 8000.0, TimeIntegration::RungeKutta4).unwrap();
        let metrics = loop_analysis::loop_metrics(result.curve()).unwrap();
        assert!(metrics.b_max.as_tesla() > 1.2);
        assert!(metrics.coercivity.value() > 500.0);
        assert!(result.rhs_evaluations() > 8000);
        assert_eq!(result.times().len(), result.curve().len());
    }

    #[test]
    fn forward_euler_needs_more_care_than_rk4() {
        let (p, c, w) = paper_setup();
        let ode = MagnetisationOde::new(p, &c, &w).unwrap();
        let euler =
            simulate_time_domain(&ode, 1.0, 1.0 / 4000.0, TimeIntegration::ForwardEuler).unwrap();
        let rk4 =
            simulate_time_domain(&ode, 1.0, 1.0 / 4000.0, TimeIntegration::RungeKutta4).unwrap();
        let b_euler = euler.curve().peak_flux_density().unwrap().as_tesla();
        let b_rk4 = rk4.curve().peak_flux_density().unwrap().as_tesla();
        // Both bounded; shapes close but not identical.
        assert!(b_euler < 2.5 && b_rk4 < 2.5);
        assert!((b_euler - b_rk4).abs() < 0.5);
    }

    #[test]
    fn invalid_time_parameters_rejected() {
        let (p, c, w) = paper_setup();
        let ode = MagnetisationOde::new(p, &c, &w).unwrap();
        assert!(simulate_time_domain(&ode, 1.0, 0.0, TimeIntegration::ForwardEuler).is_err());
        assert!(simulate_time_domain(&ode, -1.0, 1e-3, TimeIntegration::ForwardEuler).is_err());
    }

    #[test]
    fn flux_density_uses_constitutive_relation() {
        let (p, c, w) = paper_setup();
        let ode = MagnetisationOde::new(p, &c, &w).unwrap();
        let b = ode.flux_density(0.25, 0.5);
        let expected = MU0 * (10_000.0 + 0.5 * 1.6e6);
        assert!((b - expected).abs() < 1e-12);
    }
}
