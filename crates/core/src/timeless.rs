//! Timeless integration of the magnetisation slope — the paper's
//! contribution.
//!
//! The integration variable is the applied field `H`, not time.  Given a
//! field increment `ΔH = H_new − H_last`, the irreversible magnetisation is
//! advanced by explicitly integrating the slope of [`crate::slope`] across
//! that increment.  Forward Euler (one slope evaluation per increment) is
//! the paper's method; Heun and RK4-in-`H` are provided for the
//! discretisation ablation, as is optional sub-division of increments larger
//! than `ΔH_max`.

use magnetics::anhysteretic::{Anhysteretic, AnhystereticKind};
use magnetics::material::JaParameters;

use crate::config::{Formulation, JaConfig, SlopeIntegration};
use crate::error::JaError;
use crate::model::JaStatistics;
use crate::slope::{evaluate_irreversible_slope, reject_opposing_update, FieldDirection};
use crate::state::JaState;

/// Outcome of integrating one field increment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IncrementResult {
    /// Change of the normalised irreversible magnetisation.
    pub dm_irr: f64,
    /// Number of slope evaluations performed.
    pub slope_evaluations: u32,
    /// Number of evaluations whose raw slope was negative (and clamped when
    /// the guard is active).
    pub negative_slope_events: u32,
    /// Number of sub-updates rejected by the opposing-sign guard.
    pub rejected_updates: u32,
}

/// Iteration cap of the per-sample self-consistency fixed point, shared by
/// [`advance_state`] and the lockstep kernel of [`crate::soa`] (the two must
/// agree for the paths to stay bit-identical).
pub(crate) const FIXED_POINT_ITERATIONS: usize = 8;

/// Convergence tolerance of the per-sample self-consistency fixed point,
/// shared by [`advance_state`] and the lockstep kernel of [`crate::soa`].
pub(crate) const FIXED_POINT_TOLERANCE: f64 = 1e-13;

/// Combines the irreversible magnetisation and the anhysteretic value into
/// the total normalised magnetisation for the given formulation.
#[inline]
pub fn total_magnetisation(formulation: Formulation, c: f64, m_an: f64, m_irr: f64) -> f64 {
    match formulation {
        Formulation::Date2006 => c * m_an / (1.0 + c) + m_irr,
        Formulation::Classic => m_irr + c * (m_an - m_irr),
    }
}

/// Integrates the irreversible magnetisation across the field increment
/// `h_from → h_to`, starting from the normalised state (`m_irr`,
/// `m_total`).  Returns the accumulated change of `m_irr` and the
/// integration statistics; the caller is responsible for rebuilding
/// `m_total` from the result.
pub fn integrate_field_increment(
    params: &JaParameters,
    anhysteretic: &AnhystereticKind,
    config: &JaConfig,
    m_irr: f64,
    m_total: f64,
    h_from: f64,
    h_to: f64,
) -> IncrementResult {
    let mut result = IncrementResult::default();
    let dh_total = h_to - h_from;
    let Some(direction) = FieldDirection::from_increment(dh_total) else {
        return result;
    };

    let substeps = if config.subdivide_increment {
        ((dh_total.abs() / config.dh_max).ceil() as usize).max(1)
    } else {
        1
    };
    let dh = dh_total / substeps as f64;

    let mut m_irr_local = m_irr;
    let mut m_total_local = m_total;
    let mut h = h_from;

    for _ in 0..substeps {
        let slope_at =
            |h_eval: f64, m_irr_eval: f64, m_total_eval: f64, result: &mut IncrementResult| {
                let eval = evaluate_irreversible_slope(
                    params,
                    anhysteretic,
                    config.formulation,
                    h_eval,
                    m_irr_eval,
                    m_total_eval,
                    direction,
                    config.clamp_negative_slope,
                );
                result.slope_evaluations += 1;
                if eval.raw_slope < 0.0 {
                    result.negative_slope_events += 1;
                }
                eval
            };

        let dm = match config.integration {
            SlopeIntegration::ForwardEuler => {
                // Mirrors the paper's process ordering: `core()` evaluates
                // the anhysteretic at the *new* field value before
                // `Integral()` advances M_irr with the old magnetisation.
                let eval = slope_at(h + dh, m_irr_local, m_total_local, &mut result);
                dh * eval.slope
            }
            SlopeIntegration::Heun => {
                let k1 = slope_at(h, m_irr_local, m_total_local, &mut result);
                let m_irr_pred = m_irr_local + dh * k1.slope;
                let m_total_pred =
                    total_magnetisation(config.formulation, params.c, k1.m_an, m_irr_pred);
                let k2 = slope_at(h + dh, m_irr_pred, m_total_pred, &mut result);
                0.5 * dh * (k1.slope + k2.slope)
            }
            SlopeIntegration::RungeKutta4 => {
                let k1 = slope_at(h, m_irr_local, m_total_local, &mut result);
                let project = |m_irr_est: f64, m_an_hint: f64| {
                    total_magnetisation(config.formulation, params.c, m_an_hint, m_irr_est)
                };
                let m2 = m_irr_local + 0.5 * dh * k1.slope;
                let k2 = slope_at(h + 0.5 * dh, m2, project(m2, k1.m_an), &mut result);
                let m3 = m_irr_local + 0.5 * dh * k2.slope;
                let k3 = slope_at(h + 0.5 * dh, m3, project(m3, k2.m_an), &mut result);
                let m4 = m_irr_local + dh * k3.slope;
                let k4 = slope_at(h + dh, m4, project(m4, k3.m_an), &mut result);
                dh / 6.0 * (k1.slope + 2.0 * k2.slope + 2.0 * k3.slope + k4.slope)
            }
        };

        let dm_guarded = reject_opposing_update(dm, dh, config.reject_opposing_update);
        if dm_guarded != dm {
            result.rejected_updates += 1;
        }
        m_irr_local += dm_guarded;
        // Keep the total-magnetisation hint roughly consistent for the next
        // sub-step; the model recomputes it exactly afterwards.
        let eval_after = evaluate_irreversible_slope(
            params,
            anhysteretic,
            config.formulation,
            h + dh,
            m_irr_local,
            m_total_local,
            direction,
            config.clamp_negative_slope,
        );
        m_total_local =
            total_magnetisation(config.formulation, params.c, eval_after.m_an, m_irr_local);
        h += dh;
    }

    result.dm_irr = m_irr_local - m_irr;
    result
}

/// Advances one magnetisation state by one applied-field sample — the whole
/// "timeless" loop of the paper, factored out of
/// [`JilesAtherton::apply_field`](crate::model::JilesAtherton::apply_field)
/// so the scalar model and the lockstep [`SoaBatch`](crate::soa::SoaBatch)
/// share one definition of the per-step increment math (and therefore stay
/// bit-identical by construction).
///
/// If the field has moved by at least `ΔH_max` since the last update, the
/// irreversible magnetisation is advanced by integrating the slope across
/// the increment; the reversible part is then recomputed algebraically via
/// a short fixed-point iteration.
///
/// # Errors
///
/// Returns [`JaError::NonFiniteField`] for a NaN/infinite field and
/// [`JaError::StateDiverged`] if the state stops being finite (possible
/// only with the guards disabled).
#[inline]
pub fn advance_state(
    params: &JaParameters,
    anhysteretic: &AnhystereticKind,
    config: &JaConfig,
    state: &mut JaState,
    stats: &mut JaStatistics,
    h: f64,
) -> Result<(), JaError> {
    if !h.is_finite() {
        return Err(JaError::NonFiniteField { value: h });
    }
    stats.samples += 1;

    // The paper's monitorH: only integrate when the accumulated field
    // change exceeds the threshold.
    let dh_accumulated = h - state.h_last_update;
    if dh_accumulated.abs() >= config.dh_max {
        let result = integrate_field_increment(
            params,
            anhysteretic,
            config,
            state.m_irr,
            state.m_total,
            state.h_last_update,
            h,
        );
        state.m_irr += result.dm_irr;
        state.h_last_update = h;
        state.updates += 1;
        stats.updates += 1;
        stats.slope_evaluations += u64::from(result.slope_evaluations);
        stats.negative_slope_events += u64::from(result.negative_slope_events);
        stats.rejected_updates += u64::from(result.rejected_updates);
    }

    // The paper's core(): effective field, anhysteretic, reversible and
    // total magnetisation, flux density.  The SystemC process settles
    // over delta cycles because `core()` re-evaluates when the total
    // magnetisation it wrote changes; the same self-consistency is
    // obtained here with a short fixed-point iteration (the map is a
    // strong contraction for physical parameter sets).
    state.h = h;
    let m_sat = params.m_sat.value();
    let mut m_total = state.m_total;
    let mut m_an = state.m_an;
    for _ in 0..FIXED_POINT_ITERATIONS {
        let h_effective = h + params.alpha * m_sat * m_total;
        m_an = anhysteretic.normalised(h_effective);
        let next = total_magnetisation(config.formulation, params.c, m_an, state.m_irr);
        let converged = (next - m_total).abs() < FIXED_POINT_TOLERANCE;
        m_total = next;
        if converged {
            break;
        }
    }
    state.m_an = m_an;
    state.m_total = m_total;
    state.m_rev = state.m_total - state.m_irr;

    if !state.is_finite() {
        return Err(JaError::StateDiverged { at_field: h });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::material::JaParameters;

    fn setup() -> (JaParameters, AnhystereticKind, JaConfig) {
        let p = JaParameters::date2006();
        let a = p.default_anhysteretic();
        (p, a, JaConfig::default())
    }

    #[test]
    fn zero_increment_is_a_no_op() {
        let (p, a, c) = setup();
        let r = integrate_field_increment(&p, &a, &c, 0.1, 0.1, 500.0, 500.0);
        assert_eq!(r.dm_irr, 0.0);
        assert_eq!(r.slope_evaluations, 0);
    }

    #[test]
    fn rising_increment_increases_m_irr() {
        let (p, a, c) = setup();
        let r = integrate_field_increment(&p, &a, &c, 0.0, 0.0, 0.0, 100.0);
        assert!(r.dm_irr > 0.0);
        assert_eq!(r.slope_evaluations, 1); // single forward-Euler evaluation
    }

    #[test]
    fn falling_increment_from_saturation_decreases_m_irr() {
        let (p, a, c) = setup();
        let r = integrate_field_increment(&p, &a, &c, 0.85, 0.9, 10_000.0, 9_900.0);
        assert!(r.dm_irr <= 0.0);
    }

    #[test]
    fn total_magnetisation_formulations() {
        // Date2006: c·m_an/(1+c) + m_irr ; Classic: m_irr + c(m_an − m_irr)
        let m = total_magnetisation(Formulation::Date2006, 0.1, 0.5, 0.2);
        assert!((m - (0.1 * 0.5 / 1.1 + 0.2)).abs() < 1e-12);
        let m = total_magnetisation(Formulation::Classic, 0.1, 0.5, 0.2);
        assert!((m - (0.2 + 0.1 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn heun_and_rk4_use_more_evaluations() {
        let (p, a, mut c) = setup();
        c.integration = SlopeIntegration::Heun;
        let heun = integrate_field_increment(&p, &a, &c, 0.0, 0.0, 0.0, 10.0);
        assert_eq!(heun.slope_evaluations, 2);
        c.integration = SlopeIntegration::RungeKutta4;
        let rk4 = integrate_field_increment(&p, &a, &c, 0.0, 0.0, 0.0, 10.0);
        assert_eq!(rk4.slope_evaluations, 4);
        // All methods should agree on the direction of the change.
        assert!(heun.dm_irr > 0.0);
        assert!(rk4.dm_irr > 0.0);
    }

    #[test]
    fn subdivision_splits_large_increment() {
        let (p, a, mut c) = setup();
        c.dh_max = 10.0;
        c.subdivide_increment = true;
        let r = integrate_field_increment(&p, &a, &c, 0.0, 0.0, 0.0, 100.0);
        assert_eq!(r.slope_evaluations, 10);
        assert!(r.dm_irr > 0.0);
    }

    #[test]
    fn opposing_update_guard_counts_rejections() {
        // Rising field but with the state far above the anhysteretic and the
        // clamp disabled, the raw slope is negative, so dm·dh < 0 and the
        // update must be rejected.
        let (p, a, mut c) = setup();
        c.clamp_negative_slope = false;
        let r = integrate_field_increment(&p, &a, &c, 0.9, 0.9, 100.0, 150.0);
        assert_eq!(r.dm_irr, 0.0);
        assert_eq!(r.rejected_updates, 1);
        assert!(r.negative_slope_events >= 1);
    }

    #[test]
    fn guards_disabled_allows_negative_updates() {
        let (p, a, mut c) = setup();
        c.clamp_negative_slope = false;
        c.reject_opposing_update = false;
        let r = integrate_field_increment(&p, &a, &c, 0.9, 0.9, 100.0, 150.0);
        assert!(r.dm_irr < 0.0);
    }

    #[test]
    fn euler_accuracy_improves_with_subdivision() {
        // Integrate the initial magnetisation curve 0 -> 5000 A/m in one go
        // versus sub-divided; the sub-divided result is the reference.
        let (p, a, c) = setup();
        let coarse = integrate_field_increment(&p, &a, &c, 0.0, 0.0, 0.0, 5000.0);
        let mut c_fine = c;
        c_fine.subdivide_increment = true;
        c_fine.dh_max = 5.0;
        let fine = integrate_field_increment(&p, &a, &c_fine, 0.0, 0.0, 0.0, 5000.0);
        // A single Euler step across 5 kA/m grossly overshoots (this is why
        // the technique needs a small ΔH_max); the sub-divided integration
        // stays physical.
        assert!(fine.dm_irr >= 0.0 && fine.dm_irr <= 1.0);
        assert!(coarse.dm_irr > fine.dm_irr);
        assert!((coarse.dm_irr - fine.dm_irr).abs() > 1e-3);
    }
}
