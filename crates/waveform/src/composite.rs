//! Waveform combinators: scaling, offsetting and superposition.
//!
//! The paper's Fig. 1 excitation is a slow triangular major sweep with
//! smaller triangular excursions superimposed, producing the non-biased
//! minor loops.  [`Superposition`] composes such stimuli from the primitive
//! generators without writing a new waveform type for every experiment.

use crate::generator::Waveform;

/// `scale · inner(t) + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scaled<W> {
    inner: W,
    scale: f64,
    offset: f64,
}

impl<W: Waveform> Scaled<W> {
    /// Scales and offsets another waveform.
    pub fn new(inner: W, scale: f64, offset: f64) -> Self {
        Self {
            inner,
            scale,
            offset,
        }
    }
}

impl<W: Waveform> Waveform for Scaled<W> {
    fn value(&self, t: f64) -> f64 {
        self.scale * self.inner.value(t) + self.offset
    }

    fn period(&self) -> Option<f64> {
        self.inner.period()
    }

    fn derivative(&self, t: f64) -> f64 {
        self.scale * self.inner.derivative(t)
    }
}

/// Sum of two waveforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sum<A, B> {
    a: A,
    b: B,
}

impl<A: Waveform, B: Waveform> Sum<A, B> {
    /// Adds two waveforms sample-by-sample.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: Waveform, B: Waveform> Waveform for Sum<A, B> {
    fn value(&self, t: f64) -> f64 {
        self.a.value(t) + self.b.value(t)
    }

    fn period(&self) -> Option<f64> {
        // The combined period is the larger one when one divides the other;
        // otherwise fall back to the larger period as an approximation.
        match (self.a.period(), self.b.period()) {
            (Some(pa), Some(pb)) => Some(pa.max(pb)),
            (p, None) | (None, p) => p,
        }
    }

    fn derivative(&self, t: f64) -> f64 {
        self.a.derivative(t) + self.b.derivative(t)
    }
}

/// Superposition of an arbitrary number of boxed waveforms.
///
/// Unlike [`Sum`] this is dynamically sized, which is what the experiment
/// harness wants when the number of minor-loop excursions is a parameter.
#[derive(Default)]
pub struct Superposition {
    components: Vec<Box<dyn Waveform + Send + Sync>>,
}

impl Superposition {
    /// Creates an empty superposition (identically zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component waveform.
    pub fn push<W: Waveform + Send + Sync + 'static>(&mut self, w: W) {
        self.components.push(Box::new(w));
    }

    /// Builder-style [`push`](Self::push).
    pub fn with<W: Waveform + Send + Sync + 'static>(mut self, w: W) -> Self {
        self.push(w);
        self
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when the superposition has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl std::fmt::Debug for Superposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Superposition")
            .field("components", &self.components.len())
            .finish()
    }
}

impl Waveform for Superposition {
    fn value(&self, t: f64) -> f64 {
        self.components.iter().map(|c| c.value(t)).sum()
    }

    fn period(&self) -> Option<f64> {
        self.components
            .iter()
            .filter_map(|c| c.period())
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
    }

    fn derivative(&self, t: f64) -> f64 {
        self.components.iter().map(|c| c.derivative(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Constant;
    use crate::sine::Sine;
    use crate::triangular::Triangular;

    #[test]
    fn scaled_waveform() {
        let w = Scaled::new(Constant(2.0), 3.0, 1.0);
        assert_eq!(w.value(0.0), 7.0);
        assert_eq!(w.derivative(0.0), 0.0);
    }

    #[test]
    fn scaled_preserves_period() {
        let tri = Triangular::new(1.0, 0.5).unwrap();
        let w = Scaled::new(tri, 2.0, 0.0);
        assert_eq!(w.period(), Some(0.5));
        assert!((w.derivative(0.01) - 2.0 * tri.derivative(0.01)).abs() < 1e-12);
    }

    #[test]
    fn sum_of_waveforms() {
        let a = Constant(1.0);
        let b = Sine::new(2.0, 50.0).unwrap();
        let w = Sum::new(a, b);
        assert!((w.value(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(w.period(), Some(0.02));
    }

    #[test]
    fn superposition_combines_components() {
        let mut sup = Superposition::new();
        assert!(sup.is_empty());
        sup.push(Constant(1.0));
        sup.push(Constant(2.5));
        assert_eq!(sup.len(), 2);
        assert!((sup.value(42.0) - 3.5).abs() < 1e-12);
        assert_eq!(sup.period(), None);
    }

    #[test]
    fn superposition_minor_loop_stimulus() {
        // Major triangular sweep + small fast triangular ripple = the Fig. 1
        // style excitation.
        let major = Triangular::new(10_000.0, 1.0).unwrap();
        let ripple = Triangular::new(1_500.0, 0.1).unwrap();
        let sup = Superposition::new().with(major).with(ripple);
        assert_eq!(sup.period(), Some(1.0));
        let peak = (0..1000)
            .map(|i| sup.value(i as f64 * 1e-3).abs())
            .fold(0.0, f64::max);
        assert!(peak > 10_000.0 && peak <= 11_500.0 + 1e-9);
    }

    #[test]
    fn superposition_debug_shows_component_count() {
        let sup = Superposition::new().with(Constant(0.0));
        assert!(format!("{sup:?}").contains("components"));
    }
}
