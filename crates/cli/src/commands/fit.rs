//! `ja fit` — fit JA parameters to a measured BH loop.

use hdl_models::report::{metrics_value, report_envelope};
use ja_hysteresis::fitting::{fit_major_loop, FitOptions};
use ja_hysteresis::json::JsonValue;
use magnetics::bh::BhCurve;
use magnetics::loop_analysis::loop_metrics;
use magnetics::material::JaParameters;
use waveform::export::read_csv;
use waveform::trace::Trace;

use crate::common::{read_input, write_output};
use crate::{opts, CliError};

/// Per-subcommand help (see `ja help fit`).
pub const HELP: &str = "\
ja fit — extract JA parameters from a measured BH loop (CSV in, JSON out)

USAGE:
    ja fit --input PATH [OPTIONS]

OPTIONS:
    --input PATH          measured-loop CSV (required).  Header row names
                          the columns; the loop must contain at least one
                          full major cycle.
    --h-column NAME       field column                       [default: h]
    --b-column NAME       flux-density column                [default: b]
    --h-peak A_PER_M      measurement's peak field
                          [default: max |H| of the input]
    --passes N            coordinate-search passes           [default: 6]
    --initial-step FRAC   initial relative perturbation      [default: 0.4]
    --sweep-step A_PER_M  candidate-sweep field step         [default: 50]
    --out PATH            write to PATH instead of stdout

The JSON report is `kind: \"fit\"`: input_samples, h_peak_a_per_m, the
measured loop metrics, the fitted `params` object (m_sat_a_per_m,
a_a_per_m, a2_a_per_m, k_a_per_m, alpha, c), the residual `cost`
(0 = exact metric match) and the number of candidate `evaluations`.";

/// Serialises a parameter set with the schema's unit-suffixed keys.
pub fn params_value(params: &JaParameters) -> JsonValue {
    JsonValue::object()
        .with("m_sat_a_per_m", params.m_sat.value())
        .with("a_a_per_m", params.a)
        .with("a2_a_per_m", params.a2)
        .with("k_a_per_m", params.k)
        .with("alpha", params.alpha)
        .with("c", params.c)
}

/// Extracts a named column, with an error that lists what is available.
pub fn column<'t>(trace: &'t Trace, name: &str) -> Result<&'t [f64], CliError> {
    trace.column(name).map_err(|_| {
        CliError::failure(format!(
            "input has no column `{name}` (available: {})",
            trace.names().join(", ")
        ))
    })
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failures for unreadable/degenerate input
/// or a fit that cannot run.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &[],
        &[
            "input",
            "h-column",
            "b-column",
            "h-peak",
            "passes",
            "initial-step",
            "sweep-step",
            "out",
        ],
    )?;
    parsed.no_positionals()?;

    let text = read_input(parsed.require("input")?)?;
    let trace = read_csv(&text).map_err(|err| CliError::failure(err.to_string()))?;
    let h = column(&trace, parsed.value("h-column").unwrap_or("h"))?;
    let b = column(&trace, parsed.value("b-column").unwrap_or("b"))?;

    let mut curve = BhCurve::with_capacity(h.len());
    for (&h, &b) in h.iter().zip(b) {
        curve.push_raw(h, b, 0.0);
    }
    let h_peak_default = h.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()));
    let h_peak = parsed.f64_or("h-peak", h_peak_default)?;

    let options = FitOptions {
        passes: parsed.usize_or("passes", 6)?,
        initial_step: parsed.f64_or("initial-step", 0.4)?,
        sweep_step: parsed.f64_or("sweep-step", 50.0)?,
    };
    // Bad option values are a bad invocation (exit 2), not a runtime
    // failure — mirror how `ja inverse` treats InverseOptions.
    options
        .validate()
        .map_err(|err| CliError::usage(err.to_string()))?;
    let measured = loop_metrics(&curve)
        .map_err(|err| CliError::failure(format!("input is not a closed BH loop: {err}")))?;
    let fit = fit_major_loop(&curve, h_peak, &options)
        .map_err(|err| CliError::failure(err.to_string()))?;

    let doc = report_envelope("fit")
        .with("input_samples", curve.len())
        .with("h_peak_a_per_m", h_peak)
        .with("measured", metrics_value(&measured))
        .with("params", params_value(&fit.params))
        .with("cost", fit.cost)
        .with("evaluations", fit.evaluations);
    write_output(parsed.value("out"), &doc.to_pretty_string())
}
