//! Small statistics helpers for comparing simulation result series.

/// Summary statistics of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Root-mean-square value.
    pub rms: f64,
}

/// Computes [`SeriesStats`] for a non-empty series; returns `None` when the
/// series is empty or contains non-finite values.
pub fn series_stats(series: &[f64]) -> Option<SeriesStats> {
    if series.is_empty() || series.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &v in series {
        min = min.min(v);
        max = max.max(v);
        sum += v;
        sum_sq += v * v;
    }
    let n = series.len() as f64;
    Some(SeriesStats {
        min,
        max,
        mean: sum / n,
        rms: (sum_sq / n).sqrt(),
    })
}

/// Maximum absolute difference between two equally long series; `None` when
/// the lengths differ or either series is empty.
pub fn max_abs_difference(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    Some(
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max),
    )
}

/// Root-mean-square difference between two equally long series; `None` when
/// the lengths differ or either series is empty.
pub fn rms_difference(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    let sum_sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    Some((sum_sq / a.len() as f64).sqrt())
}

/// Relative maximum difference: `max|a−b| / max|a|`; `None` under the same
/// conditions as [`max_abs_difference`] or when `a` is identically zero.
pub fn relative_max_difference(a: &[f64], b: &[f64]) -> Option<f64> {
    let max_diff = max_abs_difference(a, b)?;
    let scale = a.iter().map(|v| v.abs()).fold(0.0, f64::max);
    if scale == 0.0 {
        return None;
    }
    Some(max_diff / scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_simple_series() {
        let s = series_stats(&[1.0, -1.0, 3.0, -3.0]).unwrap();
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 0.0);
        assert!((s.rms - (5.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_reject_empty_or_nan() {
        assert!(series_stats(&[]).is_none());
        assert!(series_stats(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn differences() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 2.0];
        assert_eq!(max_abs_difference(&a, &b).unwrap(), 1.0);
        assert!((rms_difference(&a, &b).unwrap() - (1.25_f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((relative_max_difference(&a, &b).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn differences_reject_mismatched_lengths() {
        assert!(max_abs_difference(&[1.0], &[1.0, 2.0]).is_none());
        assert!(rms_difference(&[], &[]).is_none());
        assert!(relative_max_difference(&[0.0, 0.0], &[0.0, 0.0]).is_none());
    }
}
