//! Fixed-step transient analysis with per-step Newton iteration.

use crate::circuit::elements::{CommitContext, StampContext};
use crate::circuit::{Circuit, Node};
use crate::error::SolverError;
use crate::linalg::Matrix;

/// Configuration of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientAnalysis {
    /// Time-step size in seconds.
    pub dt: f64,
    /// End time in seconds (the run starts at `t = 0`).
    pub t_end: f64,
    /// Maximum Newton iterations per time step.
    pub max_newton_iterations: usize,
    /// Convergence tolerance on the solution update (per unknown, relative
    /// to `1 + |x|`).
    pub tolerance: f64,
}

impl TransientAnalysis {
    /// Creates a transient analysis from a step size and an end time, with
    /// default Newton settings (50 iterations, 1e-9 tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidStep`] for non-finite or non-positive
    /// `dt` / `t_end`, or `dt > t_end`.
    pub fn new(dt: f64, t_end: f64) -> Result<Self, SolverError> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(SolverError::InvalidStep {
                name: "dt",
                value: dt,
            });
        }
        if !t_end.is_finite() || t_end <= 0.0 || dt > t_end {
            return Err(SolverError::InvalidStep {
                name: "t_end",
                value: t_end,
            });
        }
        Ok(Self {
            dt,
            t_end,
            max_newton_iterations: 50,
            tolerance: 1e-9,
        })
    }

    /// Overrides the Newton iteration limit.
    pub fn with_max_newton_iterations(mut self, limit: usize) -> Self {
        self.max_newton_iterations = limit.max(1);
        self
    }

    /// Overrides the convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Runs the analysis on a circuit, consuming and returning the mutated
    /// circuit (element states advance as the transient progresses) along
    /// with the result traces.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidCircuit`] for an empty circuit,
    /// [`SolverError::SingularMatrix`] when the MNA matrix cannot be
    /// factorised (floating node, inconsistent sources) and propagates any
    /// other solver error.
    pub fn run(&self, circuit: &mut Circuit) -> Result<TransientResult, SolverError> {
        let node_count = circuit.node_count();
        if circuit.element_count() == 0 {
            return Err(SolverError::InvalidCircuit {
                reason: "circuit has no elements".into(),
            });
        }

        // Assign branch offsets.
        let mut branch_offsets = Vec::with_capacity(circuit.element_count());
        let mut total_branches = 0usize;
        for element in circuit.elements() {
            branch_offsets.push(total_branches);
            total_branches += element.branch_count();
        }
        let n_unknowns = node_count - 1 + total_branches;
        if n_unknowns == 0 {
            return Err(SolverError::InvalidCircuit {
                reason: "circuit has no unknowns (only ground)".into(),
            });
        }

        let steps = (self.t_end / self.dt).ceil() as usize;
        let mut x_prev = vec![0.0; n_unknowns];
        let mut matrix = Matrix::zeros(n_unknowns, n_unknowns);
        let mut rhs = vec![0.0; n_unknowns];

        let mut times = Vec::with_capacity(steps + 1);
        let mut solutions = Vec::with_capacity(steps + 1);
        times.push(0.0);
        solutions.push(x_prev.clone());

        let mut stats = TransientStats::default();
        let mut t = 0.0;

        for _ in 0..steps {
            let h = self.dt.min(self.t_end - t);
            let t_next = t + h;
            let mut x_guess = x_prev.clone();
            let mut converged = false;

            for iteration in 0..self.max_newton_iterations {
                matrix.clear();
                rhs.iter_mut().for_each(|v| *v = 0.0);
                for (element, &offset) in circuit.elements().iter().zip(&branch_offsets) {
                    let mut ctx = StampContext {
                        matrix: &mut matrix,
                        rhs: &mut rhs,
                        x_guess: &x_guess,
                        x_prev: &x_prev,
                        node_count,
                        branch_offset: offset,
                        time: t_next,
                        dt: h,
                    };
                    element.stamp(&mut ctx);
                }
                let x_new = matrix.solve(&rhs)?;
                stats.lu_solves += 1;
                stats.newton_iterations += 1;

                let mut max_delta: f64 = 0.0;
                for (new, old) in x_new.iter().zip(&x_guess) {
                    let scale = 1.0 + new.abs().max(old.abs());
                    max_delta = max_delta.max((new - old).abs() / scale);
                }
                x_guess = x_new;
                if max_delta <= self.tolerance && iteration > 0 {
                    converged = true;
                    break;
                }
                // A purely linear circuit converges after the first solve;
                // detect that cheaply by checking the delta directly.
                if max_delta <= self.tolerance * 1e-3 {
                    converged = true;
                    break;
                }
            }
            if !converged {
                stats.non_converged_steps += 1;
            }

            // Commit element states.
            for (element, &offset) in circuit.elements_mut().iter_mut().zip(&branch_offsets) {
                let ctx = CommitContext {
                    x: &x_guess,
                    node_count,
                    branch_offset: offset,
                    time: t_next,
                    dt: h,
                };
                element.commit(&ctx);
            }

            x_prev = x_guess;
            t = t_next;
            times.push(t);
            solutions.push(x_prev.clone());
        }

        Ok(TransientResult {
            times,
            solutions,
            node_count,
            branch_offsets,
            stats,
        })
    }
}

/// Solver statistics of a transient run — the cost / robustness numbers the
/// baseline-comparison experiments report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransientStats {
    /// Total Newton iterations over all steps.
    pub newton_iterations: usize,
    /// Total LU factorisations + solves.
    pub lu_solves: usize,
    /// Steps that hit the Newton iteration limit without converging.
    pub non_converged_steps: usize,
}

/// Result of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    solutions: Vec<Vec<f64>>,
    node_count: usize,
    branch_offsets: Vec<usize>,
    stats: TransientStats,
}

impl TransientResult {
    /// The time points (starting at 0).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when the result holds no samples (cannot happen for a
    /// successful run).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Solver statistics.
    pub fn stats(&self) -> TransientStats {
        self.stats
    }

    /// Voltage series of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidCircuit`] for an unknown node.
    pub fn voltage(&self, node: Node) -> Result<Vec<f64>, SolverError> {
        if node.0 >= self.node_count {
            return Err(SolverError::InvalidCircuit {
                reason: format!("unknown node {}", node.0),
            });
        }
        if node.is_ground() {
            return Ok(vec![0.0; self.times.len()]);
        }
        Ok(self.solutions.iter().map(|x| x[node.0 - 1]).collect())
    }

    /// Branch-current series of the element at `element_index` (as returned
    /// by [`Circuit::add`]); `local` selects the branch for elements with
    /// several.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidCircuit`] when the element index is out
    /// of range.
    pub fn branch_current(
        &self,
        element_index: usize,
        local: usize,
    ) -> Result<Vec<f64>, SolverError> {
        let offset =
            *self
                .branch_offsets
                .get(element_index)
                .ok_or_else(|| SolverError::InvalidCircuit {
                    reason: format!("unknown element index {element_index}"),
                })?;
        let idx = self.node_count - 1 + offset + local;
        Ok(self.solutions.iter().map(|x| x[idx]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::core_model::LinearCore;
    use crate::circuit::elements::{
        Capacitor, Inductor, NonlinearInductor, Resistor, VoltageSource,
    };
    use magnetics::constants::MU0;
    use waveform::generator::Constant;

    #[test]
    fn analysis_validation() {
        assert!(TransientAnalysis::new(0.0, 1.0).is_err());
        assert!(TransientAnalysis::new(1e-3, 0.0).is_err());
        assert!(TransientAnalysis::new(2.0, 1.0).is_err());
        assert!(TransientAnalysis::new(1e-3, 1.0).is_ok());
    }

    #[test]
    fn empty_circuit_rejected() {
        let mut c = Circuit::new();
        let analysis = TransientAnalysis::new(1e-3, 1e-2).unwrap();
        assert!(analysis.run(&mut c).is_err());
    }

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let vin = c.node();
        let vout = c.node();
        c.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(10.0)))
            .unwrap();
        c.add("R1", Resistor::new(vin, vout, 1000.0).unwrap())
            .unwrap();
        c.add("R2", Resistor::new(vout, Node::GROUND, 1000.0).unwrap())
            .unwrap();
        let result = TransientAnalysis::new(1e-4, 1e-3)
            .unwrap()
            .run(&mut c)
            .unwrap();
        let v = result.voltage(vout).unwrap();
        assert!((v.last().unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(result.voltage(Node::GROUND).unwrap().last().unwrap(), &0.0);
        assert!(result.voltage(Node(9)).is_err());
        assert!(!result.is_empty());
        assert!(result.stats().non_converged_steps == 0);
    }

    #[test]
    fn rc_charging_curve() {
        // 1V step into R = 1k, C = 1µF: tau = 1 ms.
        let mut c = Circuit::new();
        let vin = c.node();
        let vc = c.node();
        c.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(1.0)))
            .unwrap();
        c.add("R1", Resistor::new(vin, vc, 1000.0).unwrap())
            .unwrap();
        c.add("C1", Capacitor::new(vc, Node::GROUND, 1e-6).unwrap())
            .unwrap();
        let result = TransientAnalysis::new(1e-5, 5e-3)
            .unwrap()
            .run(&mut c)
            .unwrap();
        let v = result.voltage(vc).unwrap();
        // After 5 tau the capacitor is essentially charged.
        assert!((v.last().unwrap() - 1.0).abs() < 0.01);
        // After 1 tau it should be ~63%.
        let idx_tau = (1e-3 / 1e-5) as usize;
        assert!((v[idx_tau] - 0.632).abs() < 0.02, "v(tau) = {}", v[idx_tau]);
    }

    #[test]
    fn rl_current_rise() {
        // 1V step into R = 10 Ω in series with L = 10 mH: i -> 0.1 A,
        // tau = 1 ms.
        let mut c = Circuit::new();
        let vin = c.node();
        let vl = c.node();
        c.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(1.0)))
            .unwrap();
        c.add("R1", Resistor::new(vin, vl, 10.0).unwrap()).unwrap();
        let l_index = c
            .add("L1", Inductor::new(vl, Node::GROUND, 10e-3).unwrap())
            .unwrap();
        let result = TransientAnalysis::new(1e-5, 6e-3)
            .unwrap()
            .run(&mut c)
            .unwrap();
        let i = result.branch_current(l_index, 0).unwrap();
        assert!(
            (i.last().unwrap() - 0.1).abs() < 2e-3,
            "i_end = {}",
            i.last().unwrap()
        );
        assert!(result.branch_current(99, 0).is_err());
    }

    #[test]
    fn nonlinear_inductor_with_linear_core_matches_linear_inductor() {
        // A linear core of mu_r makes the wound core equivalent to
        // L = mu0 * mu_r * N^2 * A / l.
        let turns = 100.0;
        let area = 1e-4;
        let path = 0.1;
        let mu_r = 1000.0;
        let l_equiv = MU0 * mu_r * turns * turns * area / path;

        let build = |use_nonlinear: bool| -> (Vec<f64>, usize) {
            let mut c = Circuit::new();
            let vin = c.node();
            let vl = c.node();
            c.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(1.0)))
                .unwrap();
            c.add("R1", Resistor::new(vin, vl, 50.0).unwrap()).unwrap();
            let idx = if use_nonlinear {
                c.add(
                    "NL",
                    NonlinearInductor::new(
                        vl,
                        Node::GROUND,
                        turns,
                        area,
                        path,
                        LinearCore::new(mu_r),
                    )
                    .unwrap(),
                )
                .unwrap()
            } else {
                c.add("L1", Inductor::new(vl, Node::GROUND, l_equiv).unwrap())
                    .unwrap()
            };
            let result = TransientAnalysis::new(2e-6, 2e-3)
                .unwrap()
                .run(&mut c)
                .unwrap();
            (result.branch_current(idx, 0).unwrap(), result.len())
        };

        let (i_nl, n1) = build(true);
        let (i_lin, n2) = build(false);
        assert_eq!(n1, n2);
        let max_diff = i_nl
            .iter()
            .zip(&i_lin)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-4, "max difference {max_diff}");
    }

    #[test]
    fn singular_circuit_reported() {
        // A floating node: capacitor chain with no DC path is fine for BE,
        // so instead build two voltage sources in parallel with different
        // values -> inconsistent, still solvable (they fight through branch
        // currents) ... use a node connected to nothing but a current
        // source? Simplest singular case: node with no element connection is
        // impossible through the API, so use two ideal voltage sources in
        // series loop with no resistance, which yields a singular MNA matrix
        // only when shorted; instead verify that a lone capacitor with both
        // terminals on the same node is rejected as singular.
        let mut c = Circuit::new();
        let n1 = c.node();
        let _n_floating = c.node(); // allocated but never connected
        c.add("V1", VoltageSource::new(n1, Node::GROUND, Constant(1.0)))
            .unwrap();
        c.add("R1", Resistor::new(n1, Node::GROUND, 100.0).unwrap())
            .unwrap();
        let analysis = TransientAnalysis::new(1e-4, 1e-3).unwrap();
        let result = analysis.run(&mut c);
        assert!(matches!(result, Err(SolverError::SingularMatrix { .. })));
    }
}
