//! Event-kernel microbenches: the cost of the simulation substrate under
//! the SystemC-style model, isolated from the hysteresis physics.
//!
//! Three shapes bound the kernel overhead the `systemc-event-kernel`
//! backend pays on top of the direct model:
//!
//! * `schedule_drain_10k` — timed-queue throughput: 10 000 stimulus writes
//!   scheduled up front, then drained through `run_until` (heap push/pop
//!   plus the per-event settle machinery);
//! * `delta_storm_settle` — a single settle phase forced through 1 000
//!   delta cycles by a self-incrementing feedback process: pure per-cycle
//!   cost (commit, ready-set swap, one activation per cycle);
//! * `chain_sweep_1k` — the DC-sweep usage pattern of the JA module: one
//!   `write_initial` + `settle` per sample over a two-process
//!   combinational chain, reusing one kernel across all samples.
//!
//! Before timing anything, `main` asserts with a counting global
//! allocator that a *warm* kernel (scratch buffers already grown) runs
//! its delta cycles without a single heap allocation — the contract the
//! allocation-free overhaul introduced.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{black_box, Criterion};
use hdl_kernel::kernel::Kernel;
use hdl_kernel::signal::SignalId;
use hdl_kernel::value::Value;
use hdl_kernel::SimTime;

/// A [`System`]-backed allocator that counts allocations and live bytes.
/// Relaxed atomics are fine: the measured sections are single-threaded
/// and read the counters only after the workload completes.
struct CountingAllocator {
    allocs: AtomicUsize,
    live: AtomicUsize,
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator {
    allocs: AtomicUsize::new(0),
    live: AtomicUsize::new(0),
};

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            self.allocs.fetch_add(1, Ordering::Relaxed);
            self.live.fetch_add(layout.size(), Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

impl CountingAllocator {
    fn allocs(&self) -> usize {
        self.allocs.load(Ordering::Relaxed)
    }

    fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }
}

/// A two-process combinational chain (`b = 2a`, `c = b + 1`) — the
/// smallest network that exercises signal propagation across delta
/// cycles.
fn chain_kernel() -> (Kernel, SignalId, SignalId) {
    let mut k = Kernel::new();
    let a = k.add_signal("a", Value::Real(0.0));
    let b = k.add_signal("b", Value::Real(0.0));
    let c = k.add_signal("c", Value::Real(0.0));
    k.add_process("double", &[a], move |ctx| {
        let x = ctx.read_real(a)?;
        ctx.write_real(b, 2.0 * x)
    })
    .expect("valid sensitivity");
    k.add_process("add_one", &[b], move |ctx| {
        let x = ctx.read_real(b)?;
        ctx.write_real(c, x + 1.0)
    })
    .expect("valid sensitivity");
    (k, a, c)
}

/// Asserts that a warm kernel runs a DC sweep without touching the heap:
/// after the scratch buffers have grown once, `write_initial` + `settle`
/// perform zero allocations across a thousand samples.
fn assert_warm_delta_cycles_allocate_nothing() {
    let (mut k, a, c) = chain_kernel();
    // Warm-up: grow the ready sets and the changed-signal buffer.
    for i in 0..16 {
        k.write_initial(a, Value::Real(f64::from(i)))
            .expect("write");
        k.settle().expect("settle");
    }
    let allocs_before = ALLOC.allocs();
    let live_before = ALLOC.live();
    for i in 0..1_000 {
        k.write_initial(a, Value::Real(f64::from(i)))
            .expect("write");
        k.settle().expect("settle");
    }
    let allocs = ALLOC.allocs() - allocs_before;
    let live = ALLOC.live().wrapping_sub(live_before);
    assert_eq!(
        allocs, 0,
        "a warm delta cycle must not allocate (saw {allocs} allocations)"
    );
    assert_eq!(live, 0, "warm settle must not retain bytes (saw {live})");
    assert_eq!(k.read_real(c).expect("read"), 2.0 * 999.0 + 1.0);
    println!("warm kernel: 1000 samples settled with 0 allocations, 0 bytes retained\n");
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_kernel");
    group.sample_size(20);

    // Timed-queue throughput: schedule a 10k-sample stimulus, then drain
    // it.  The kernel is reset and reused across iterations, so steady
    // state measures heap push/pop and the drain buffer, not Vec growth.
    {
        let (mut k, a, _c) = chain_kernel();
        group.bench_function("schedule_drain_10k", |b| {
            b.iter(|| {
                k.reset();
                for i in 1..=10_000u32 {
                    k.schedule_write(
                        SimTime::from_micros(u64::from(i)),
                        a,
                        Value::Real(f64::from(i)),
                    );
                }
                let events = k
                    .run_until(SimTime::from_micros(10_000))
                    .expect("drain stimulus");
                black_box(events)
            })
        });
    }

    // Pure delta-cycle cost: one settle phase forced through 1000 cycles
    // by a self-incrementing feedback counter (one activation, one commit
    // and one ready-set swap per cycle).
    {
        let mut k = Kernel::new().with_delta_limit(2_000);
        let n = k.add_signal("n", Value::Int(0));
        k.add_process("count_up", &[n], move |ctx| {
            let v = ctx.read_int(n)?;
            if v < 1_000 {
                ctx.write_int(n, v + 1)?;
            }
            Ok(())
        })
        .expect("valid sensitivity");
        group.bench_function("delta_storm_settle", |b| {
            b.iter(|| {
                k.reset();
                let cycles = k.settle().expect("settle");
                black_box(cycles)
            })
        });
    }

    // The JA-module usage pattern: one write_initial + settle per sample,
    // one kernel reused for the whole sweep.
    {
        let (mut k, a, c) = chain_kernel();
        group.bench_function("chain_sweep_1k", |b| {
            b.iter(|| {
                k.reset();
                for i in 0..1_000 {
                    k.write_initial(a, Value::Real(f64::from(i)))
                        .expect("write");
                    k.settle().expect("settle");
                }
                black_box(k.read_real(c).expect("read"))
            })
        });
    }

    // The real SystemC-style JA module on the paper's Fig. 1 stimulus,
    // reset and reused across iterations — module + kernel cost with no
    // scenario harness (no metrics extraction, no JaSample conversion),
    // and the steady-state shape the `Kernel::reset` reuse contract
    // targets.
    {
        use hdl_models::comparison::fig1_schedule;
        use hdl_models::systemc::SystemCJaCore;
        use ja_hysteresis::backend::HysteresisBackend;
        let schedule = fig1_schedule(10.0).expect("valid schedule");
        let mut module = SystemCJaCore::date2006().expect("valid module");
        group.bench_function("ja_module_fig1_reused", |b| {
            b.iter(|| {
                HysteresisBackend::reset(&mut module).expect("reset");
                let curve = module.run_schedule(&schedule).expect("sweep");
                black_box(curve.len())
            })
        });
    }

    group.finish();
}

fn main() {
    assert_warm_delta_cycles_allocate_nothing();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
