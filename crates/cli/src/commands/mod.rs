//! The `ja` subcommands.

pub mod batch;
pub mod bench_gate;
pub mod compare;
pub mod fit;
pub mod inverse;
pub mod sweep;
pub mod transient;
