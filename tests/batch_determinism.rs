//! Determinism of the parallel batch executor: the same `ScenarioGrid` run
//! with 1, 2 and 8 workers must produce `BatchReport`s whose entries are
//! identical in order and in floating-point content (bitwise).  Only the
//! timing fields (`wall_clock`, `elapsed`, `ScenarioOutcome::runtime`) may
//! differ between runs.

use ja_repro::hdl_models::exec::BatchRunner;
use ja_repro::hdl_models::scenario::{BackendKind, BatchReport, Excitation, ScenarioGrid};
use ja_repro::ja_hysteresis::config::JaConfig;

fn grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .backends(BackendKind::ALL)
        .config("dh10", JaConfig::default())
        .config("dh25", JaConfig::default().with_dh_max(25.0))
        .excitation("fig1", Excitation::fig1(500.0).expect("excitation"))
        .excitation(
            "major",
            Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
        )
}

/// Everything in a report that must be reproducible, with the
/// floating-point payload captured bit-for-bit.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    name: String,
    payload: Result<OutcomeBits, String>,
}

#[derive(Debug, PartialEq, Eq)]
struct OutcomeBits {
    backend: &'static str,
    samples: u64,
    updates: u64,
    slope_evaluations: u64,
    curve_bits: Vec<(u64, u64, u64)>,
    metric_bits: Option<(u64, u64, u64, u64)>,
}

fn fingerprint(report: &BatchReport) -> Vec<Fingerprint> {
    report
        .entries
        .iter()
        .map(|entry| Fingerprint {
            name: entry.scenario.name.clone(),
            payload: match &entry.outcome {
                Ok(outcome) => Ok(OutcomeBits {
                    backend: outcome.backend.label(),
                    samples: outcome.stats.samples,
                    updates: outcome.stats.updates,
                    slope_evaluations: outcome.stats.slope_evaluations,
                    curve_bits: outcome
                        .curve
                        .points()
                        .iter()
                        .map(|p| {
                            (
                                p.h.value().to_bits(),
                                p.b.as_tesla().to_bits(),
                                p.m.value().to_bits(),
                            )
                        })
                        .collect(),
                    metric_bits: outcome.metrics.map(|m| {
                        (
                            m.b_max.as_tesla().to_bits(),
                            m.coercivity.value().to_bits(),
                            m.remanence.as_tesla().to_bits(),
                            m.loop_area.to_bits(),
                        )
                    }),
                }),
                Err(err) => Err(err.to_string()),
            },
        })
        .collect()
}

#[test]
fn batch_report_is_bit_identical_across_worker_counts() {
    let scenarios = grid().scenarios().expect("non-empty grid");
    assert_eq!(scenarios.len(), 16); // 4 backends x 2 configs x 2 excitations

    let single = BatchRunner::new().workers(1).run(scenarios.clone());
    assert_eq!(single.workers, 1);
    assert_eq!(single.failures().count(), 0);
    let reference = fingerprint(&single);
    assert_eq!(reference.len(), scenarios.len());

    for workers in [2, 8] {
        let parallel = BatchRunner::new().workers(workers).run(scenarios.clone());
        assert_eq!(parallel.workers, workers);
        assert_eq!(
            fingerprint(&parallel),
            reference,
            "{workers}-worker report diverged from the single-worker report"
        );
    }
}

#[test]
fn run_batch_default_matches_single_worker() {
    let scenarios = grid().scenarios().expect("non-empty grid");
    let default_run = ja_repro::hdl_models::scenario::run_batch(scenarios.clone());
    let single = BatchRunner::new().workers(1).run(scenarios);
    assert_eq!(fingerprint(&default_run), fingerprint(&single));
    assert!(default_run.workers >= 1);
}
