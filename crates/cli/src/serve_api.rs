//! The `ja serve` request layer: strict parsing of versioned request
//! documents, content-addressed cache keys, and dispatch onto the same
//! engines the offline subcommands use.
//!
//! The wire contract is specified in `docs/PROTOCOL.md`; the short
//! version: `POST /v1/eval` takes a `schema_version: 1` request document
//! (`batch_request` | `fit_request` | `sweep_request` |
//! `transient_request`), and the response body is **byte-identical** to
//! what the corresponding offline subcommand (`ja batch`, `ja fit`,
//! `ja sweep --format json`, `ja transient --format json`) would write
//! for the same inputs. A `batch_request` with `options.stream` instead
//! answers with an `application/x-ndjson` stream whose bytes equal the
//! `ja batch --format ndjson` file — same writer, no cache (see
//! [`batch_stream_response`]). That identity is load-bearing: it is what makes
//! the [`ResultCache`] correct (a cached body *is* the answer) and it is
//! asserted by CI's cli-smoke job with `cmp`.
//!
//! To guarantee it, requests reuse the offline code paths rather than
//! reimplementing them: excitation objects are rendered to the grid
//! config's `kind key=value` spec format and parsed by
//! [`grid_config::parse_excitation`], materials/backends/routing go
//! through [`crate::common`]'s lookup tables, and reports are built by
//! [`hdl_models::report`] with timings off (the serve layer never emits
//! run-dependent fields).

use std::sync::atomic::{AtomicBool, Ordering};

use hdl_models::exec::{BatchRunner, SoaRouting};
use hdl_models::fit::{fit_batch, FitJob, MultiStartOptions};
use hdl_models::report::{batch_report_value, fit_report_value, write_ndjson_batch};
use hdl_models::scenario::{Excitation, Scenario, ScenarioGrid};
use hdl_models::serve::{error_response, HttpRequest, HttpResponse, ResultCache};
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::fitting::FitOptions;
use ja_hysteresis::json::{content_hash, JsonValue, SCHEMA_VERSION, SCHEMA_VERSION_KEY};
use magnetics::bh::BhCurve;

use crate::common::{
    backend_by_name, backend_set_by_name, config_name, enveloped_outcome, material_by_name,
    routing_by_name, thermal_by_name,
};
use crate::grid_config;

/// Everything the request handler needs across requests.
pub struct ServeState<'a> {
    /// The drain flag shared with the accept loop; `POST /v1/shutdown`
    /// sets it.
    pub shutdown: &'a AtomicBool,
    /// The content-addressed response cache.
    pub cache: ResultCache,
    /// Worker threads used to *evaluate* one request (the batch/fit
    /// pools), as opposed to the server's request workers. `0` = one per
    /// core. A server policy, deliberately not part of the request
    /// schema: reports are byte-identical for any value.
    pub eval_workers: usize,
}

/// A request failure: the HTTP status it maps to and the message for the
/// `kind:"error"` document.
struct ApiError {
    status: u16,
    message: String,
}

impl ApiError {
    /// `400` — the request document itself is wrong.
    fn bad(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// `422` — the request was well-formed but the evaluation failed.
    fn unprocessable(message: impl Into<String>) -> Self {
        Self {
            status: 422,
            message: message.into(),
        }
    }
}

/// Routes one parsed HTTP request. This is the handler closure `ja
/// serve` injects into [`hdl_models::serve::serve`].
pub fn handle_request(state: &ServeState<'_>, request: &HttpRequest) -> HttpResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/health") => health_response(state),
        ("POST", "/v1/eval") => match eval(state, &request.body) {
            Ok(response) => response,
            Err(err) => error_response(err.status, &err.message),
        },
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::Release);
            let doc = JsonValue::object()
                .with(SCHEMA_VERSION_KEY, SCHEMA_VERSION)
                .with("kind", "shutdown")
                .with("draining", true);
            HttpResponse::json(200, doc.to_pretty_string())
        }
        (_, "/v1/health" | "/v1/eval" | "/v1/shutdown") => error_response(
            405,
            &format!(
                "method {} is not allowed on {} (GET /v1/health, POST /v1/eval, POST /v1/shutdown)",
                request.method, request.path
            ),
        ),
        (_, path) => error_response(
            404,
            &format!("unknown path `{path}` (GET /v1/health, POST /v1/eval, POST /v1/shutdown)"),
        ),
    }
}

fn health_response(state: &ServeState<'_>) -> HttpResponse {
    let stats = state.cache.stats();
    let doc = JsonValue::object()
        .with(SCHEMA_VERSION_KEY, SCHEMA_VERSION)
        .with("kind", "health")
        .with("status", "ok")
        .with("eval_workers", state.eval_workers)
        .with(
            "cache",
            JsonValue::object()
                .with("entries", stats.entries)
                .with("bytes", stats.bytes)
                .with("budget_bytes", stats.budget_bytes)
                .with("hits", stats.hits)
                .with("misses", stats.misses)
                .with("evictions", stats.evictions),
        );
    HttpResponse::json(200, doc.to_pretty_string())
}

/// Per-request options shared by every request kind (each kind allows a
/// subset — see [`eval`]). Defaults mirror the offline CLI defaults, so
/// an empty `options` object evaluates exactly like the bare subcommand.
struct RequestOptions {
    routing: SoaRouting,
    cache_info: bool,
    stream: bool,
    starts: usize,
    seed: u64,
    passes: usize,
    initial_step: f64,
    sweep_step: f64,
}

impl Default for RequestOptions {
    fn default() -> Self {
        Self {
            routing: SoaRouting::Auto,
            cache_info: false,
            stream: false,
            starts: 1,
            seed: 42,
            passes: 6,
            initial_step: 0.4,
            sweep_step: 50.0,
        }
    }
}

fn eval(state: &ServeState<'_>, body: &[u8]) -> Result<HttpResponse, ApiError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::bad("request body is not UTF-8 text"))?;
    let doc =
        JsonValue::parse(text).map_err(|err| ApiError::bad(format!("invalid JSON: {err}")))?;
    if doc.as_object().is_none() {
        return Err(ApiError::bad("request document must be a JSON object"));
    }
    match doc.get(SCHEMA_VERSION_KEY).and_then(JsonValue::as_i64) {
        Some(SCHEMA_VERSION) => {}
        Some(other) => {
            return Err(ApiError::bad(format!(
                "unsupported schema_version {other} (this server speaks {SCHEMA_VERSION})"
            )))
        }
        None => {
            return Err(ApiError::bad(format!(
                "request must carry `{SCHEMA_VERSION_KEY}: {SCHEMA_VERSION}`"
            )))
        }
    }
    let kind = doc
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ApiError::bad("request must carry a string `kind`"))?
        // Borrow-free copy: `doc` is consumed by the handlers below.
        .to_owned();

    // Envelope and options are validated *before* the cache lookup, so a
    // malformed request is rejected identically whether or not an entry
    // for its well-formed twin exists.
    let (envelope_keys, option_keys): (&[&str], &[&str]) = match kind.as_str() {
        "batch_request" => (
            &[SCHEMA_VERSION_KEY, "kind", "grid", "options"],
            &["routing", "cache_info", "stream"],
        ),
        "fit_request" => (
            &[SCHEMA_VERSION_KEY, "kind", "loops", "options"],
            &[
                "routing",
                "cache_info",
                "starts",
                "seed",
                "passes",
                "initial_step",
                "sweep_step",
            ],
        ),
        "sweep_request" | "transient_request" => (
            &[
                SCHEMA_VERSION_KEY,
                "kind",
                "material",
                "backend",
                "dh_max",
                "excitation",
                "options",
            ],
            &["cache_info"],
        ),
        other => {
            return Err(ApiError::bad(format!(
                "unknown request kind `{other}` (expected batch_request | fit_request | \
                 sweep_request | transient_request)"
            )))
        }
    };
    check_keys(&doc, envelope_keys, &kind)?;
    let options = parse_options(&doc, option_keys, &kind)?;

    // A streamed response has no complete body to cache (and its bytes
    // are NDJSON, not the pretty report), so `options.stream` bypasses
    // the result cache entirely — no lookup, no insert.
    if options.stream {
        debug_assert_eq!(kind, "batch_request", "only batch_request allows `stream`");
        return batch_stream_response(state, &doc, &options);
    }

    let key = cache_key(&doc);
    if let Some(cached) = state.cache.get(key) {
        return Ok(with_cache_marker(
            HttpResponse::json_shared(200, cached),
            options.cache_info,
            key,
            true,
        ));
    }

    let report = match kind.as_str() {
        "batch_request" => batch_eval(state, &doc, &options)?,
        "fit_request" => fit_eval(state, &doc, &options)?,
        "sweep_request" => single_eval(&doc, "sweep")?,
        "transient_request" => single_eval(&doc, "transient")?,
        _ => unreachable!("kind was validated above"),
    };
    let body = state.cache.insert(key, report);
    Ok(with_cache_marker(
        HttpResponse::json_shared(200, body),
        options.cache_info,
        key,
        false,
    ))
}

/// Appends the opt-in cache marker headers. They ride as headers, not
/// body fields, precisely so the body stays byte-identical to the
/// offline report whether the answer was evaluated or recalled.
fn with_cache_marker(
    response: HttpResponse,
    cache_info: bool,
    key: u128,
    hit: bool,
) -> HttpResponse {
    if !cache_info {
        return response;
    }
    response
        .with_header("X-Ja-Cache", if hit { "hit" } else { "miss" })
        .with_header("X-Ja-Cache-Key", format!("{key:032x}"))
}

/// The content address of a request: [`content_hash`] of the document
/// with the fields that cannot affect the response bytes removed.
///
/// `options.routing` is dropped because routing is a scheduling decision
/// (SoA f64 lanes are bit-identical to scalar runs) and `options.cache_info`
/// because it only toggles response *headers* — both are documented as
/// cache-neutral in `docs/PROTOCOL.md`. Everything else, including
/// `schema_version` and `kind`, participates in the key. The hash is
/// computed over the canonical JSON form, so clients may order fields
/// freely and still share a cache entry.
pub fn cache_key(doc: &JsonValue) -> u128 {
    content_hash(&normalized_request(doc))
}

fn normalized_request(doc: &JsonValue) -> JsonValue {
    let JsonValue::Object(fields) = doc else {
        return doc.clone();
    };
    let mut kept = Vec::with_capacity(fields.len());
    for (key, value) in fields {
        if key == "options" {
            if let JsonValue::Object(options) = value {
                let neutral = |name: &str| name == "routing" || name == "cache_info";
                let remaining: Vec<(String, JsonValue)> = options
                    .iter()
                    .filter(|(name, _)| !neutral(name))
                    .cloned()
                    .collect();
                // An `options` object left empty hashes like no options
                // at all: both evaluate to the same bytes.
                if !remaining.is_empty() {
                    kept.push((key.clone(), JsonValue::Object(remaining)));
                }
                continue;
            }
        }
        kept.push((key.clone(), value.clone()));
    }
    JsonValue::Object(kept)
}

/// Rejects fields outside `allowed` — the serve schema is as strict as
/// `core::json`'s parser: a typo must not silently change an experiment.
fn check_keys(value: &JsonValue, allowed: &[&str], what: &str) -> Result<(), ApiError> {
    let fields = value
        .as_object()
        .ok_or_else(|| ApiError::bad(format!("`{what}` must be a JSON object")))?;
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::bad(format!(
                "`{what}` does not take field `{key}` (expected: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn parse_options(
    doc: &JsonValue,
    allowed: &[&str],
    kind: &str,
) -> Result<RequestOptions, ApiError> {
    let mut options = RequestOptions::default();
    let Some(value) = doc.get("options") else {
        return Ok(options);
    };
    let fields = value
        .as_object()
        .ok_or_else(|| ApiError::bad("`options` must be a JSON object"))?;
    for (key, value) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::bad(format!(
                "`{kind}` does not take option `{key}` (expected: {})",
                allowed.join(", ")
            )));
        }
        match key.as_str() {
            "routing" => {
                let name = value
                    .as_str()
                    .ok_or_else(|| ApiError::bad("`options.routing` must be a string"))?;
                options.routing =
                    routing_by_name(name).map_err(|err| ApiError::bad(err.message))?;
            }
            "cache_info" => {
                options.cache_info = match value {
                    JsonValue::Bool(flag) => *flag,
                    _ => return Err(ApiError::bad("`options.cache_info` must be a boolean")),
                };
            }
            "stream" => {
                options.stream = match value {
                    JsonValue::Bool(flag) => *flag,
                    _ => return Err(ApiError::bad("`options.stream` must be a boolean")),
                };
            }
            "starts" => options.starts = usize_field(value, "options.starts")?,
            "seed" => options.seed = u64_field(value, "options.seed")?,
            "passes" => options.passes = usize_field(value, "options.passes")?,
            "initial_step" => options.initial_step = f64_field(value, "options.initial_step")?,
            "sweep_step" => options.sweep_step = f64_field(value, "options.sweep_step")?,
            _ => unreachable!("allowed keys are the match arms"),
        }
    }
    Ok(options)
}

fn f64_field(value: &JsonValue, what: &str) -> Result<f64, ApiError> {
    match value.as_f64() {
        Some(v) if v.is_finite() => Ok(v),
        _ => Err(ApiError::bad(format!("`{what}` must be a finite number"))),
    }
}

fn usize_field(value: &JsonValue, what: &str) -> Result<usize, ApiError> {
    match value.as_i64() {
        Some(v) if v >= 0 => Ok(v as usize),
        _ => Err(ApiError::bad(format!(
            "`{what}` must be a non-negative integer"
        ))),
    }
}

fn u64_field(value: &JsonValue, what: &str) -> Result<u64, ApiError> {
    match value.as_i64() {
        Some(v) if v >= 0 => Ok(v as u64),
        _ => Err(ApiError::bad(format!(
            "`{what}` must be a non-negative integer"
        ))),
    }
}

/// Renders an excitation object to the grid config's `kind key=value`
/// spec format, e.g. `{"kind": "major", "peak": 10000, "step": 100}` →
/// `major peak=10000 step=100`. [`grid_config::parse_excitation`] then
/// does the real parsing — names, defaults, validation, and scenario-key
/// naming are shared with the offline CLI by construction (the `Display`
/// form of a JSON number round-trips through the text parser onto the
/// same `f64`, so scenario names — and therefore report bytes — match).
fn excitation_spec(value: &JsonValue) -> Result<String, ApiError> {
    let fields = value
        .as_object()
        .ok_or_else(|| ApiError::bad("`excitation` must be a JSON object"))?;
    let kind = value
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ApiError::bad("`excitation` must carry a string `kind`"))?;
    let mut spec = kind.to_owned();
    for (key, value) in fields {
        if key == "kind" {
            continue;
        }
        let text = scalar_token(key, value, "excitation")?;
        spec.push(' ');
        spec.push_str(key);
        spec.push('=');
        spec.push_str(&text);
    }
    Ok(spec)
}

/// Renders one `key: value` pair of a spec object to its `key=value`
/// text form (the same `Display` round-trip argument as
/// [`excitation_spec`]).
fn scalar_token(key: &str, value: &JsonValue, what: &str) -> Result<String, ApiError> {
    let text = match value {
        JsonValue::Int(v) => v.to_string(),
        JsonValue::Number(v) if v.is_finite() => format!("{v}"),
        JsonValue::String(s) => s.clone(),
        _ => {
            return Err(ApiError::bad(format!(
                "{what} parameter `{key}` must be a finite number or a string"
            )))
        }
    };
    if text.is_empty() || text.contains(char::is_whitespace) || text.contains('=') {
        return Err(ApiError::bad(format!(
            "{what} parameter `{key}` has an unusable value `{text}`"
        )));
    }
    Ok(text)
}

/// Renders a `grid.geometry` object to the grid config's
/// `area=… path=… [frequency=…] [lamination=…]` value format;
/// [`grid_config::parse_geometry`] then does the real parsing, exactly
/// like excitation objects.
fn geometry_spec(value: &JsonValue) -> Result<String, ApiError> {
    let fields = value
        .as_object()
        .ok_or_else(|| ApiError::bad("`grid.geometry` must be a JSON object"))?;
    let mut spec = String::new();
    for (key, value) in fields {
        let text = scalar_token(key, value, "geometry")?;
        if !spec.is_empty() {
            spec.push(' ');
        }
        spec.push_str(key);
        spec.push('=');
        spec.push_str(&text);
    }
    Ok(spec)
}

fn str_axis<'doc>(grid: &'doc JsonValue, key: &str) -> Result<Vec<&'doc str>, ApiError> {
    let Some(value) = grid.get(key) else {
        return Ok(Vec::new());
    };
    let items = value
        .as_array()
        .ok_or_else(|| ApiError::bad(format!("`grid.{key}` must be an array")))?;
    items
        .iter()
        .map(|item| {
            item.as_str()
                .ok_or_else(|| ApiError::bad(format!("`grid.{key}` entries must be strings")))
        })
        .collect()
}

fn f64_axis(grid: &JsonValue, key: &str) -> Result<Vec<f64>, ApiError> {
    let Some(value) = grid.get(key) else {
        return Ok(Vec::new());
    };
    let items = value
        .as_array()
        .ok_or_else(|| ApiError::bad(format!("`grid.{key}` must be an array")))?;
    items
        .iter()
        .map(|item| f64_field(item, &format!("grid.{key}")))
        .collect()
}

/// Builds the scenario list of a `batch_request`'s `grid` object. Axis
/// arrays accumulate in order like repeated config lines; omitted axes
/// fall back to the same defaults as the offline grid config.
fn batch_scenarios(doc: &JsonValue) -> Result<Vec<Scenario>, ApiError> {
    let grid_doc = doc
        .get("grid")
        .ok_or_else(|| ApiError::bad("`batch_request` requires a `grid` object"))?;
    check_keys(
        grid_doc,
        &[
            "material",
            "backend",
            "dh_max",
            "excitation",
            "temperature",
            "geometry",
        ],
        "grid",
    )?;
    let mut grid = ScenarioGrid::new();
    for name in str_axis(grid_doc, "material")? {
        let params = material_by_name(name).map_err(|err| ApiError::bad(err.message))?;
        let thermal = thermal_by_name(name).map_err(|err| ApiError::bad(err.message))?;
        grid = grid.material_with_thermal(name, params, thermal);
    }
    for name in str_axis(grid_doc, "backend")? {
        let backends = backend_set_by_name(name).map_err(|err| ApiError::bad(err.message))?;
        grid = grid.backends(backends);
    }
    for dh_max in f64_axis(grid_doc, "dh_max")? {
        let config = JaConfig::default().with_dh_max(dh_max);
        config
            .validate()
            .map_err(|err| ApiError::bad(err.to_string()))?;
        grid = grid.config(config_name(dh_max), config);
    }
    let excitations = grid_doc
        .get("excitation")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ApiError::bad("`grid.excitation` must be an array of excitation objects"))?;
    for value in excitations {
        let named = grid_config::parse_excitation(&excitation_spec(value)?)
            .map_err(|err| ApiError::bad(err.message))?;
        grid = grid.excitation(named.name, named.excitation);
    }
    // The operating-point axis goes through the same expansion as the
    // offline grid config (`grid_config::operating_points`), so point
    // names — and therefore scenario keys and report bytes — match.
    let temperatures = f64_axis(grid_doc, "temperature")?;
    let geometry = match grid_doc.get("geometry") {
        None => None,
        Some(value) => Some(
            grid_config::parse_geometry(&geometry_spec(value)?)
                .map_err(|err| ApiError::bad(err.message))?,
        ),
    };
    for (name, op) in grid_config::operating_points(&temperatures, geometry.as_ref()) {
        op.validate()
            .map_err(|err| ApiError::bad(err.to_string()))?;
        grid = grid.operating_point(name, op);
    }
    grid.scenarios()
        .map_err(|err| ApiError::bad(err.to_string()))
}

/// `kind:"batch_request"` → the exact bytes of `ja batch --config` on an
/// equivalent grid config.
fn batch_eval(
    state: &ServeState<'_>,
    doc: &JsonValue,
    options: &RequestOptions,
) -> Result<String, ApiError> {
    let scenarios = batch_scenarios(doc)?;
    let report = BatchRunner::new()
        .workers(state.eval_workers)
        .soa_routing(options.routing)
        .run(scenarios);
    // Per-scenario failures are data, not a request failure: the report
    // carries their status — exactly like the offline exit-1-after-write.
    Ok(batch_report_value(&report, false).to_pretty_string())
}

/// `kind:"batch_request"` with `options.stream` → the exact bytes of
/// `ja batch --format ndjson` on an equivalent grid config, produced one
/// record at a time onto the connection.
///
/// Grid validation still happens up front, so a malformed request is a
/// regular `400` document; once the `200` headers are out, per-scenario
/// failures ride inside the stream as `status:"error"` records (they are
/// data, exactly like the buffered report) and only an I/O failure can
/// truncate the stream — detectable by the missing final manifest line.
fn batch_stream_response(
    state: &ServeState<'_>,
    doc: &JsonValue,
    options: &RequestOptions,
) -> Result<HttpResponse, ApiError> {
    let scenarios = batch_scenarios(doc)?;
    let runner = BatchRunner::new()
        .workers(state.eval_workers)
        .soa_routing(options.routing);
    Ok(HttpResponse::ndjson_stream(move |out| {
        write_ndjson_batch(&runner, &scenarios, None, out, |_, _| Ok(())).map(|_| ())
    }))
}

/// `kind:"fit_request"` → the exact bytes of `ja fit` on equivalent
/// loops (measured samples inline instead of CSV files).
fn fit_eval(
    state: &ServeState<'_>,
    doc: &JsonValue,
    options: &RequestOptions,
) -> Result<String, ApiError> {
    let loops = doc
        .get("loops")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ApiError::bad("`fit_request` requires a `loops` array"))?;
    if loops.is_empty() {
        return Err(ApiError::bad("`loops` must contain at least one loop"));
    }
    let mut jobs = Vec::with_capacity(loops.len());
    for (index, loop_doc) in loops.iter().enumerate() {
        let what = format!("loops[{index}]");
        check_keys(loop_doc, &["name", "h", "b", "h_peak"], &what)?;
        let name = loop_doc
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ApiError::bad(format!("`{what}` requires a string `name`")))?;
        let h = sample_array(loop_doc, "h", &what)?;
        let b = sample_array(loop_doc, "b", &what)?;
        if h.len() != b.len() {
            return Err(ApiError::bad(format!(
                "`{what}`: `h` has {} samples but `b` has {}",
                h.len(),
                b.len()
            )));
        }
        let mut curve = BhCurve::with_capacity(h.len());
        for (&h, &b) in h.iter().zip(&b) {
            curve.push_raw(h, b, 0.0);
        }
        let h_peak = match loop_doc.get("h_peak") {
            None => None,
            Some(value) => Some(f64_field(value, &format!("{what}.h_peak"))?),
        };
        jobs.push(match h_peak {
            Some(h_peak) => FitJob::new(name, curve, h_peak),
            None => FitJob::with_auto_peak(name, curve),
        });
    }
    let multi_start = MultiStartOptions {
        starts: options.starts,
        seed: options.seed,
        workers: state.eval_workers,
        routing: options.routing,
        fit: FitOptions {
            passes: options.passes,
            initial_step: options.initial_step,
            sweep_step: options.sweep_step,
        },
    };
    multi_start
        .validate()
        .map_err(|err| ApiError::bad(err.to_string()))?;
    let report = fit_batch(jobs, &multi_start).map_err(|err| {
        ApiError::unprocessable(format!(
            "fit failed: {err} (is every input a closed BH loop?)"
        ))
    })?;
    Ok(fit_report_value(&report, false).to_pretty_string())
}

fn sample_array(loop_doc: &JsonValue, key: &str, what: &str) -> Result<Vec<f64>, ApiError> {
    let items = loop_doc
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ApiError::bad(format!("`{what}` requires a `{key}` array of numbers")))?;
    items
        .iter()
        .map(|item| f64_field(item, &format!("{what}.{key}")))
        .collect()
}

/// `kind:"sweep_request"` / `kind:"transient_request"` → the exact bytes
/// of `ja sweep --format json` / `ja transient --format json`: one
/// scenario, one enveloped outcome.
fn single_eval(doc: &JsonValue, report_kind: &str) -> Result<String, ApiError> {
    let material_name = match doc.get("material") {
        None => "date2006",
        Some(value) => value
            .as_str()
            .ok_or_else(|| ApiError::bad("`material` must be a string"))?,
    };
    let params = material_by_name(material_name).map_err(|err| ApiError::bad(err.message))?;
    let backend_name = match doc.get("backend") {
        None => "direct",
        Some(value) => value
            .as_str()
            .ok_or_else(|| ApiError::bad("`backend` must be a string"))?,
    };
    let backend = backend_by_name(backend_name).map_err(|err| ApiError::bad(err.message))?;
    let dh_max = match doc.get("dh_max") {
        None => 10.0,
        Some(value) => f64_field(value, "dh_max")?,
    };
    let config = JaConfig::default().with_dh_max(dh_max);
    config
        .validate()
        .map_err(|err| ApiError::bad(err.to_string()))?;
    let excitation_doc = doc.get("excitation").ok_or_else(|| {
        ApiError::bad(format!(
            "`{report_kind}_request` requires an `excitation` object"
        ))
    })?;
    let named = grid_config::parse_excitation(&excitation_spec(excitation_doc)?)
        .map_err(|err| ApiError::bad(err.message))?;
    let is_circuit = matches!(named.excitation, Excitation::Circuit(_));
    if report_kind == "transient" && !is_circuit {
        return Err(ApiError::bad(
            "`transient_request` requires a `circuit` excitation (use `sweep_request` for \
             field-driven stimuli)",
        ));
    }
    if report_kind == "sweep" && is_circuit {
        return Err(ApiError::bad(
            "`sweep_request` takes field-driven stimuli (use `transient_request` for `circuit`)",
        ));
    }
    let scenario = Scenario::new(
        format!(
            "{}/{}/{}/{material_name}",
            named.name,
            backend.label(),
            config_name(dh_max)
        ),
        params,
        config,
        backend,
        named.excitation,
    );
    let outcome = scenario
        .run()
        .map_err(|err| ApiError::unprocessable(err.to_string()))?;
    Ok(enveloped_outcome(report_kind, &outcome, false).to_pretty_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> JsonValue {
        JsonValue::parse(text).expect("test document parses")
    }

    fn state(cache_bytes: usize) -> (&'static AtomicBool, ServeState<'static>) {
        // Tests leak one flag each — fine for a handful of unit tests,
        // and it keeps `ServeState` free of test-only generics.
        let shutdown: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        (
            shutdown,
            ServeState {
                shutdown,
                cache: ResultCache::new(cache_bytes),
                eval_workers: 1,
            },
        )
    }

    fn post_eval(state: &ServeState<'_>, body: &str) -> HttpResponse {
        handle_request(
            state,
            &HttpRequest {
                method: "POST".into(),
                path: "/v1/eval".into(),
                headers: Vec::new(),
                body: body.as_bytes().to_vec(),
            },
        )
    }

    const BATCH_REQUEST: &str = r#"{
        "schema_version": 1,
        "kind": "batch_request",
        "grid": {
            "material": ["date2006"],
            "backend": ["direct"],
            "dh_max": [10],
            "excitation": [{"kind": "fig1", "step": 500}]
        },
        "options": {"routing": "auto", "cache_info": true}
    }"#;

    #[test]
    fn cache_key_ignores_key_order_and_cache_neutral_options() {
        let base = parse(BATCH_REQUEST);
        let reordered = parse(
            r#"{
                "kind": "batch_request",
                "options": {"cache_info": true, "routing": "auto"},
                "grid": {
                    "excitation": [{"step": 500, "kind": "fig1"}],
                    "dh_max": [10],
                    "backend": ["direct"],
                    "material": ["date2006"]
                },
                "schema_version": 1
            }"#,
        );
        assert_eq!(cache_key(&base), cache_key(&reordered));

        // routing / cache_info never change response bytes, so they must
        // not split the cache; dropping `options` entirely is the same
        // request again.
        for options in [
            r#""options": {"routing": "scalar", "cache_info": false}"#,
            r#""options": {"routing": "soa"}"#,
            r#""options": {}"#,
        ] {
            let variant = parse(&BATCH_REQUEST.replace(
                r#""options": {"routing": "auto", "cache_info": true}"#,
                options,
            ));
            assert_eq!(cache_key(&base), cache_key(&variant), "{options}");
        }
        let no_options = parse(
            &BATCH_REQUEST
                .replace(r#","options": {"routing": "auto", "cache_info": true}"#, "")
                .replace(
                    r#"},
        "options": {"routing": "auto", "cache_info": true}"#,
                    "}",
                ),
        );
        assert_eq!(cache_key(&base), cache_key(&no_options));
    }

    #[test]
    fn cache_key_changes_with_every_request_axis() {
        let base = cache_key(&parse(BATCH_REQUEST));
        for (from, to) in [
            (r#""schema_version": 1"#, r#""schema_version": 2"#),
            (r#""kind": "batch_request""#, r#""kind": "fit_request""#),
            (r#""material": ["date2006"]"#, r#""material": ["ja1984"]"#),
            (r#""backend": ["direct"]"#, r#""backend": ["ams"]"#),
            (r#""dh_max": [10]"#, r#""dh_max": [25]"#),
            (r#""step": 500"#, r#""step": 250"#),
            (r#""kind": "fig1""#, r#""kind": "major""#),
        ] {
            let mutated = cache_key(&parse(&BATCH_REQUEST.replace(from, to)));
            assert_ne!(base, mutated, "{from} -> {to} must change the key");
        }
    }

    #[test]
    fn batch_request_evaluates_then_hits_the_cache_with_identical_bytes() {
        let (_, state) = state(1 << 20);
        let first = post_eval(&state, BATCH_REQUEST);
        assert_eq!(first.status(), 200, "{}", first.body());
        assert!(first.body().contains("\"kind\": \"batch\""));
        assert!(first
            .body()
            .contains("fig1(step=500)/direct-timeless/dh10/date2006"));
        let marker = |response: &HttpResponse| {
            let raw = {
                let mut out = Vec::new();
                response.write_to(&mut out).unwrap();
                String::from_utf8(out).unwrap()
            };
            raw.lines()
                .find_map(|line| line.strip_prefix("X-Ja-Cache: ").map(str::to_owned))
        };
        assert_eq!(marker(&first).as_deref(), Some("miss"));

        let second = post_eval(&state, BATCH_REQUEST);
        assert_eq!(second.status(), 200);
        assert_eq!(marker(&second).as_deref(), Some("hit"));
        assert_eq!(
            first.body(),
            second.body(),
            "hit must return identical bytes"
        );
        assert_eq!(state.cache.stats().hits, 1);

        // Reordered fields and a different routing land on the same entry.
        let routed = post_eval(
            &state,
            &BATCH_REQUEST.replace(r#""routing": "auto""#, r#""routing": "scalar""#),
        );
        assert_eq!(marker(&routed).as_deref(), Some("hit"));
        assert_eq!(routed.body(), first.body());

        // Without cache_info the marker disappears but the bytes do not.
        let silent = post_eval(
            &state,
            &BATCH_REQUEST.replace(r#""cache_info": true"#, r#""cache_info": false"#),
        );
        assert_eq!(marker(&silent), None);
        assert_eq!(silent.body(), first.body());
    }

    #[test]
    fn stream_option_streams_ndjson_and_bypasses_the_cache() {
        let (_, state) = state(1 << 20);
        let request = BATCH_REQUEST.replace(
            r#""options": {"routing": "auto", "cache_info": true}"#,
            r#""options": {"stream": true}"#,
        );
        let response = post_eval(&state, &request);
        assert_eq!(response.status(), 200);
        assert!(response.is_streamed());
        let mut raw = Vec::new();
        response.write_to(&mut raw).unwrap();
        let raw = String::from_utf8(raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("Content-Type: application/x-ndjson"));
        assert!(!head.contains("Content-Length"), "{head}");

        // The streamed bytes are exactly what `ja batch --format ndjson`
        // writes offline for the equivalent grid: both call
        // `report::write_ndjson_batch`.
        let scenarios = batch_scenarios(&parse(&request))
            .unwrap_or_else(|err| panic!("grid builds: {}", err.message));
        let runner = BatchRunner::new().workers(1);
        let mut reference = Vec::new();
        write_ndjson_batch(&runner, &scenarios, None, &mut reference, |_, _| Ok(())).unwrap();
        assert_eq!(body, String::from_utf8(reference).unwrap());
        assert!(body
            .lines()
            .last()
            .expect("stream has lines")
            .contains("\"kind\":\"batch_manifest\""));

        // Streaming never touches the result cache.
        let stats = state.cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits + stats.misses, 0);
    }

    #[test]
    fn malformed_eval_requests_are_400s() {
        let (_, state) = state(0);
        for (body, fragment) in [
            ("not json", "invalid JSON"),
            ("[1, 2]", "must be a JSON object"),
            (r#"{"kind": "batch_request"}"#, "schema_version"),
            (
                r#"{"schema_version": 9, "kind": "batch_request"}"#,
                "unsupported schema_version 9",
            ),
            (r#"{"schema_version": 1}"#, "string `kind`"),
            (
                r#"{"schema_version": 1, "kind": "guess"}"#,
                "unknown request kind",
            ),
            (
                r#"{"schema_version": 1, "kind": "batch_request", "grids": {}}"#,
                "does not take field `grids`",
            ),
            (
                r#"{"schema_version": 1, "kind": "batch_request", "options": {"workers": 4}}"#,
                "does not take option `workers`",
            ),
            (
                r#"{"schema_version": 1, "kind": "fit_request", "options": {"stream": true}}"#,
                "does not take option `stream`",
            ),
            (
                r#"{"schema_version": 1, "kind": "batch_request", "options": {"stream": 1}}"#,
                "`options.stream` must be a boolean",
            ),
            (
                r#"{"schema_version": 1, "kind": "batch_request"}"#,
                "requires a `grid` object",
            ),
            (
                r#"{"schema_version": 1, "kind": "batch_request",
                   "grid": {"excitation": [{"kind": "sawtooth"}]}}"#,
                "unknown excitation kind",
            ),
            (
                r#"{"schema_version": 1, "kind": "batch_request",
                   "grid": {"material": ["mu-metal"], "excitation": [{"kind": "fig1"}]}}"#,
                "unknown material",
            ),
            (
                r#"{"schema_version": 1, "kind": "fit_request", "loops": []}"#,
                "at least one loop",
            ),
            (
                r#"{"schema_version": 1, "kind": "fit_request",
                   "loops": [{"name": "l", "h": [1, 2], "b": [1]}]}"#,
                "`h` has 2 samples but `b` has 1",
            ),
            (
                r#"{"schema_version": 1, "kind": "transient_request",
                   "excitation": {"kind": "fig1", "step": 500}}"#,
                "requires a `circuit` excitation",
            ),
            (
                r#"{"schema_version": 1, "kind": "sweep_request",
                   "excitation": {"kind": "circuit"}}"#,
                "field-driven stimuli",
            ),
        ] {
            let response = post_eval(&state, body);
            assert_eq!(response.status(), 400, "{body} -> {}", response.body());
            assert!(
                response.body().contains(fragment),
                "{body}: response {} should mention {fragment:?}",
                response.body()
            );
        }
    }

    #[test]
    fn batch_request_operating_points_match_the_offline_grid_config() {
        let (_, state) = state(0);
        let response = post_eval(
            &state,
            r#"{"schema_version": 1, "kind": "batch_request",
               "grid": {
                   "excitation": [{"kind": "fig1", "step": 500}],
                   "temperature": [-40, 125],
                   "geometry": {"area": 1e-4, "path": 0.1, "frequency": 50}
               }}"#,
        );
        assert_eq!(response.status(), 200, "{}", response.body());
        assert!(response
            .body()
            .contains("fig1(step=500)/direct-timeless/default/date2006/t-40"));
        assert!(response
            .body()
            .contains("fig1(step=500)/direct-timeless/default/date2006/t125"));
        assert!(response.body().contains("\"temperature_c\": -40"));
        assert!(response.body().contains("\"loss\""));

        // The response bytes equal the offline report for the equivalent
        // grid config — same grid builder, same report writer.
        let grid = grid_config::parse_grid(
            "excitation = fig1 step=500\n\
             temperature = -40:125\n\
             geometry = area=0.0001 path=0.1 frequency=50\n",
        )
        .unwrap();
        let report = BatchRunner::new().workers(1).run(grid.scenarios().unwrap());
        assert_eq!(
            response.body(),
            batch_report_value(&report, false).to_pretty_string()
        );
    }

    #[test]
    fn malformed_operating_point_requests_are_400s() {
        let (_, state) = state(0);
        for (body, fragment) in [
            (
                r#"{"schema_version": 1, "kind": "batch_request",
                   "grid": {"excitation": [{"kind": "fig1"}], "temperature": ["hot"]}}"#,
                "`grid.temperature` must be a finite number",
            ),
            (
                r#"{"schema_version": 1, "kind": "batch_request",
                   "grid": {"excitation": [{"kind": "fig1"}], "geometry": {"area": 1e-4}}}"#,
                "needs `path=`",
            ),
            (
                r#"{"schema_version": 1, "kind": "batch_request",
                   "grid": {"excitation": [{"kind": "fig1"}],
                            "geometry": {"area": 1e-4, "path": 0.1, "lamination": "mu"}}}"#,
                "unknown lamination",
            ),
        ] {
            let response = post_eval(&state, body);
            assert_eq!(response.status(), 400, "{body} -> {}", response.body());
            assert!(
                response.body().contains(fragment),
                "{body}: response {} should mention {fragment:?}",
                response.body()
            );
        }
    }

    #[test]
    fn sweep_request_matches_the_offline_sweep_report() {
        let (_, state) = state(0);
        let response = post_eval(
            &state,
            r#"{"schema_version": 1, "kind": "sweep_request",
               "excitation": {"kind": "major", "peak": 5000, "step": 250, "cycles": 1}}"#,
        );
        assert_eq!(response.status(), 200, "{}", response.body());
        assert!(response.body().contains("\"kind\": \"sweep\""));
        assert!(response
            .body()
            .contains("major(peak=5000,step=250,cycles=1)/direct-timeless/dh10/date2006"));
    }

    #[test]
    fn health_and_shutdown_routes_work() {
        let (flag, state) = state(0);
        let get = |method: &str, path: &str| {
            handle_request(
                &state,
                &HttpRequest {
                    method: method.into(),
                    path: path.into(),
                    headers: Vec::new(),
                    body: Vec::new(),
                },
            )
        };
        let health = get("GET", "/v1/health");
        assert_eq!(health.status(), 200);
        assert!(health.body().contains("\"kind\": \"health\""));
        assert!(health.body().contains("\"budget_bytes\": 0"));

        assert_eq!(get("POST", "/v1/health").status(), 405);
        assert_eq!(get("GET", "/v1/nope").status(), 404);

        assert!(!flag.load(Ordering::Acquire));
        let shutdown = get("POST", "/v1/shutdown");
        assert_eq!(shutdown.status(), 200);
        assert!(shutdown.body().contains("\"draining\": true"));
        assert!(
            flag.load(Ordering::Acquire),
            "shutdown must set the drain flag"
        );
    }
}
