//! Error type for the analogue solver.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear algebra, nonlinear and transient solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// Description of the mismatch.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorised — the classic symptom of a floating node or a
    /// short-circuited source in MNA.
    SingularMatrix {
        /// Pivot column at which factorisation broke down.
        column: usize,
    },
    /// Newton iteration failed to converge within the iteration limit.
    ///
    /// This is the solver-side failure mode the paper attributes to
    /// conventional JA implementations around turning points.
    NonConvergence {
        /// Number of iterations attempted.
        iterations: usize,
        /// Residual norm at the last iterate.
        residual: f64,
    },
    /// A step-size or time parameter is invalid.
    InvalidStep {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The adaptive integrator could not satisfy the error tolerance even at
    /// the minimum step size.
    StepSizeUnderflow {
        /// Time at which the failure occurred.
        time: f64,
        /// The step size that was still too large for the tolerance.
        step: f64,
    },
    /// A circuit netlist is malformed (unknown node, no ground reference…).
    InvalidCircuit {
        /// Explanation of the problem.
        reason: String,
    },
    /// A state vector with the wrong length was supplied.
    BadStateLength {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            SolverError::SingularMatrix { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
            SolverError::NonConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SolverError::InvalidStep { name, value } => {
                write!(f, "invalid step parameter `{name}` = {value}")
            }
            SolverError::StepSizeUnderflow { time, step } => write!(
                f,
                "adaptive step size underflow at t = {time:.6e} (step {step:.3e})"
            ),
            SolverError::InvalidCircuit { reason } => write!(f, "invalid circuit: {reason}"),
            SolverError::BadStateLength { expected, actual } => write!(
                f,
                "state vector has length {actual}, system expects {expected}"
            ),
        }
    }
}

impl Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SolverError::SingularMatrix { column: 3 }
            .to_string()
            .contains("column 3"));
        assert!(SolverError::NonConvergence {
            iterations: 50,
            residual: 1.0
        }
        .to_string()
        .contains("50 iterations"));
        assert!(SolverError::InvalidCircuit {
            reason: "no ground".into()
        }
        .to_string()
        .contains("no ground"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SolverError>();
    }
}
