//! Experiment E6: the SystemC-style and AMS-style implementations produce
//! virtually identical results.

use criterion::{black_box, Criterion};
use hdl_models::ams::AmsTimelessModel;
use hdl_models::comparison::{fig1_schedule, implementation_equivalence, DEFAULT_STEP};
use hdl_models::systemc::SystemCJaCore;
use ja_hysteresis::config::JaConfig;
use magnetics::material::JaParameters;

fn print_experiment() {
    println!("== E6: implementation equivalence (event-driven vs equation-style) ==");
    for &step in &[5.0, 10.0, 25.0, 50.0] {
        let report = implementation_equivalence(step).expect("comparison runs");
        println!(
            "step {step:>5} A/m: {} samples, max |dB| = {:.3e} T ({:.4}% of B_max), systemc activations = {}, ams updates = {}",
            report.samples,
            report.max_abs_diff_b,
            report.relative_diff * 100.0,
            report.systemc_activations,
            report.ams_updates
        );
    }
    println!();
}

fn benches(c: &mut Criterion) {
    let schedule = fig1_schedule(DEFAULT_STEP).expect("schedule");
    let samples = schedule.to_samples();
    let mut group = c.benchmark_group("implementation_equivalence");
    group.sample_size(10);
    group.bench_function("event_driven_systemc_port", |b| {
        b.iter(|| {
            let mut core = SystemCJaCore::date2006().expect("module");
            black_box(core.run_schedule(&schedule).expect("sweep"))
        })
    });
    group.bench_function("equation_style_ams_model", |b| {
        b.iter(|| {
            let mut model = AmsTimelessModel::new(JaParameters::date2006(), JaConfig::default())
                .expect("model");
            black_box(model.run_samples(samples.iter().copied()).expect("sweep"))
        })
    });
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
