//! Minimal hand-rolled JSON support for machine-readable run reports.
//!
//! The build environment has no registry access, so instead of `serde_json`
//! this module provides the small subset the workspace needs: a document
//! model ([`JsonValue`]) with a **deterministic** writer (insertion-ordered
//! object keys, shortest-round-trip float formatting, fixed 2-space
//! indentation) and a strict recursive-descent parser.  Determinism matters
//! because the CLI's batch reports are asserted byte-identical across
//! worker counts, and CI diffs bench medians across runs.
//!
//! # Report schema
//!
//! Every machine-readable report emitted by this workspace (the `ja` CLI
//! subcommands and the criterion stand-in's `--json` output) shares one
//! versioned envelope:
//!
//! | key              | type   | meaning                                      |
//! |------------------|--------|----------------------------------------------|
//! | `schema_version` | int    | [`SCHEMA_VERSION`]; bumped on breaking change |
//! | `kind`           | string | `"batch"`, `"sweep"`, `"fit"`, `"inverse"`, `"compare"` or `"bench"` |
//!
//! plus kind-specific payload fields.  The authoritative field-by-field
//! description lives in the `ja --help` text (`crates/cli`); the criterion
//! stand-in replicates the envelope with a local constant that the
//! `ja bench-gate` subcommand cross-checks at consumption time.
//!
//! Non-finite numbers have no JSON representation; the writer emits `null`
//! for them rather than producing an unparsable document.

use std::error::Error;
use std::fmt;

/// Version of the shared report schema.  Consumers (CI's `bench-gate`, the
/// report tests) reject documents whose `schema_version` differs.
pub const SCHEMA_VERSION: i64 = 1;

/// Key under which every report states its schema version.
pub const SCHEMA_VERSION_KEY: &str = "schema_version";

/// A JSON document fragment.
///
/// Objects preserve insertion order (they are a `Vec` of pairs, not a map),
/// which keeps the writer deterministic and lets reports define a stable,
/// documented field order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without a decimal point).
    Int(i64),
    /// A floating-point number; non-finite values serialise as `null`.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::push`].
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — report
    /// builders construct objects statically, so a misuse is a programming
    /// error, not a data error).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not [`JsonValue::Object`].
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.into(), value.into())),
            other => panic!("JsonValue::push on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`JsonValue::push`].
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> Self {
        self.push(key, value);
        self
    }

    /// Looks a field up in an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float: [`JsonValue::Number`] directly or
    /// [`JsonValue::Int`] losslessly widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            JsonValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as an integer (floats are not coerced).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object field list.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the document with 2-space indentation and a trailing
    /// newline — the one canonical textual form (reports are diffed and
    /// compared byte-for-byte).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_indented(&self, out: &mut String, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                out.push_str(&v.to_string());
            }
            JsonValue::Number(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest decimal that round-trips.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    indent(out, level + 1);
                    item.write_indented(out, level + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, level);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push('\n');
                    indent(out, level + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_indented(out, level + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, level);
                out.push('}');
            }
        }
    }

    /// Serialises the document in **canonical form**: object keys sorted
    /// bytewise at every nesting level, no whitespace, the same number and
    /// string formatting as the pretty writer.  Two documents that carry
    /// the same data — regardless of the order their object fields were
    /// written or parsed in — produce identical canonical strings, which is
    /// what makes [`content_hash`] usable as a content address: a client
    /// may emit its request fields in any order and still land on the same
    /// cache entry.
    ///
    /// Duplicate keys (the document model allows them; the strict parser
    /// does not reject them) keep their relative order after the stable
    /// sort, so even degenerate documents canonicalise deterministically.
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        self.write_canonical(&mut out);
        out
    }

    fn write_canonical(&self, out: &mut String) {
        match self {
            JsonValue::Null | JsonValue::Bool(_) | JsonValue::Int(_) | JsonValue::Number(_) => {
                // Scalars have no layout, so the pretty writer's forms are
                // already canonical.
                self.write_indented(out, 0);
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_canonical(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                let mut order: Vec<&(String, JsonValue)> = fields.iter().collect();
                order.sort_by(|a, b| a.0.cmp(&b.0));
                out.push('{');
                for (i, (key, value)) in order.into_iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_canonical(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialises the document **compactly in insertion order**: no
    /// whitespace, the same number and string formatting as the pretty
    /// writer, object keys left exactly where the builder put them.
    ///
    /// This is the one-line form used for streaming NDJSON records
    /// (`ja batch --format ndjson`): unlike [`to_pretty_string`]
    /// (multi-line) it fits one record per line, and unlike
    /// [`canonical_string`](Self::canonical_string) (key-sorted, for content
    /// addressing) it preserves the schema's documented field order, so a
    /// record is the compact rendering of exactly the document the stored
    /// report would contain.
    ///
    /// [`to_pretty_string`]: Self::to_pretty_string
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null | JsonValue::Bool(_) | JsonValue::Int(_) | JsonValue::Number(_) => {
                self.write_indented(out, 0);
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset and message on malformed
    /// input, nesting deeper than 128 levels, or numbers outside `f64`.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON document"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_pretty_string().trim_end())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        // Counters beyond i64 lose nothing by going through f64's `null`
        // escape hatch in practice, but stay exact for every realistic count.
        match i64::try_from(v) {
            Ok(v) => JsonValue::Int(v),
            Err(_) => JsonValue::Number(v as f64),
        }
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::from(v as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Escapes `s` as a JSON string (including the surrounding quotes) into
/// `out`: `"`, `\` and control characters are escaped, everything else is
/// passed through as UTF-8.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A stable 128-bit content address of a JSON document: the FNV-1a hash of
/// its [canonical form](JsonValue::canonical_string).
///
/// Properties the serving cache relies on:
///
/// * **Key-order independence.** Reordering object fields anywhere in the
///   document does not change the hash (canonicalisation sorts keys).
/// * **Content sensitivity.** Changing any value, adding or removing any
///   field, or changing a number's value changes the canonical bytes and
///   therefore the hash.
/// * **Stability.** The hash is a pure function of the document — no
///   randomised hasher state — so it is identical across processes, runs
///   and machines, which lets cache keys appear in logs, reports and
///   tests.
///
/// 128 bits make accidental collisions implausible for any realistic cache
/// population (the birthday bound at 2^64 entries), which matters because
/// the result cache serves hits **without** re-checking the request.
pub fn content_hash(value: &JsonValue) -> u128 {
    let mut digest = StreamDigest::new();
    digest.update(value.canonical_string().as_bytes());
    digest.value()
}

/// An incremental 128-bit FNV-1a digest over a byte stream.
///
/// This is the same hash as [`content_hash`] (offset basis and prime from
/// the FNV spec), exposed as a running accumulator so it can digest data
/// that is produced piecewise — the streaming NDJSON writer hashes each
/// record line as it is emitted and seals the result into the final
/// manifest line.
///
/// The entire digest state is the current 128-bit value, so a digest can be
/// **suspended and resumed across processes**: a batch checkpoint stores
/// [`state`](Self::state) (as hex) and a resumed run continues from
/// [`from_state`](Self::from_state), producing the same final value as an
/// uninterrupted run over the same bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDigest {
    state: u128,
}

impl StreamDigest {
    const OFFSET_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    /// A fresh digest (FNV-1a offset basis).
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Rehydrates a digest from a previously captured [`state`](Self::state).
    pub fn from_state(state: u128) -> Self {
        Self { state }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.state;
        for &byte in bytes {
            hash ^= u128::from(byte);
            hash = hash.wrapping_mul(Self::PRIME);
        }
        self.state = hash;
    }

    /// The digest of everything folded in so far.
    pub fn value(&self) -> u128 {
        self.state
    }

    /// The resumable internal state (identical to [`value`](Self::value)
    /// for FNV-1a, but named separately so checkpoint code reads as what it
    /// is: a suspension point, not a final digest).
    pub fn state(&self) -> u128 {
        self.state
    }
}

impl Default for StreamDigest {
    fn default() -> Self {
        Self::new()
    }
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{literal}`")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let first_digit = self.peek();
        let int_digits = self.consume_digits();
        if int_digits == 0 {
            return Err(self.error("expected digits in number"));
        }
        if int_digits > 1 && first_digit == Some(b'0') {
            return Err(self.error("leading zeros are not allowed"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.consume_digits() == 0 {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.consume_digits() == 0 {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number `{text}`")))?;
        if v.is_finite() {
            Ok(JsonValue::Number(v))
        } else {
            Err(self.error(format!("number `{text}` overflows f64")))
        }
    }

    fn consume_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_deterministic_and_ordered() {
        let doc = JsonValue::object()
            .with(SCHEMA_VERSION_KEY, SCHEMA_VERSION)
            .with("kind", "batch")
            .with("entries", JsonValue::Array(vec![JsonValue::Null]));
        let a = doc.to_pretty_string();
        let b = doc.to_pretty_string();
        assert_eq!(a, b);
        let version = a.find("schema_version").unwrap();
        let kind = a.find("kind").unwrap();
        assert!(version < kind, "insertion order preserved:\n{a}");
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn floats_round_trip_through_writer_and_parser() {
        for v in [0.1, 1.0 / 3.0, 1.6e6, -2.006543210987654, 1e-300, 0.0] {
            let text = JsonValue::Number(v).to_pretty_string();
            let parsed = JsonValue::parse(&text).unwrap();
            let back = parsed.as_f64().expect("number");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {text}");
        }
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_pretty_string(), "null\n");
        assert_eq!(
            JsonValue::Number(f64::INFINITY).to_pretty_string(),
            "null\n"
        );
    }

    #[test]
    fn integers_stay_integers() {
        let text = JsonValue::Int(4000).to_pretty_string();
        assert_eq!(text, "4000\n");
        assert_eq!(JsonValue::parse("4000").unwrap(), JsonValue::Int(4000));
        assert_eq!(
            JsonValue::parse("4000.0").unwrap(),
            JsonValue::Number(4000.0)
        );
        assert_eq!(JsonValue::from(3_usize), JsonValue::Int(3));
        assert_eq!(
            JsonValue::from(u64::MAX),
            JsonValue::Number(u64::MAX as f64)
        );
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t control\u{0001} unicode µ";
        let text = JsonValue::String(nasty.to_owned()).to_pretty_string();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn parser_accepts_the_report_shapes() {
        let text = r#"{
            "schema_version": 1,
            "kind": "bench",
            "benches": {"fig1/sweep": 1234.5, "other": 7}
        }"#;
        let doc = JsonValue::parse(text).unwrap();
        assert_eq!(
            doc.get(SCHEMA_VERSION_KEY).and_then(JsonValue::as_i64),
            Some(1)
        );
        assert_eq!(doc.get("kind").and_then(JsonValue::as_str), Some("bench"));
        let benches = doc.get("benches").unwrap().as_object().unwrap();
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].1.as_f64(), Some(1234.5));
        assert_eq!(benches[1].1.as_f64(), Some(7.0));
    }

    #[test]
    fn parser_handles_arrays_literals_and_unicode_escapes() {
        let doc = JsonValue::parse(r#"[true, false, null, "\u00b5\ud83d\ude00", 1e-3]"#).unwrap();
        let items = doc.as_array().unwrap();
        assert_eq!(items[0], JsonValue::Bool(true));
        assert_eq!(items[1], JsonValue::Bool(false));
        assert_eq!(items[2], JsonValue::Null);
        assert_eq!(items[3].as_str(), Some("µ😀"));
        assert_eq!(items[4].as_f64(), Some(1e-3));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "\"bad escape \\q\"",
            "\"unpaired \\ud800 surrogate\"",
            "1e999",
            "[1] trailing",
            "01",
        ] {
            let err = JsonValue::parse(bad).expect_err(&format!("`{bad}` must be rejected"));
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_return_none_on_mismatched_types() {
        let doc = JsonValue::parse("{\"a\": [1, 2]}").unwrap();
        assert!(doc.get("missing").is_none());
        assert!(doc.as_array().is_none());
        assert!(doc.get("a").unwrap().as_object().is_none());
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(JsonValue::Null.as_f64().is_none());
        assert!(JsonValue::Bool(true).as_str().is_none());
        assert!(JsonValue::Int(1).as_f64() == Some(1.0));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_on_non_object_panics() {
        JsonValue::Null.push("key", 1i64);
    }

    #[test]
    fn canonical_form_sorts_keys_and_strips_whitespace() {
        let doc = JsonValue::parse(r#"{"b": [1, {"z": null, "a": 2.5}], "a": "x"}"#).unwrap();
        assert_eq!(
            doc.canonical_string(),
            r#"{"a":"x","b":[1,{"a":2.5,"z":null}]}"#
        );
        // Canonical text is itself valid JSON carrying the same data.
        let reparsed = JsonValue::parse(&doc.canonical_string()).unwrap();
        assert_eq!(reparsed.canonical_string(), doc.canonical_string());
    }

    #[test]
    fn content_hash_ignores_key_order_at_every_level() {
        let a = JsonValue::parse(
            r#"{"kind": "batch_request", "schema_version": 1,
                "grid": {"dh_max": [10], "excitation": [{"kind": "fig1", "step": 100}]}}"#,
        )
        .unwrap();
        let b = JsonValue::parse(
            r#"{"grid": {"excitation": [{"step": 100, "kind": "fig1"}], "dh_max": [10]},
                "schema_version": 1, "kind": "batch_request"}"#,
        )
        .unwrap();
        assert_eq!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn content_hash_changes_with_any_axis() {
        let base = r#"{"kind": "batch_request", "schema_version": 1,
            "grid": {"material": ["date2006"], "dh_max": [10],
                     "excitation": [{"kind": "major", "peak": 10000, "step": 100}]}}"#;
        let hash = |text: &str| content_hash(&JsonValue::parse(text).unwrap());
        let baseline = hash(base);
        for changed in [
            // A different schema version is a different cache universe.
            base.replace("\"schema_version\": 1", "\"schema_version\": 2"),
            base.replace("date2006", "hard-steel"),
            base.replace("\"dh_max\": [10]", "\"dh_max\": [25]"),
            base.replace("\"step\": 100", "\"step\": 50"),
            base.replace("\"peak\": 10000", "\"peak\": 10001"),
            base.replace("\"kind\": \"major\"", "\"kind\": \"fig1\""),
            // An added field changes the address too.
            base.replace("\"dh_max\": [10]", "\"dh_max\": [10, 25]"),
        ] {
            assert_ne!(baseline, hash(&changed), "{changed}");
        }
        // Array order is data, not layout: a reordered axis is a
        // different grid (the cartesian expansion order changes).
        assert_ne!(
            hash(r#"{"dh_max": [10, 25]}"#),
            hash(r#"{"dh_max": [25, 10]}"#)
        );
        // The hash is a pure function of the content: stable across calls
        // (and across processes — no randomised hasher state).
        assert_eq!(baseline, hash(base));
    }

    #[test]
    fn display_matches_pretty_writer() {
        let doc = JsonValue::object().with("a", 1i64);
        assert_eq!(format!("{doc}"), doc.to_pretty_string().trim_end());
    }

    #[test]
    fn compact_string_preserves_insertion_order() {
        let doc = JsonValue::object()
            .with("zeta", 1i64)
            .with("alpha", JsonValue::Array(vec![1i64.into(), 0.5.into()]))
            .with(
                "nested",
                JsonValue::object()
                    .with("b", true)
                    .with("a", JsonValue::Null),
            );
        assert_eq!(
            doc.to_compact_string(),
            r#"{"zeta":1,"alpha":[1,0.5],"nested":{"b":true,"a":null}}"#
        );
        // Same scalar formatting as the pretty writer (shortest round-trip
        // floats, non-finite -> null), no trailing newline.
        assert_eq!(JsonValue::Number(f64::NAN).to_compact_string(), "null");
        assert_eq!(JsonValue::Number(0.1).to_compact_string(), "0.1");
        // A compact document reparses to the same value.
        let reparsed = JsonValue::parse(&doc.to_compact_string()).unwrap();
        assert_eq!(reparsed.to_compact_string(), doc.to_compact_string());
    }

    #[test]
    fn compact_string_matches_canonical_when_keys_are_sorted() {
        // On documents whose keys are already in sorted order the two
        // compact writers must agree byte-for-byte.
        let doc = JsonValue::object()
            .with("a", 1i64)
            .with("b", "x")
            .with("c", JsonValue::Array(vec![JsonValue::Null]));
        assert_eq!(doc.to_compact_string(), doc.canonical_string());
    }

    #[test]
    fn stream_digest_matches_content_hash() {
        let doc = JsonValue::object().with("kind", "batch").with("n", 3i64);
        let mut digest = StreamDigest::new();
        digest.update(doc.canonical_string().as_bytes());
        assert_eq!(digest.value(), content_hash(&doc));
    }

    #[test]
    fn stream_digest_is_chunking_independent_and_resumable() {
        let payload = b"{\"index\":0}\n{\"index\":1}\n";
        let mut whole = StreamDigest::new();
        whole.update(payload);
        // Byte-at-a-time chunking lands on the same value.
        let mut chunked = StreamDigest::new();
        for byte in payload.iter() {
            chunked.update(std::slice::from_ref(byte));
        }
        assert_eq!(whole.value(), chunked.value());
        // Suspending after the first line and resuming from the captured
        // state (the checkpoint/resume round trip) also agrees.
        let mut first = StreamDigest::new();
        first.update(&payload[..12]);
        let mut resumed = StreamDigest::from_state(first.state());
        resumed.update(&payload[12..]);
        assert_eq!(whole.value(), resumed.value());
        // And an empty digest reports the FNV offset basis.
        assert_eq!(StreamDigest::new().value(), StreamDigest::default().value());
    }
}
