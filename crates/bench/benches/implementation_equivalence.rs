//! Experiment E6: the SystemC-style and AMS-style implementations produce
//! virtually identical results — compared through the backend trait.

use criterion::{black_box, Criterion};
use hdl_models::comparison::{implementation_equivalence, DEFAULT_STEP};
use hdl_models::scenario::{BackendKind, Scenario};

fn print_experiment() {
    println!("== E6: implementation equivalence (event-driven vs equation-style) ==");
    for &step in &[5.0, 10.0, 25.0, 50.0] {
        let report = implementation_equivalence(step).expect("comparison runs");
        println!(
            "step {step:>5} A/m: {} samples, max |dB| = {:.3e} T ({:.4}% of B_max), systemc updates = {}, ams updates = {}",
            report.samples,
            report.max_abs_diff_b,
            report.relative_diff * 100.0,
            report.systemc_updates,
            report.ams_updates
        );
    }
    println!();
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("implementation_equivalence");
    group.sample_size(10);
    for backend in [BackendKind::SystemC, BackendKind::AmsTimeless] {
        let scenario = Scenario::fig1(backend, DEFAULT_STEP).expect("valid scenario");
        group.bench_function(backend.label(), |b| {
            b.iter(|| black_box(scenario.run().expect("sweep")))
        });
    }
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
