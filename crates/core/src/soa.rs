//! Structure-of-arrays lockstep execution of many parameter sets.
//!
//! A [`SoaBatch`] steps N Jiles–Atherton parameter sets ("lanes") through
//! the **same** applied-field sequence, holding every state and parameter
//! field in a flat column (one `Vec` per field) instead of N independent
//! model objects.  Each lane advances through exactly the per-step
//! increment math of the scalar model, so in the default
//! [`SoaPrecision::F64`] mode every lane is **bit-identical** to a scalar
//! [`JilesAtherton`](crate::model::JilesAtherton) run of the same
//! parameters, configuration and samples.
//!
//! Two kernels implement that contract:
//!
//! * the **lockstep kernel** (arctangent anhysteretic laws, i.e. the
//!   paper's modified Langevin and the two-parameter blend): all lanes walk
//!   the sample sequence together, and the per-sample self-consistency
//!   fixed point runs as a branch-light lane-inner loop over the flat
//!   columns.  The heavy arctangents go through the shared polynomial
//!   [`magnetics::fastmath::atan`], a fixed inlineable operation sequence,
//!   so independent lanes pipeline and auto-vectorise instead of
//!   serialising on an opaque libm call — this is where the SoA speedup
//!   comes from.  Per lane the operation order is exactly the scalar
//!   model's ([`advance_state`] shares the
//!   same constants and increment routine), which keeps `f64` lanes
//!   bitwise equal;
//! * the **per-lane fallback** (classic Langevin law): each lane walks the
//!   whole sequence delegating every step to
//!   [`advance_state`] itself — trivially
//!   bit-identical, without the lane-parallel throughput.
//!
//! On top of the kernel win, the batch removes everything around the math:
//! per-sample dynamic dispatch, per-sample `Result`/sample-struct plumbing,
//! per-lane schedule re-iteration and per-lane model construction.
//!
//! The optional [`SoaPrecision::F32`] mode stores the six state columns as
//! `f32`: every step loads the rounded state, advances it in `f64` (the
//! arithmetic itself never changes), and stores the result rounded back to
//! `f32`.  Parameters stay in `f64` columns so the lanes still evaluate the
//! exact requested parameter sets.  The rounding feeds back through the
//! state, so the error against the scalar reference grows with the lane's
//! susceptibility; the documented bound (asserted by
//! `tests/soa_equivalence.rs`) is a relative flux-density error below
//! `1e-4` of the loop's peak for the workspace's materials and schedules.
//!
//! Lanes are fully independent: a lane whose parameters fail validation or
//! whose state diverges records its [`JaError`] and goes inactive without
//! disturbing the other lanes — mirroring how each scenario of a scalar
//! batch fails on its own.

use magnetics::anhysteretic::AnhystereticKind;
use magnetics::bh::BhCurve;
use magnetics::constants::MU0;
use magnetics::fastmath;
use magnetics::material::JaParameters;
use magnetics::units::Magnetisation;

use crate::config::JaConfig;
use crate::error::JaError;
use crate::model::JaStatistics;
use crate::params::AnhystereticChoice;
use crate::state::JaState;
use crate::timeless::{
    advance_state, integrate_field_increment, total_magnetisation, FIXED_POINT_ITERATIONS,
    FIXED_POINT_TOLERANCE,
};

/// Numeric storage of the per-lane state columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SoaPrecision {
    /// `f64` state columns — bit-identical to the scalar model.
    #[default]
    F64,
    /// `f32` state columns — halves the state footprint; the per-step
    /// arithmetic stays `f64`, but results are rounded through `f32`
    /// between steps (see the module docs for the documented tolerance).
    F32,
}

/// A column element: converts losslessly (`f64`) or by rounding (`f32`)
/// to and from the `f64` the step math runs in.
trait ColumnScalar: Copy + Default {
    fn from_f64(value: f64) -> Self;
    fn to_f64(self) -> f64;
}

impl ColumnScalar for f64 {
    #[inline]
    fn from_f64(value: f64) -> Self {
        value
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

impl ColumnScalar for f32 {
    #[inline]
    fn from_f64(value: f64) -> Self {
        value as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

/// The six state fields of [`JaState`] as flat columns, plus the per-lane
/// update counter.
#[derive(Debug, Clone, Default)]
struct StateColumns<T> {
    m_irr: Vec<T>,
    m_rev: Vec<T>,
    m_total: Vec<T>,
    m_an: Vec<T>,
    h: Vec<T>,
    h_last_update: Vec<T>,
    updates: Vec<u64>,
}

impl<T: ColumnScalar> StateColumns<T> {
    /// Resets every column to `lanes` demagnetised entries, reusing the
    /// existing allocations.
    fn reset(&mut self, lanes: usize) {
        for column in [
            &mut self.m_irr,
            &mut self.m_rev,
            &mut self.m_total,
            &mut self.m_an,
            &mut self.h,
            &mut self.h_last_update,
        ] {
            column.clear();
            column.resize(lanes, T::default());
        }
        self.updates.clear();
        self.updates.resize(lanes, 0);
    }

    /// Gathers one lane into a scalar [`JaState`].
    #[inline]
    fn load(&self, lane: usize) -> JaState {
        JaState {
            m_irr: self.m_irr[lane].to_f64(),
            m_rev: self.m_rev[lane].to_f64(),
            m_total: self.m_total[lane].to_f64(),
            m_an: self.m_an[lane].to_f64(),
            h: self.h[lane].to_f64(),
            h_last_update: self.h_last_update[lane].to_f64(),
            updates: self.updates[lane],
        }
    }

    /// Scatters a scalar [`JaState`] back into one lane.
    #[inline]
    fn store(&mut self, lane: usize, state: &JaState) {
        self.m_irr[lane] = T::from_f64(state.m_irr);
        self.m_rev[lane] = T::from_f64(state.m_rev);
        self.m_total[lane] = T::from_f64(state.m_total);
        self.m_an[lane] = T::from_f64(state.m_an);
        self.h[lane] = T::from_f64(state.h);
        self.h_last_update[lane] = T::from_f64(state.h_last_update);
        self.updates[lane] = state.updates;
    }
}

/// State columns in the precision selected at construction, dispatched once
/// per sweep rather than once per step.
#[derive(Debug, Clone)]
enum LaneStore {
    F64(StateColumns<f64>),
    F32(StateColumns<f32>),
}

/// A batch of Jiles–Atherton lanes sharing one configuration and one
/// applied-field sequence, laid out as structure-of-arrays columns.
///
/// Lifecycle: construct once per (configuration, precision), then
/// repeatedly [`assign`](SoaBatch::assign) parameter sets and
/// [`run_samples_into_curves`](SoaBatch::run_samples_into_curves).  All
/// columns reuse their allocations across assignments, so steady-state
/// re-evaluation (the multi-start fitting inner loop) performs no per-call
/// allocation.
#[derive(Debug, Clone)]
pub struct SoaBatch {
    config: JaConfig,
    precision: SoaPrecision,
    // Parameter columns (always f64 — see the module docs).
    m_sat: Vec<f64>,
    a: Vec<f64>,
    a2: Vec<f64>,
    k: Vec<f64>,
    alpha: Vec<f64>,
    c: Vec<f64>,
    anhysteretic: Vec<AnhystereticKind>,
    store: LaneStore,
    stats: Vec<JaStatistics>,
    errors: Vec<Option<JaError>>,
    scratch: LockstepScratch,
}

/// Reusable `f64` working buffers of the lockstep kernel: the state fields
/// every lane carries across one sample, plus the per-lane convergence mask
/// of the fixed point.  Kept on the batch so steady-state re-runs allocate
/// nothing.
#[derive(Debug, Clone, Default)]
struct LockstepScratch {
    m_irr: Vec<f64>,
    m_total: Vec<f64>,
    m_an: Vec<f64>,
    h_last: Vec<f64>,
    done: Vec<bool>,
}

impl SoaBatch {
    /// Creates an empty batch for the given configuration and precision.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] for an invalid configuration —
    /// the same check (and error) a scalar
    /// [`JilesAtherton::with_config`](crate::model::JilesAtherton::with_config)
    /// performs.
    pub fn new(config: JaConfig, precision: SoaPrecision) -> Result<Self, JaError> {
        config.validate()?;
        let store = match precision {
            SoaPrecision::F64 => LaneStore::F64(StateColumns::default()),
            SoaPrecision::F32 => LaneStore::F32(StateColumns::default()),
        };
        Ok(Self {
            config,
            precision,
            m_sat: Vec::new(),
            a: Vec::new(),
            a2: Vec::new(),
            k: Vec::new(),
            alpha: Vec::new(),
            c: Vec::new(),
            anhysteretic: Vec::new(),
            store,
            stats: Vec::new(),
            errors: Vec::new(),
            scratch: LockstepScratch::default(),
        })
    }

    /// The shared configuration.
    pub fn config(&self) -> &JaConfig {
        &self.config
    }

    /// The state-column precision.
    pub fn precision(&self) -> SoaPrecision {
        self.precision
    }

    /// Number of lanes currently assigned.
    pub fn lanes(&self) -> usize {
        self.m_sat.len()
    }

    /// Assigns one lane per parameter set, resetting every lane to the
    /// demagnetised state and clearing its statistics.  Column capacity is
    /// reused, so re-assigning the same lane count allocates nothing.
    ///
    /// A parameter set that fails validation marks its lane with the same
    /// [`JaError::Material`] a scalar model construction would return; the
    /// lane stays inactive for the following runs.
    pub fn assign(&mut self, params: &[JaParameters]) {
        let lanes = params.len();
        for column in [
            &mut self.m_sat,
            &mut self.a,
            &mut self.a2,
            &mut self.k,
            &mut self.alpha,
            &mut self.c,
        ] {
            column.clear();
            column.reserve(lanes);
        }
        self.anhysteretic.clear();
        self.anhysteretic.reserve(lanes);
        self.stats.clear();
        self.stats.resize(lanes, JaStatistics::default());
        self.errors.clear();
        self.errors.resize(lanes, None);
        for (lane, p) in params.iter().enumerate() {
            self.m_sat.push(p.m_sat.value());
            self.a.push(p.a);
            self.a2.push(p.a2);
            self.k.push(p.k);
            self.alpha.push(p.alpha);
            self.c.push(p.c);
            match p.validate() {
                Ok(()) => self.anhysteretic.push(self.config.anhysteretic.build(p)),
                Err(err) => {
                    // The lane is inactive; park a law built from the
                    // (always valid) paper preset so the column stays
                    // aligned without evaluating the invalid shape.
                    self.errors[lane] = Some(JaError::Material(err));
                    self.anhysteretic
                        .push(self.config.anhysteretic.build(&JaParameters::date2006()));
                }
            }
        }
        match &mut self.store {
            LaneStore::F64(columns) => columns.reset(lanes),
            LaneStore::F32(columns) => columns.reset(lanes),
        }
    }

    /// Reconstructs one lane's parameter set from the columns.
    #[inline]
    fn lane_params(&self, lane: usize) -> JaParameters {
        JaParameters {
            m_sat: magnetics::units::Magnetisation::new(self.m_sat[lane]),
            a: self.a[lane],
            a2: self.a2[lane],
            k: self.k[lane],
            alpha: self.alpha[lane],
            c: self.c[lane],
        }
    }

    /// Steps every active lane through `samples` in lockstep, appending one
    /// `(h, b, m)` point per sample to the lane's curve in `curves` (which
    /// must hold exactly [`lanes`](SoaBatch::lanes) curves; each is cleared
    /// first and its capacity reused).  A lane whose state diverges records
    /// its error and stops; the remaining lanes continue.
    ///
    /// # Panics
    ///
    /// Panics when `curves.len()` differs from the assigned lane count.
    pub fn run_samples_into_curves(&mut self, samples: &[f64], curves: &mut [BhCurve]) {
        assert_eq!(
            curves.len(),
            self.lanes(),
            "one output curve per lane is required"
        );
        let Self {
            config,
            m_sat,
            a,
            a2,
            k,
            alpha,
            c,
            anhysteretic,
            store,
            stats,
            errors,
            scratch,
            ..
        } = self;
        let params: [&Vec<f64>; 6] = [&*m_sat, &*a, &*a2, &*k, &*alpha, &*c];
        let law = lockstep_law(config, anhysteretic, a, a2, errors);
        match store {
            LaneStore::F64(columns) => run_columns(
                columns,
                config,
                anhysteretic,
                &params,
                law.as_ref(),
                scratch,
                stats,
                errors,
                samples,
                curves,
            ),
            LaneStore::F32(columns) => run_columns(
                columns,
                config,
                anhysteretic,
                &params,
                law.as_ref(),
                scratch,
                stats,
                errors,
                samples,
                curves,
            ),
        }
    }

    /// The cumulative statistics of one lane.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn lane_statistics(&self, lane: usize) -> JaStatistics {
        self.stats[lane]
    }

    /// The error that deactivated a lane, if any.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn lane_error(&self, lane: usize) -> Option<&JaError> {
        self.errors[lane].as_ref()
    }

    /// The reconstructed parameter set of one lane.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn lane_parameters(&self, lane: usize) -> JaParameters {
        self.lane_params(lane)
    }
}

/// The per-lane normalised anhysteretic evaluation of the lockstep kernel.
/// Implementations must reproduce the corresponding
/// [`Anhysteretic::normalised`](magnetics::anhysteretic::Anhysteretic)
/// operation sequence exactly — that equivalence is what keeps the kernel
/// bit-identical to the scalar model, and [`lockstep_law`] verifies the
/// lane shapes against the built laws before selecting a kernel.
trait LockstepMan {
    /// Number of lanes the law's shape columns cover; the kernel asserts
    /// this equals the batch width so lane indexing is provably in bounds.
    fn lanes(&self) -> usize;
    fn m_an(&self, lane: usize, h_effective: f64) -> f64;
}

/// The paper's modified Langevin, `(2/π)·atan(H_e/a)`, over a lane column.
struct SingleAtanLanes<'x> {
    a: &'x [f64],
}

impl LockstepMan for SingleAtanLanes<'_> {
    #[inline(always)]
    fn lanes(&self) -> usize {
        self.a.len()
    }

    #[inline(always)]
    fn m_an(&self, lane: usize, h_effective: f64) -> f64 {
        std::f64::consts::FRAC_2_PI * fastmath::atan(h_effective / self.a[lane])
    }
}

/// The two-parameter arctangent blend over lane columns.
struct BlendAtanLanes<'x> {
    a: &'x [f64],
    a2: &'x [f64],
    weight: f64,
}

impl LockstepMan for BlendAtanLanes<'_> {
    #[inline(always)]
    fn lanes(&self) -> usize {
        self.a.len().min(self.a2.len())
    }

    #[inline(always)]
    fn m_an(&self, lane: usize, h_effective: f64) -> f64 {
        let t1 = fastmath::atan(h_effective / self.a[lane]);
        let t2 = fastmath::atan(h_effective / self.a2[lane]);
        std::f64::consts::FRAC_2_PI * (self.weight * t1 + (1.0 - self.weight) * t2)
    }
}

/// The anhysteretic law the lockstep kernel will use, or `None` when the
/// batch must take the per-lane fallback (classic Langevin, or any lane
/// whose built law does not match its parameter columns — impossible for
/// batches built by [`SoaBatch::assign`], but checked rather than assumed
/// because bit-identity rides on it).
enum LockstepLaw<'x> {
    Single(SingleAtanLanes<'x>),
    Blend(BlendAtanLanes<'x>),
}

fn lockstep_law<'x>(
    config: &JaConfig,
    anhysteretic: &[AnhystereticKind],
    a: &'x [f64],
    a2: &'x [f64],
    errors: &[Option<JaError>],
) -> Option<LockstepLaw<'x>> {
    match config.anhysteretic {
        AnhystereticChoice::ModifiedLangevin => {
            for (lane, kind) in anhysteretic.iter().enumerate() {
                let matches = matches!(kind, AnhystereticKind::ModifiedLangevin(f)
                    if f.a().to_bits() == a[lane].to_bits());
                if !matches && errors[lane].is_none() {
                    return None;
                }
            }
            Some(LockstepLaw::Single(SingleAtanLanes { a }))
        }
        AnhystereticChoice::DoubleArctan => {
            let weight = 0.5_f64;
            for (lane, kind) in anhysteretic.iter().enumerate() {
                let matches = matches!(kind, AnhystereticKind::DoubleArctan(f)
                    if f.a().to_bits() == a[lane].to_bits()
                        && f.a2().to_bits() == a2[lane].to_bits()
                        && f.weight().to_bits() == weight.to_bits());
                if !matches && errors[lane].is_none() {
                    return None;
                }
            }
            Some(LockstepLaw::Blend(BlendAtanLanes { a, a2, weight }))
        }
        AnhystereticChoice::Langevin => None,
    }
}

/// Runs one precision's columns through the kernel selected by
/// [`lockstep_law`].
#[allow(clippy::too_many_arguments)]
fn run_columns<T: ColumnScalar>(
    columns: &mut StateColumns<T>,
    config: &JaConfig,
    anhysteretic: &[AnhystereticKind],
    params: &[&Vec<f64>; 6],
    law: Option<&LockstepLaw<'_>>,
    scratch: &mut LockstepScratch,
    stats: &mut [JaStatistics],
    errors: &mut [Option<JaError>],
    samples: &[f64],
    curves: &mut [BhCurve],
) {
    match law {
        Some(LockstepLaw::Single(man)) => run_lanes_lockstep(
            columns,
            config,
            anhysteretic,
            params,
            man,
            scratch,
            stats,
            errors,
            samples,
            curves,
        ),
        Some(LockstepLaw::Blend(man)) => run_lanes_lockstep(
            columns,
            config,
            anhysteretic,
            params,
            man,
            scratch,
            stats,
            errors,
            samples,
            curves,
        ),
        None => run_lanes(
            columns,
            config,
            anhysteretic,
            params,
            stats,
            errors,
            samples,
            curves,
        ),
    }
}

/// The lockstep kernel: all lanes advance through each sample together.
///
/// Per sample, three phases mirror [`advance_state`] exactly:
///
/// 1. **gate + irreversible update** (per lane): when the shared field has
///    moved by `ΔH_max` since the lane's last update, the lane's
///    irreversible magnetisation advances through the *same*
///    [`integrate_field_increment`] routine the scalar model calls;
/// 2. **self-consistency fixed point** (lane-inner, branch-light): the
///    [`FIXED_POINT_ITERATIONS`]-capped iteration runs over the flat
///    columns with a per-lane convergence mask replacing the scalar early
///    `break` — converged lanes keep their values through selects, so per
///    lane the applied operation sequence is unchanged while the loop body
///    stays free of data-dependent branches and the polynomial arctangents
///    of adjacent lanes pipeline/vectorise;
/// 3. **finalise** (per lane): rebuild the reversible part, store through
///    the column precision (`f32` mode rounds here, exactly like the
///    fallback path), detect divergence and append the lane's curve point
///    from the post-rounding column values.
#[allow(clippy::too_many_arguments)]
fn run_lanes_lockstep<T: ColumnScalar, M: LockstepMan>(
    columns: &mut StateColumns<T>,
    config: &JaConfig,
    anhysteretic: &[AnhystereticKind],
    params: &[&Vec<f64>; 6],
    man: &M,
    work: &mut LockstepScratch,
    stats: &mut [JaStatistics],
    errors: &mut [Option<JaError>],
    samples: &[f64],
    curves: &mut [BhCurve],
) {
    let lanes = stats.len();
    assert_eq!(man.lanes(), lanes, "lockstep law must cover every lane");
    // Exactly-sized slices let the optimiser prove every `[lane]` access in
    // the hot fixed-point loop is in bounds, which is what allows it to
    // vectorise the loop across lanes.
    let [m_sat, a, a2, k, alpha, c] = params;
    let m_sat = &m_sat[..lanes];
    let a = &a[..lanes];
    let a2 = &a2[..lanes];
    let k = &k[..lanes];
    let alpha = &alpha[..lanes];
    let c = &c[..lanes];

    for buffer in [
        &mut work.m_irr,
        &mut work.m_total,
        &mut work.m_an,
        &mut work.h_last,
    ] {
        buffer.clear();
        buffer.reserve(lanes);
    }
    for lane in 0..lanes {
        work.m_irr.push(columns.m_irr[lane].to_f64());
        work.m_total.push(columns.m_total[lane].to_f64());
        work.m_an.push(columns.m_an[lane].to_f64());
        work.h_last.push(columns.h_last_update[lane].to_f64());
    }
    work.done.clear();
    work.done.resize(lanes, false);
    let LockstepScratch {
        m_irr: w_m_irr,
        m_total: w_m_total,
        m_an: w_m_an,
        h_last: w_h_last,
        done: w_done,
    } = work;
    let w_m_irr = &mut w_m_irr[..lanes];
    let w_m_total = &mut w_m_total[..lanes];
    let w_m_an = &mut w_m_an[..lanes];
    let w_h_last = &mut w_h_last[..lanes];
    let w_done = &mut w_done[..lanes];

    for (lane, curve) in curves.iter_mut().enumerate() {
        curve.clear();
        if errors[lane].is_none() {
            curve.reserve(samples.len());
        }
    }

    for &h in samples {
        if !h.is_finite() {
            // Every live lane fails this sample exactly like the scalar
            // model: no statistics, no state change, curve truncated here.
            for error in errors.iter_mut() {
                if error.is_none() {
                    *error = Some(JaError::NonFiniteField { value: h });
                }
            }
            break;
        }

        // Phase 1 — the paper's monitorH gate and irreversible update.
        for lane in 0..lanes {
            if errors[lane].is_some() {
                continue;
            }
            stats[lane].samples += 1;
            let h_last = w_h_last[lane];
            let dh_accumulated = h - h_last;
            if dh_accumulated.abs() >= config.dh_max {
                let lane_params = JaParameters {
                    m_sat: Magnetisation::new(m_sat[lane]),
                    a: a[lane],
                    a2: a2[lane],
                    k: k[lane],
                    alpha: alpha[lane],
                    c: c[lane],
                };
                let result = integrate_field_increment(
                    &lane_params,
                    &anhysteretic[lane],
                    config,
                    w_m_irr[lane],
                    w_m_total[lane],
                    h_last,
                    h,
                );
                w_m_irr[lane] += result.dm_irr;
                w_h_last[lane] = h;
                columns.updates[lane] += 1;
                let lane_stats = &mut stats[lane];
                lane_stats.updates += 1;
                lane_stats.slope_evaluations += u64::from(result.slope_evaluations);
                lane_stats.negative_slope_events += u64::from(result.negative_slope_events);
                lane_stats.rejected_updates += u64::from(result.rejected_updates);
            }
        }

        // Phase 2 — the paper's core(): the self-consistency fixed point,
        // in lockstep.  The convergence mask replaces the scalar early
        // break; a converged lane carries its values unchanged, so the
        // per-lane operation sequence matches `advance_state` bit for bit.
        for done in w_done.iter_mut() {
            *done = false;
        }
        for _ in 0..FIXED_POINT_ITERATIONS {
            for lane in 0..lanes {
                let m_total = w_m_total[lane];
                let h_effective = h + alpha[lane] * m_sat[lane] * m_total;
                let m_an = man.m_an(lane, h_effective);
                let next = total_magnetisation(config.formulation, c[lane], m_an, w_m_irr[lane]);
                let converged = (next - m_total).abs() < FIXED_POINT_TOLERANCE;
                let done = w_done[lane];
                w_m_an[lane] = if done { w_m_an[lane] } else { m_an };
                w_m_total[lane] = if done { m_total } else { next };
                w_done[lane] = done || converged;
            }
        }

        // Phase 3 — finalise, store through the column precision, emit.
        for lane in 0..lanes {
            if errors[lane].is_some() {
                continue;
            }
            let state = JaState {
                m_irr: w_m_irr[lane],
                m_rev: w_m_total[lane] - w_m_irr[lane],
                m_total: w_m_total[lane],
                m_an: w_m_an[lane],
                h,
                h_last_update: w_h_last[lane],
                updates: columns.updates[lane],
            };
            columns.store(lane, &state);
            if !state.is_finite() {
                errors[lane] = Some(JaError::StateDiverged { at_field: h });
                continue;
            }
            // The next sample starts from the stored state (rounded in f32
            // mode), exactly like the fallback path's per-sample load.
            w_m_irr[lane] = columns.m_irr[lane].to_f64();
            w_m_total[lane] = columns.m_total[lane].to_f64();
            w_m_an[lane] = columns.m_an[lane].to_f64();
            w_h_last[lane] = columns.h_last_update[lane].to_f64();
            let h_out = columns.h[lane].to_f64();
            let m_total_out = columns.m_total[lane].to_f64();
            let sat = m_sat[lane];
            curves[lane].push_raw(h_out, MU0 * (h_out + m_total_out * sat), m_total_out * sat);
        }
    }
}

/// The per-lane fallback sweep: every active lane walks the whole sample
/// sequence with its state held in locals, delegating each step to the
/// shared [`advance_state`].  Lane-major order keeps the per-lane state and
/// the curve append stream hot; the per-lane operation sequence is exactly
/// the scalar model's, which is what makes `f64` lanes bit-identical.
#[allow(clippy::too_many_arguments)]
fn run_lanes<T: ColumnScalar>(
    columns: &mut StateColumns<T>,
    config: &JaConfig,
    anhysteretic: &[AnhystereticKind],
    params: &[&Vec<f64>; 6],
    stats: &mut [JaStatistics],
    errors: &mut [Option<JaError>],
    samples: &[f64],
    curves: &mut [BhCurve],
) {
    let [m_sat, a, a2, k, alpha, c] = params;
    for lane in 0..stats.len() {
        let curve = &mut curves[lane];
        curve.clear();
        if errors[lane].is_some() {
            continue;
        }
        curve.reserve(samples.len());
        let lane_params = JaParameters {
            m_sat: magnetics::units::Magnetisation::new(m_sat[lane]),
            a: a[lane],
            a2: a2[lane],
            k: k[lane],
            alpha: alpha[lane],
            c: c[lane],
        };
        let lane_anhysteretic = &anhysteretic[lane];
        let mut lane_stats = stats[lane];
        let sat = lane_params.m_sat.value();
        for &h in samples {
            let mut state = columns.load(lane);
            let step = advance_state(
                &lane_params,
                lane_anhysteretic,
                config,
                &mut state,
                &mut lane_stats,
                h,
            );
            columns.store(lane, &state);
            if let Err(err) = step {
                errors[lane] = Some(err);
                break;
            }
            // The same expressions as the scalar `JilesAtherton::sample`,
            // read back through the columns so the curve reflects exactly
            // what the lane stores (in f64 mode the round trip is the
            // identity).
            let h_out = columns.h[lane].to_f64();
            let m_total = columns.m_total[lane].to_f64();
            curve.push_raw(h_out, MU0 * (h_out + m_total * sat), m_total * sat);
        }
        stats[lane] = lane_stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::HysteresisBackend;
    use crate::model::JilesAtherton;
    use waveform::schedule::FieldSchedule;

    fn materials() -> Vec<JaParameters> {
        vec![
            JaParameters::date2006(),
            JaParameters::jiles_atherton_1984(),
            JaParameters::soft_ferrite(),
            JaParameters::hard_steel(),
        ]
    }

    fn curve_bits(curve: &BhCurve) -> Vec<(u64, u64, u64)> {
        curve
            .points()
            .iter()
            .map(|p| {
                (
                    p.h.value().to_bits(),
                    p.b.as_tesla().to_bits(),
                    p.m.value().to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn f64_lanes_are_bit_identical_to_scalar_models() {
        let schedule = FieldSchedule::major_loop(10_000.0, 100.0, 2).expect("schedule");
        let samples = schedule.to_samples();
        let params = materials();
        let config = JaConfig::default();

        let mut batch = SoaBatch::new(config, SoaPrecision::F64).expect("valid config");
        batch.assign(&params);
        let mut curves = vec![BhCurve::new(); params.len()];
        batch.run_samples_into_curves(&samples, &mut curves);

        for (lane, p) in params.iter().enumerate() {
            let mut scalar = JilesAtherton::with_config(*p, config).expect("valid");
            let reference = scalar.run_samples(&samples).expect("scalar run");
            assert!(batch.lane_error(lane).is_none());
            assert_eq!(
                curve_bits(&curves[lane]),
                curve_bits(&reference),
                "lane {lane} diverges from scalar bitwise"
            );
            assert_eq!(batch.lane_statistics(lane), scalar.statistics());
        }
    }

    #[test]
    fn reassignment_reuses_lanes_and_resets_state() {
        let schedule = FieldSchedule::major_loop(5_000.0, 100.0, 1).expect("schedule");
        let samples = schedule.to_samples();
        let mut batch = SoaBatch::new(JaConfig::default(), SoaPrecision::F64).expect("config");
        let mut curves = vec![BhCurve::new(); 2];

        batch.assign(&[JaParameters::date2006(), JaParameters::hard_steel()]);
        batch.run_samples_into_curves(&samples, &mut curves);
        let first = curve_bits(&curves[0]);

        // Re-assigning the same parameters must reproduce the run exactly
        // (the state reset is part of `assign`).
        batch.assign(&[JaParameters::date2006(), JaParameters::hard_steel()]);
        batch.run_samples_into_curves(&samples, &mut curves);
        assert_eq!(curve_bits(&curves[0]), first);
        assert_eq!(batch.lanes(), 2);
    }

    #[test]
    fn invalid_lane_reports_material_error_and_others_run() {
        let mut bad = JaParameters::date2006();
        bad.k = -1.0;
        let mut batch = SoaBatch::new(JaConfig::default(), SoaPrecision::F64).expect("config");
        batch.assign(&[JaParameters::date2006(), bad]);
        let samples = [0.0, 100.0, 200.0];
        let mut curves = vec![BhCurve::new(); 2];
        batch.run_samples_into_curves(&samples, &mut curves);
        assert!(batch.lane_error(0).is_none());
        assert!(matches!(batch.lane_error(1), Some(JaError::Material(_))));
        assert_eq!(curves[0].len(), 3);
        assert!(curves[1].is_empty());
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let bad = JaConfig::default().with_dh_max(0.0);
        assert!(matches!(
            SoaBatch::new(bad, SoaPrecision::F64),
            Err(JaError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn f32_mode_tracks_scalar_within_tolerance() {
        let schedule = FieldSchedule::major_loop(10_000.0, 100.0, 2).expect("schedule");
        let samples = schedule.to_samples();
        let params = materials();
        let config = JaConfig::default();

        let mut batch = SoaBatch::new(config, SoaPrecision::F32).expect("valid config");
        batch.assign(&params);
        let mut curves = vec![BhCurve::new(); params.len()];
        batch.run_samples_into_curves(&samples, &mut curves);

        for (lane, p) in params.iter().enumerate() {
            let mut scalar = JilesAtherton::with_config(*p, config).expect("valid");
            let reference = scalar.run_samples(&samples).expect("scalar run");
            let b_peak = reference
                .points()
                .iter()
                .map(|p| p.b.as_tesla().abs())
                .fold(0.0, f64::max);
            let worst = curves[lane]
                .points()
                .iter()
                .zip(reference.points())
                .map(|(lhs, rhs)| (lhs.b.as_tesla() - rhs.b.as_tesla()).abs())
                .fold(0.0, f64::max);
            // The documented f32-mode bound: relative B error under 1e-4 of
            // the loop peak.
            assert!(
                worst <= 1e-4 * b_peak,
                "lane {lane}: |ΔB| = {worst} exceeds 1e-4 × {b_peak}"
            );
        }
    }
}
