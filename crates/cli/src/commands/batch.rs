//! `ja batch` — run a scenario grid in parallel, emit the batch report.
//!
//! Two output formats share one execution engine: the default `json`
//! format buffers every outcome and writes one pretty-printed report
//! document, while `--format ndjson` streams one compact record per grid
//! entry as workers finish (memory stays flat in the grid size) and can
//! checkpoint/resume long runs — see `docs/SCHEMA.md` for the record,
//! manifest and checkpoint schemas.

use std::fs;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};

use hdl_models::exec::BatchRunner;
use hdl_models::report::{batch_report_value, write_ndjson_batch, StreamCheckpoint};
use hdl_models::scenario::Scenario;

use crate::common::{read_input, write_output};
use crate::{grid_config, opts, CliError};

/// Per-subcommand help (see `ja help batch`).
pub const HELP: &str = "\
ja batch — run a scenario grid in parallel and emit a batch report

USAGE:
    ja batch --config PATH [OPTIONS]

OPTIONS:
    --config PATH      grid config file (required; format below)
    --workers N        worker threads; 0 = one per core        [default: 0]
    --fail-fast        stop scheduling after the first failure (unexecuted
                       scenarios are reported as status \"cancelled\")
    --routing MODE     how same-shaped scenarios are executed [default: auto]
                         auto    groups of >= 2 timeless non-circuit
                                 scenarios sharing a config and excitation
                                 run as one structure-of-arrays lockstep
                                 sweep; everything else runs scalar
                         soa     lockstep even for singleton groups
                         scalar  always one scenario at a time
                       Routing never changes report content: SoA f64 lanes
                       are bit-identical to scalar runs.
    --format FMT       report format                           [default: json]
                         json    one pretty-printed kind:\"batch\" document,
                                 buffered until the whole grid has run
                         ndjson  streaming: one compact record per grid
                                 entry as it completes, then a final
                                 kind:\"batch_manifest\" line carrying the
                                 entries digest (see docs/SCHEMA.md).
                                 Byte-identical for any --workers/--routing
                                 value; never carries timing fields.
    --timings          (json only) include the run-dependent timing fields
                       (per-entry wall_clock_ns/runtime_ns and a trailing
                       `timing` object). Off by default so the report is
                       byte-identical for any --workers value.
    --out PATH         write to PATH instead of stdout
    --output PATH      synonym of --out (ndjson checkpoints require a real
                       file: they record a byte offset into it)
    --checkpoint-every N
                       with --format ndjson --output: every N records,
                       flush the report file and atomically rewrite
                       PATH.checkpoint; 0 disables checkpointing
                       [default: 256]. The checkpoint file is deleted when
                       the run completes.
    --resume PATH      continue an interrupted ndjson run from its
                       checkpoint file: the report file is truncated to the
                       checkpointed byte offset (discarding any torn tail),
                       already-emitted entries are skipped, and the final
                       file is byte-identical to an uninterrupted run

GRID CONFIG (`key = value` lines; `#` comments; repeat a key to add a value
to that axis, the grid is the cartesian product of all axes):
    material   = date2006 | ja1984 | soft-ferrite | hard-steel
    backend    = direct | systemc | ams | time-domain | all | timeless
    dh_max     = <A/m>                          (one model config per value)
    excitation = major  peak=10000 step=100 cycles=1
    excitation = fig1   step=50
    excitation = biased bias=1000 amplitude=500 cycles=1 step=10
    excitation = degauss h_start=10000 h_stop=100 decay=0.5 step=10
    excitation = circuit source=sine|triangular|pwm amplitude=30
                 frequency=50 duty=0.5 r=1 turns=200 area=1e-4 path=0.1
                 t_end=0.04 dt=5e-5 control=fixed|adaptive
                 (duty applies to source=pwm only)
    temperature = -40:25:125    operating-point axis (degC, colon-separated
                                list, repeatable); material parameters are
                                resolved through each material's thermal
                                coefficients before simulation, and every
                                scenario key gains a fifth `/t<degC>`
                                segment
    geometry   = area=1e-4 path=0.1 frequency=50 lamination=silicon-steel
                                one core geometry shared by every operating
                                point; with a frequency the report entries
                                carry a `loss` object (lamination adds the
                                eddy-current term).  Without a temperature
                                axis it contributes a single `geom` point.
Omitted axes default to date2006 / the direct backend / ΔH_max = 10 A/m;
at least one excitation is required.  Without `temperature`/`geometry`
lines the report is byte-identical to one produced before those axes
existed.

EXIT STATUS: 0 when every scenario succeeded, 1 otherwise (the report is
written either way).";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options or config; failure when any scenario
/// failed (after writing the report) or output fails.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &["fail-fast", "timings"],
        &[
            "config",
            "workers",
            "routing",
            "out",
            "format",
            "output",
            "resume",
            "checkpoint-every",
        ],
    )?;
    parsed.no_positionals()?;

    let out_path = match (parsed.value("out"), parsed.value("output")) {
        (Some(_), Some(_)) => {
            return Err(CliError::usage(
                "--out and --output are synonyms; give only one",
            ))
        }
        (out, output) => out.or(output),
    };

    let config_text = read_input(parsed.require("config")?)?;
    let grid = grid_config::parse_grid(&config_text)?;
    let scenarios = grid
        .scenarios()
        .map_err(|err| CliError::usage(err.to_string()))?;

    let mut runner = BatchRunner::new()
        .workers(parsed.usize_or("workers", 0)?)
        .soa_routing(crate::common::routing_by_name(
            parsed.value("routing").unwrap_or("auto"),
        )?);
    if parsed.flag("fail-fast") {
        runner = runner.fail_fast();
    }

    match parsed.value("format").unwrap_or("json") {
        "json" => {
            for opt in ["resume", "checkpoint-every"] {
                if parsed.value(opt).is_some() {
                    return Err(CliError::usage(format!("--{opt} requires --format ndjson")));
                }
            }
            let report = runner.run(scenarios);
            let doc = batch_report_value(&report, parsed.flag("timings"));
            write_output(out_path, &doc.to_pretty_string())?;
            scenarios_failed(
                report.entries.len() - report.successes().count(),
                report.entries.len(),
            )
        }
        "ndjson" => run_ndjson(&parsed, &runner, &scenarios, out_path),
        other => Err(CliError::usage(format!(
            "--format expects json | ndjson, got `{other}`"
        ))),
    }
}

/// The streaming path: NDJSON records to stdout or to `--output PATH`
/// with optional checkpointing and resume.
fn run_ndjson(
    parsed: &opts::Parsed,
    runner: &BatchRunner,
    scenarios: &[Scenario],
    output: Option<&str>,
) -> Result<(), CliError> {
    if parsed.flag("timings") {
        return Err(CliError::usage(
            "--timings is not available with --format ndjson (records are byte-deterministic \
             and never carry timing fields)",
        ));
    }
    let checkpoint_every = parsed.usize_or("checkpoint-every", 256)?;

    let Some(output) = output else {
        if parsed.value("resume").is_some() || parsed.value("checkpoint-every").is_some() {
            return Err(CliError::usage(
                "--resume/--checkpoint-every need --output PATH: a checkpoint records a byte \
                 offset into the report file",
            ));
        }
        let stdout = io::stdout();
        let mut out = BufWriter::new(stdout.lock());
        let state = write_ndjson_batch(runner, scenarios, None, &mut out, |_, _| Ok(()))
            .and_then(|state| out.flush().map(|()| state))
            .map_err(|err| CliError::failure(format!("cannot stream report: {err}")))?;
        return scenarios_failed(state.failed, scenarios.len());
    };

    let resume = match parsed.value("resume") {
        None => None,
        Some(path) => {
            let text = read_input(path)?;
            Some(StreamCheckpoint::parse(&text).map_err(|err| {
                CliError::failure(format!("invalid checkpoint file `{path}`: {err}"))
            })?)
        }
    };

    let file = match &resume {
        // Resume appends after the checkpointed offset; anything past it
        // is a torn record from the interrupted run and is discarded.
        Some(checkpoint) => fs::OpenOptions::new()
            .write(true)
            .open(output)
            .and_then(|file| {
                file.set_len(checkpoint.byte_offset)?;
                let mut file = file;
                file.seek(SeekFrom::End(0))?;
                Ok(file)
            }),
        None => fs::File::create(output),
    }
    .map_err(|err| CliError::failure(format!("cannot open `{output}`: {err}")))?;

    let checkpoint_path = format!("{output}.checkpoint");
    let mut out = BufWriter::new(file);
    let state = write_ndjson_batch(
        runner,
        scenarios,
        resume.as_ref(),
        &mut out,
        |state, out| {
            if checkpoint_every > 0 && state.entries % checkpoint_every == 0 {
                // Order matters for crash safety: the report bytes the
                // checkpoint's offset points at must be durable in the file
                // before the checkpoint claims them.
                out.flush()?;
                write_checkpoint(&checkpoint_path, state)?;
            }
            Ok(())
        },
    )
    .and_then(|state| out.flush().map(|()| state))
    .map_err(|err| CliError::failure(format!("cannot write `{output}`: {err}")))?;

    // A completed run needs no checkpoint; leaving one behind would
    // invite a pointless resume of a finished grid.
    match fs::remove_file(&checkpoint_path) {
        Ok(()) => {}
        Err(err) if err.kind() == io::ErrorKind::NotFound => {}
        Err(err) => {
            return Err(CliError::failure(format!(
                "cannot remove `{checkpoint_path}`: {err}"
            )))
        }
    }
    scenarios_failed(state.failed, scenarios.len())
}

/// Atomically replaces the checkpoint file (write-to-temporary, rename):
/// a crash mid-write must never leave a half-written checkpoint where a
/// resume would read it.
fn write_checkpoint(path: &str, state: &StreamCheckpoint) -> io::Result<()> {
    let tmp = format!("{path}.tmp");
    fs::write(&tmp, state.to_json().to_pretty_string())?;
    fs::rename(&tmp, path)
}

/// The shared exit policy: the report is already written, so failures
/// only decide the exit status.
fn scenarios_failed(failed: usize, total: usize) -> Result<(), CliError> {
    if failed > 0 {
        return Err(CliError::failure(format!(
            "{failed} of {total} scenarios did not succeed"
        )));
    }
    Ok(())
}
