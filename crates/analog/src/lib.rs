//! Analogue-solver substrate: linear algebra, Newton iteration, ODE
//! integration and modified-nodal-analysis (MNA) circuit simulation.
//!
//! The paper contrasts its *timeless* magnetisation-slope integration with
//! the conventional approach in which `dM/dH` is converted into `dM/dt` and
//! handed to the simulator's analogue solver (VHDL-AMS `'INTEG`, SPICE /
//! SABER transient engines).  Rust has no such solver, so this crate builds
//! the substrate the baseline needs:
//!
//! * [`linalg`] — dense matrices and LU factorisation with partial pivoting;
//! * [`newton`] — damped Newton–Raphson for nonlinear algebraic systems,
//!   with the iteration statistics the stability experiments report;
//! * [`ode`] — explicit (FE, Heun, RK4), implicit (BE, trapezoidal) and
//!   adaptive (RKF45) integrators over a small [`ode::OdeSystem`] trait;
//! * [`circuit`] — an MNA netlist builder and transient engine with
//!   resistors, capacitors, inductors, independent sources and a
//!   behavioural nonlinear inductor driven by a pluggable
//!   [`circuit::MagneticCoreModel`] (the hook the JA core model uses to sit
//!   inside a circuit, exactly as it would in SPICE).  The transient
//!   engine's time stepping is itself pluggable ([`circuit::StepControl`]):
//!   index-arithmetic fixed steps, or an adaptive controller that sizes
//!   each step from a local-truncation-error estimate with
//!   Newton-iteration feedback.
//!
//! # Examples
//!
//! A transient circuit solve under adaptive step control — the controller
//! spends its steps on the RC charging edge and stretches toward
//! `max_step` once the capacitor settles:
//!
//! ```
//! use analog_solver::circuit::elements::{Capacitor, Resistor, VoltageSource};
//! use analog_solver::circuit::{Circuit, Node, TransientAnalysis};
//! use analog_solver::ode::adaptive::AdaptiveOptions;
//! use waveform::generator::Constant;
//!
//! # fn main() -> Result<(), analog_solver::SolverError> {
//! let mut circuit = Circuit::new();
//! let vin = circuit.node();
//! let vc = circuit.node();
//! circuit.add("V1", VoltageSource::new(vin, Node::GROUND, Constant(1.0)))?;
//! circuit.add("R1", Resistor::new(vin, vc, 1_000.0)?)?;
//! circuit.add("C1", Capacitor::new(vc, Node::GROUND, 1e-6)?)?;
//!
//! let options = AdaptiveOptions {
//!     rel_tol: 1e-2,
//!     abs_tol: 1e-3,
//!     initial_step: 1e-7,
//!     min_step: 1e-12,
//!     max_step: 1e-3,
//! };
//! let result = TransientAnalysis::adaptive(options, 5e-3)?.run(&mut circuit)?;
//! // The grid ends exactly at t_end and the capacitor is charged.
//! assert_eq!(*result.times().last().unwrap(), 5e-3);
//! assert!((result.voltage(vc)?.last().unwrap() - 1.0).abs() < 0.02);
//! # Ok(())
//! # }
//! ```
//!
//! Fixed-step ODE integration:
//!
//! ```
//! use analog_solver::ode::{OdeSystem, explicit::Rk4, FixedStepIntegrator};
//!
//! struct Decay;
//! impl OdeSystem for Decay {
//!     fn dim(&self) -> usize { 1 }
//!     fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
//!         dydt[0] = -y[0];
//!     }
//! }
//!
//! # fn main() -> Result<(), analog_solver::SolverError> {
//! let trajectory = Rk4.integrate(&Decay, &[1.0], 0.0, 1.0, 1e-3)?;
//! let y_end = trajectory.last_state()[0];
//! assert!((y_end - (-1.0_f64).exp()).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod error;
pub mod linalg;
pub mod newton;
pub mod ode;

pub use error::SolverError;
