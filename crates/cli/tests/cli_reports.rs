//! End-to-end tests of the `ja` binary and its machine-readable reports.
//!
//! Every JSON document the CLI emits is validated against the report
//! schema (`schema_version`, `kind`, required keys) using the library's
//! own parser, and the batch report is asserted byte-identical across
//! worker counts — the determinism guarantee of the scenario engine must
//! extend through the CLI.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use ja_hysteresis::json::{JsonValue, SCHEMA_VERSION, SCHEMA_VERSION_KEY};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ja-cli-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

fn ja(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ja"))
        .args(args)
        .output()
        .expect("spawn ja")
}

fn ja_ok(args: &[&str]) -> String {
    let output = ja(args);
    assert!(
        output.status.success(),
        "ja {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("stdout is UTF-8")
}

fn parse_report(text: &str, kind: &str) -> JsonValue {
    let doc = JsonValue::parse(text).expect("report parses as JSON");
    assert_eq!(
        doc.get(SCHEMA_VERSION_KEY).and_then(JsonValue::as_i64),
        Some(SCHEMA_VERSION),
        "schema_version present and current"
    );
    assert_eq!(doc.get("kind").and_then(JsonValue::as_str), Some(kind));
    doc
}

const METRIC_KEYS: [&str; 6] = [
    "b_max_t",
    "h_max_a_per_m",
    "coercivity_a_per_m",
    "remanence_t",
    "loop_area_j_per_m3",
    "negative_slope_samples",
];

const STATS_KEYS: [&str; 5] = [
    "samples",
    "updates",
    "slope_evaluations",
    "negative_slope_events",
    "rejected_updates",
];

#[test]
fn batch_reports_are_byte_identical_across_worker_counts() {
    let config = fixture("grid.conf");
    let config = config.to_str().unwrap();
    let one = ja_ok(&["batch", "--config", config, "--workers", "1"]);
    let eight = ja_ok(&["batch", "--config", config, "--workers", "8"]);
    assert_eq!(one, eight, "batch report must not depend on --workers");

    let doc = parse_report(&one, "batch");
    assert_eq!(doc.get("scenarios").and_then(JsonValue::as_i64), Some(8));
    assert_eq!(doc.get("succeeded").and_then(JsonValue::as_i64), Some(8));
    assert_eq!(doc.get("failed").and_then(JsonValue::as_i64), Some(0));
    assert!(doc.get("timing").is_none(), "timing is opt-in");
    let entries = doc.get("entries").unwrap().as_array().unwrap();
    assert_eq!(entries.len(), 8);
    for entry in entries {
        assert_eq!(entry.get("status").and_then(JsonValue::as_str), Some("ok"));
        let scenario = entry.get("scenario").and_then(JsonValue::as_str).unwrap();
        assert_eq!(scenario.split('/').count(), 4, "{scenario}");
        assert!(entry.get("samples").and_then(JsonValue::as_i64).unwrap() > 0);
        let metrics = entry.get("metrics").unwrap().as_object().unwrap();
        let keys: Vec<&str> = metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, METRIC_KEYS);
        let stats = entry.get("stats").unwrap().as_object().unwrap();
        let keys: Vec<&str> = stats.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, STATS_KEYS);
    }
}

const TRANSIENT_KEYS: [&str; 5] = [
    "accepted_steps",
    "rejected_steps",
    "newton_iterations",
    "lu_solves",
    "non_converged_steps",
];

#[test]
fn mixed_batch_reports_are_byte_identical_across_worker_counts() {
    // The acceptance gate of the circuit-scenario work: a grid mixing
    // field-driven and circuit-driven (fixed + adaptive) scenarios must
    // stay byte-identical across worker counts, with the deterministic
    // transient counters present on circuit entries only.
    let config = fixture("grid_mixed.conf");
    let config = config.to_str().unwrap();
    let one = ja_ok(&["batch", "--config", config, "--workers", "1"]);
    let eight = ja_ok(&["batch", "--config", config, "--workers", "8"]);
    assert_eq!(
        one, eight,
        "mixed batch report must not depend on --workers"
    );

    let doc = parse_report(&one, "batch");
    assert_eq!(doc.get("scenarios").and_then(JsonValue::as_i64), Some(3));
    assert_eq!(doc.get("succeeded").and_then(JsonValue::as_i64), Some(3));
    let entries = doc.get("entries").unwrap().as_array().unwrap();
    let field_entry = &entries[0];
    assert!(field_entry
        .get("scenario")
        .and_then(JsonValue::as_str)
        .unwrap()
        .starts_with("major("));
    assert!(
        field_entry.get("transient").is_none(),
        "field-driven entries carry no transient object"
    );
    let mut accepted = Vec::new();
    for entry in &entries[1..] {
        assert!(entry
            .get("scenario")
            .and_then(JsonValue::as_str)
            .unwrap()
            .starts_with("circuit("));
        let transient = entry.get("transient").unwrap().as_object().unwrap();
        let keys: Vec<&str> = transient.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, TRANSIENT_KEYS);
        accepted.push(
            entry
                .get("transient")
                .and_then(|t| t.get("accepted_steps"))
                .and_then(JsonValue::as_i64)
                .unwrap(),
        );
    }
    // grid_mixed.conf runs the same circuit fixed then adaptive: the
    // adaptive controller must finish in fewer accepted steps.
    assert!(
        accepted[1] < accepted[0],
        "adaptive {} vs fixed {}",
        accepted[1],
        accepted[0]
    );
}

#[test]
fn transient_emits_all_three_formats() {
    let json = ja_ok(&["transient", "--t-end", "0.02", "--format", "json"]);
    let doc = parse_report(&json, "transient");
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    let transient = doc.get("transient").unwrap().as_object().unwrap();
    let keys: Vec<&str> = transient.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, TRANSIENT_KEYS);
    assert!(
        doc.get("scenario")
            .and_then(JsonValue::as_str)
            .unwrap()
            .starts_with("circuit(sine(amplitude=30,frequency=50)"),
        "stable scenario key"
    );

    let adaptive = ja_ok(&[
        "transient",
        "--adaptive",
        "--t-end",
        "0.02",
        "--format",
        "json",
    ]);
    let adaptive_doc = parse_report(&adaptive, "transient");
    let steps = |doc: &JsonValue| {
        doc.get("transient")
            .and_then(|t| t.get("accepted_steps"))
            .and_then(JsonValue::as_i64)
            .unwrap()
    };
    assert!(
        steps(&adaptive_doc) < steps(&doc),
        "adaptive {} vs fixed {}",
        steps(&adaptive_doc),
        steps(&doc)
    );

    let csv = ja_ok(&["transient", "--t-end", "0.02", "--format", "csv"]);
    assert_eq!(csv.lines().next(), Some("h,b,m"));
    assert!(csv.lines().count() > 100);

    let ascii = ja_ok(&["transient", "--t-end", "0.02"]);
    assert!(ascii.contains('*'));
    assert!(ascii.contains("accepted_steps"));
}

#[test]
fn transient_usage_errors() {
    for args in [
        &["transient", "--source", "square"] as &[&str],
        &["transient", "--rel-tol", "0.5"],
        &["transient", "--dt", "0"],
        &["transient", "--adaptive", "--abs-tol", "0"],
        &["transient", "--adaptive", "--max-step", "1e-15"],
        &["transient", "--format", "xml", "--t-end", "0.001"],
    ] {
        let output = ja(args);
        assert_eq!(output.status.code(), Some(2), "ja {args:?}");
        assert!(!output.stderr.is_empty());
    }
}

#[test]
fn batch_timings_flag_adds_the_timing_block() {
    let config = fixture("grid.conf");
    let out = ja_ok(&[
        "batch",
        "--config",
        config.to_str().unwrap(),
        "--workers",
        "2",
        "--timings",
    ]);
    let doc = parse_report(&out, "batch");
    let timing = doc.get("timing").expect("timing present with --timings");
    assert_eq!(timing.get("workers").and_then(JsonValue::as_i64), Some(2));
    assert!(
        timing
            .get("elapsed_ns")
            .and_then(JsonValue::as_i64)
            .unwrap()
            > 0
    );
    let entries = doc.get("entries").unwrap().as_array().unwrap();
    assert!(entries[0].get("wall_clock_ns").is_some());
    assert!(entries[0].get("runtime_ns").is_some());
}

#[test]
fn batch_ndjson_streams_identically_across_workers_and_resume() {
    let config = fixture("grid.conf");
    let config = config.to_str().unwrap();
    let one = ja_ok(&["batch", "--config", config, "--format", "ndjson"]);
    let eight = ja_ok(&[
        "batch",
        "--config",
        config,
        "--format",
        "ndjson",
        "--workers",
        "8",
    ]);
    assert_eq!(one, eight, "NDJSON stream must not depend on --workers");

    let lines: Vec<&str> = one.lines().collect();
    assert_eq!(lines.len(), 9, "8 records + 1 manifest line");
    for (index, line) in lines[..8].iter().enumerate() {
        let record = JsonValue::parse(line).expect("record parses");
        assert_eq!(
            record.get("index").and_then(JsonValue::as_i64),
            Some(index as i64)
        );
        assert_eq!(record.get("status").and_then(JsonValue::as_str), Some("ok"));
        assert!(record.get("wall_clock_ns").is_none(), "no timings, ever");
    }
    let manifest = JsonValue::parse(lines[8]).expect("manifest parses");
    assert_eq!(
        manifest.get("kind").and_then(JsonValue::as_str),
        Some("batch_manifest")
    );
    assert_eq!(
        manifest.get("succeeded").and_then(JsonValue::as_i64),
        Some(8)
    );

    // --output writes the same bytes and cleans its checkpoint up.
    let out = scratch("stream.ndjson");
    let out_path = out.to_str().unwrap();
    ja_ok(&[
        "batch",
        "--config",
        config,
        "--format",
        "ndjson",
        "--output",
        out_path,
        "--checkpoint-every",
        "1",
    ]);
    assert_eq!(std::fs::read_to_string(&out).unwrap(), one);
    let checkpoint = format!("{out_path}.checkpoint");
    assert!(
        !Path::new(&checkpoint).exists(),
        "completed runs delete their checkpoint"
    );

    // Kill a checkpointing run mid-grid, resume it, and demand the final
    // file be byte-identical to the uninterrupted stream. If the run wins
    // the race and completes before the kill, its checkpoint is already
    // gone and the file must stand on its own.
    let out = scratch("stream_resumed.ndjson");
    let out_path = out.to_str().unwrap();
    let checkpoint = format!("{out_path}.checkpoint");
    let _ = std::fs::remove_file(&checkpoint);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ja"))
        .args([
            "batch",
            "--config",
            config,
            "--format",
            "ndjson",
            "--workers",
            "1",
            "--output",
            out_path,
            "--checkpoint-every",
            "1",
        ])
        .spawn()
        .expect("spawn ja");
    for _ in 0..5000 {
        if Path::new(&checkpoint).exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let _ = child.kill();
    let _ = child.wait();
    if Path::new(&checkpoint).exists() {
        ja_ok(&[
            "batch",
            "--config",
            config,
            "--format",
            "ndjson",
            "--workers",
            "8",
            "--output",
            out_path,
            "--resume",
            &checkpoint,
        ]);
    }
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        one,
        "resumed file diverged from the uninterrupted stream"
    );
    assert!(!Path::new(&checkpoint).exists());
}

#[test]
fn batch_ndjson_usage_errors() {
    let config = fixture("grid.conf");
    let config = config.to_str().unwrap();
    for args in [
        &["batch", "--config", config, "--format", "xml"] as &[&str],
        &[
            "batch",
            "--config",
            config,
            "--format",
            "ndjson",
            "--timings",
        ],
        &[
            "batch",
            "--config",
            config,
            "--format",
            "ndjson",
            "--resume",
            "x.checkpoint",
        ],
        &[
            "batch",
            "--config",
            config,
            "--format",
            "ndjson",
            "--checkpoint-every",
            "4",
        ],
        &["batch", "--config", config, "--resume", "x.checkpoint"],
        &["batch", "--config", config, "--out", "a", "--output", "b"],
    ] {
        let output = ja(args);
        assert_eq!(output.status.code(), Some(2), "ja {args:?}");
        assert!(!output.stderr.is_empty(), "ja {args:?} explains itself");
    }
}

#[test]
fn sweep_emits_all_three_formats() {
    let json = ja_ok(&["sweep", "--step", "250", "--format", "json"]);
    let doc = parse_report(&json, "sweep");
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(
        doc.get("backend").and_then(JsonValue::as_str),
        Some("direct-timeless")
    );
    assert_eq!(
        doc.get("scenario").and_then(JsonValue::as_str),
        Some("major(peak=10000,step=250,cycles=1)/direct-timeless/dh10/date2006")
    );
    let b_max = doc
        .get("metrics")
        .and_then(|m| m.get("b_max_t"))
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(b_max > 1.2, "B_max = {b_max} T");

    let csv = ja_ok(&["sweep", "--step", "250", "--format", "csv"]);
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("h,b,m"));
    assert!(lines.clone().count() > 100);
    // Lossless round-trip: every value parses back to a finite f64.
    for line in lines {
        for field in line.split(',') {
            let v: f64 = field.parse().expect(field);
            assert!(v.is_finite());
        }
    }

    let ascii = ja_ok(&["sweep", "--step", "250", "--format", "ascii"]);
    assert!(ascii.contains('*'));
    assert!(ascii.contains("b_max_t"));
}

#[test]
fn fit_recovers_the_fixture_loop() {
    let input = fixture("measured_loop.csv");
    let out = ja_ok(&["fit", "--input", input.to_str().unwrap()]);
    let doc = parse_report(&out, "fit");
    assert_eq!(
        doc.get("h_peak_a_per_m").and_then(JsonValue::as_f64),
        Some(10_000.0),
        "h_peak defaults to the input's max |H|"
    );
    let measured = doc.get("measured").unwrap().as_object().unwrap();
    let keys: Vec<&str> = measured.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, METRIC_KEYS);
    let params = doc.get("params").unwrap().as_object().unwrap();
    let keys: Vec<&str> = params.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "m_sat_a_per_m",
            "a_a_per_m",
            "a2_a_per_m",
            "k_a_per_m",
            "alpha",
            "c"
        ]
    );
    let cost = doc.get("cost").and_then(JsonValue::as_f64).unwrap();
    assert!(cost < 0.15, "residual cost {cost}");
    assert!(doc.get("evaluations").and_then(JsonValue::as_i64).unwrap() > 10);
}

#[test]
fn fit_multistart_reports_are_byte_identical_across_worker_counts() {
    let input = fixture("measured_loop.csv");
    let input = input.to_str().unwrap();
    let run = |workers: &str| {
        ja_ok(&[
            "fit",
            "--input",
            input,
            "--starts",
            "4",
            "--seed",
            "42",
            "--passes",
            "3",
            "--workers",
            workers,
        ])
    };
    let one = run("1");
    let eight = run("8");
    assert_eq!(one, eight, "fit report must not depend on --workers");

    let doc = parse_report(&one, "fit");
    assert_eq!(doc.get("starts").and_then(JsonValue::as_i64), Some(4));
    assert_eq!(doc.get("seed").and_then(JsonValue::as_i64), Some(42));
    assert!(doc.get("timing").is_none(), "timing is opt-in");
    let entries = doc.get("entries").unwrap().as_array().unwrap();
    assert_eq!(entries.len(), 4);
    let cost = |v: &JsonValue| v.get("cost").and_then(JsonValue::as_f64).unwrap();
    let best = doc.get("best_start").and_then(JsonValue::as_i64).unwrap() as usize;
    // Start 0 is the plain initial guess (the single-start fit), so the
    // best-of selection can only match or improve on it.
    assert!(cost(&entries[best]) <= cost(&entries[0]));
    assert_eq!(
        doc.get("cost").and_then(JsonValue::as_f64),
        Some(cost(&entries[best]))
    );
}

#[test]
fn fit_config_fits_a_library_in_one_batch() {
    let config = fixture("fit_library.conf");
    let out = ja_ok(&[
        "fit",
        "--config",
        config.to_str().unwrap(),
        "--starts",
        "2",
        "--passes",
        "2",
        "--sweep-step",
        "10",
    ]);
    let doc = parse_report(&out, "fit");
    let loops = doc.get("loops").unwrap().as_array().unwrap();
    assert_eq!(loops.len(), 2);
    assert_eq!(
        loops[0].get("loop").and_then(JsonValue::as_str),
        Some("measured_loop")
    );
    assert_eq!(
        loops[1].get("loop").and_then(JsonValue::as_str),
        Some("soft-ferrite")
    );
    for loop_fit in loops {
        assert!(loop_fit
            .get("best_start")
            .and_then(JsonValue::as_i64)
            .is_some());
        assert_eq!(
            loop_fit.get("entries").unwrap().as_array().unwrap().len(),
            2
        );
        let params = loop_fit.get("params").unwrap().as_object().unwrap();
        assert_eq!(params.len(), 6);
    }
}

#[test]
fn inverse_follows_the_fixture_flux_targets() {
    let input = fixture("flux_targets.csv");
    let input = input.to_str().unwrap();
    let csv = ja_ok(&["inverse", "--input", input]);
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("h,b,m"));
    assert_eq!(lines.count(), 97, "one output row per target");

    let json = ja_ok(&["inverse", "--input", input, "--format", "json"]);
    let doc = parse_report(&json, "inverse");
    assert_eq!(doc.get("samples").and_then(JsonValue::as_i64), Some(97));
    let b_peak = doc.get("b_peak_t").and_then(JsonValue::as_f64).unwrap();
    assert!((b_peak - 1.2).abs() < 1e-3, "b_peak = {b_peak}");
    assert!(
        doc.get("h_peak_a_per_m")
            .and_then(JsonValue::as_f64)
            .unwrap()
            > 0.0
    );
}

#[test]
fn compare_reports_timeless_agreement() {
    let out = ja_ok(&[
        "compare",
        "--backends",
        "timeless",
        "--step",
        "250",
        "--format",
        "json",
    ]);
    let doc = parse_report(&out, "compare");
    let outcomes = doc.get("outcomes").unwrap().as_array().unwrap();
    assert_eq!(outcomes.len(), 3);
    let relative = doc
        .get("relative_diff")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        relative < 0.05,
        "timeless backends agree to 1% of peak B on fine steps; got {relative}"
    );
    let table = ja_ok(&["compare", "--backends", "timeless", "--step", "250"]);
    assert!(table.contains("direct-timeless"));
    assert!(table.contains("worst pairwise"));
}

#[test]
fn bench_gate_passes_within_tolerance_and_fails_on_regression() {
    let baseline = scratch("baseline.json");
    std::fs::write(
        &baseline,
        "{\"schema_version\": 1, \"kind\": \"bench\", \
         \"benches\": {\"a\": 100.0, \"b\": 200.0}}",
    )
    .unwrap();
    let ok_current = scratch("current_ok.json");
    std::fs::write(
        &ok_current,
        "{\"schema_version\": 1, \"kind\": \"bench\", \
         \"benches\": {\"a\": 180.0, \"b\": 150.0, \"c\": 5.0}}",
    )
    .unwrap();
    let summary = scratch("summary.md");
    let _ = std::fs::remove_file(&summary);
    let table = ja_ok(&[
        "bench-gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        ok_current.to_str().unwrap(),
        "--summary",
        summary.to_str().unwrap(),
    ]);
    assert!(
        table.contains("| a | 100.0 | 180.0 | 1.80 | ok |"),
        "{table}"
    );
    assert!(table.contains("| c | - | 5.0 | - | new |"), "{table}");
    assert!(table.contains("0 gate failures"), "{table}");
    let written = std::fs::read_to_string(&summary).unwrap();
    assert_eq!(written, table, "summary file gets the same markdown");

    let bad_current = scratch("current_bad.json");
    std::fs::write(
        &bad_current,
        "{\"schema_version\": 1, \"kind\": \"bench\", \"benches\": {\"a\": 300.0}}",
    )
    .unwrap();
    let output = ja(&[
        "bench-gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        bad_current.to_str().unwrap(),
    ]);
    assert_eq!(
        output.status.code(),
        Some(1),
        "regression + missing => exit 1"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("a (REGRESSION)"), "{stderr}");
    assert!(stderr.contains("b (missing)"), "{stderr}");
}

#[test]
fn bench_gate_rejects_schema_drift() {
    let future = scratch("future.json");
    std::fs::write(
        &future,
        "{\"schema_version\": 99, \"kind\": \"bench\", \"benches\": {}}",
    )
    .unwrap();
    let output = ja(&[
        "bench-gate",
        "--baseline",
        future.to_str().unwrap(),
        "--current",
        future.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("schema_version"),
        "schema mismatch must be reported"
    );
}

#[test]
fn usage_errors_exit_with_code_2() {
    for args in [
        &["transmogrify"] as &[&str],
        &["batch"],
        &["sweep", "--nope"],
        &["sweep", "--format", "xml"],
        &["sweep", "--fig1", "--peak", "5000"],
        &["compare", "--fig1", "--peak", "5000"],
        &["fit"],
        &["bench-gate", "--max-ratio", "2.5"],
        &[],
    ] {
        let output = ja(args);
        assert_eq!(output.status.code(), Some(2), "ja {args:?}");
        assert!(!output.stderr.is_empty(), "ja {args:?} explains itself");
    }
    // Invalid fit *options* are a bad invocation too, even with valid input.
    let input = fixture("measured_loop.csv");
    let input = input.to_str().unwrap();
    for args in [
        &["fit", "--input", input, "--passes", "0"] as &[&str],
        &["fit", "--input", input, "--starts", "0"],
        &["fit", "--input", input, "--config", "x.conf"],
    ] {
        let output = ja(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "ja {args:?} is a usage error, not a runtime failure"
        );
    }
}

#[test]
fn help_prints_the_schema_and_exits_zero() {
    let help = ja_ok(&["--help"]);
    assert!(help.contains("REPORT SCHEMA"));
    assert!(help.contains("schema_version"));
    assert!(help.contains("bench-gate"));
    for sub in [
        "sweep",
        "transient",
        "batch",
        "fit",
        "inverse",
        "compare",
        "bench-gate",
    ] {
        let text = ja_ok(&["help", sub]);
        assert!(text.contains(sub), "help for {sub}");
    }
    let version = ja_ok(&["--version"]);
    assert!(version.starts_with("ja "));
}

#[test]
fn batch_failures_are_reported_and_exit_nonzero() {
    // A grid whose SystemC scenarios run fine but whose config the AMS/
    // direct backends reject is hard to build; instead use fail-fast on a
    // config file whose grid is valid but empty of excitations.
    let empty = scratch("empty_grid.conf");
    std::fs::write(&empty, "material = date2006\n").unwrap();
    let output = ja(&["batch", "--config", empty.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(2), "empty grid is a usage error");
    assert!(String::from_utf8_lossy(&output.stderr).contains("excitations"));
}
