//! Loss map: core loss of the paper's material over frequency and
//! temperature.
//!
//! Expands the same operating-point grid as `ja lossmap`: the date2006
//! material is resolved through its thermal coefficients at each
//! temperature, swept through a +/-10 kA/m major loop, and the traced
//! loop is integrated over a demo core (1 cm^2, 10 cm path) at each
//! excitation frequency.  The loss surface is printed as an aligned
//! frequency x temperature table, followed by the two-exponent
//! Steinmetz fit `P = k * f^alpha * B_pk^beta` recovered from the
//! surface's own points.
//!
//! Run with: `cargo run --example loss_map`

use std::error::Error;

use ja_repro::hdl_models::scenario::{
    run_batch, BackendKind, Excitation, OperatingPoint, ScenarioGrid,
};
use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::magnetics::geometry::CoreGeometry;
use ja_repro::magnetics::losses::fit_steinmetz_full;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::magnetics::thermal::ThermalCoefficients;

const TEMPERATURES: [f64; 4] = [-40.0, 25.0, 85.0, 125.0];
const FREQUENCIES: [f64; 3] = [50.0, 100.0, 200.0];

fn main() -> Result<(), Box<dyn Error>> {
    let thermal = ThermalCoefficients::date2006();
    println!("== thermal coefficients (date2006) ==");
    println!("  Curie temperature = {} degC", thermal.curie_temperature_c);
    println!("  Ms exponent beta  = {}", thermal.ms_exponent);

    let mut grid = ScenarioGrid::new()
        .material_with_thermal("date2006", JaParameters::date2006(), thermal)
        .backend(BackendKind::DirectTimeless)
        .config("dh10", JaConfig::default())
        .excitation("major", Excitation::major_loop(10_000.0, 50.0, 1)?);
    for &t_c in &TEMPERATURES {
        for &frequency in &FREQUENCIES {
            grid = grid.operating_point(
                format!("f{frequency}_t{t_c}"),
                OperatingPoint::at_temperature(t_c)
                    .with_frequency(frequency)
                    .with_geometry(CoreGeometry::demo()),
            );
        }
    }
    let report = run_batch(grid.scenarios()?);
    if report.failures().count() > 0 {
        return Err("loss-map grid did not fully succeed".into());
    }

    // The grid expands operating points in insertion order, so the
    // entries walk the (temperature, frequency) lattice row by row.
    println!("\n== total core loss [W]: demo core, +/-10 kA/m major loop ==");
    print!("{:>10}", "T[degC]");
    for &frequency in &FREQUENCIES {
        print!(" {:>11}", format!("{frequency} Hz"));
    }
    println!(" {:>10}", "B_pk[T]");
    let mut points = Vec::new();
    for (row, &t_c) in TEMPERATURES.iter().enumerate() {
        print!("{t_c:>10}");
        let mut b_pk = 0.0;
        for (col, &frequency) in FREQUENCIES.iter().enumerate() {
            let entry = &report.entries[row * FREQUENCIES.len() + col];
            let outcome = entry.outcome.as_ref().expect("scenario succeeded");
            let loss = outcome.loss.expect("operating point carries geometry");
            b_pk = outcome.metrics.expect("closed loop").b_max.as_tesla();
            points.push((frequency, b_pk, loss.total_w));
            print!(" {:>11.3}", loss.total_w);
        }
        println!(" {b_pk:>10.3}");
    }

    let (k, alpha, beta) = fit_steinmetz_full(&points)?;
    println!(
        "\n== Steinmetz surface fit over the {} points ==",
        points.len()
    );
    println!("  P = k * f^alpha * B_pk^beta");
    println!("  k = {k:.4}, alpha = {alpha:.3}, beta = {beta:.3}");
    println!(
        "  (alpha ~ 1: the timeless loop area is rate-independent, so\n   \
         hysteresis loss scales linearly with frequency; beta tracks the\n   \
         Curie-law shrinkage of the loop with temperature)"
    );
    Ok(())
}
