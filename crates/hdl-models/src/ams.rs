//! Equation-style (VHDL-AMS-like) implementations.
//!
//! Two models live here:
//!
//! * [`AmsTimelessModel`] — the paper's technique expressed as an AMS-style
//!   architecture: a transient loop samples the excitation waveform at a
//!   fixed rate and feeds the field into the timeless JA model, which does
//!   its own slope integration (the analogue solver never sees `dM/dH`).
//! * [`SolverIntegratedBaseline`] — the conventional approach of the prior
//!   work the paper criticises ([4, 5] in its references): `dM/dH` is
//!   converted to `dM/dt` and handed to the analogue solver's integrator
//!   (forward Euler, backward Euler, trapezoidal or adaptive RKF45).  Its
//!   failure modes — Newton non-convergence and step-size collapse around
//!   the turning points — are exactly what experiments E4/E5 measure.

use analog_solver::ode::adaptive::{AdaptiveOptions, Rkf45};
use analog_solver::ode::explicit::ForwardEuler;
use analog_solver::ode::implicit::{BackwardEuler, Trapezoidal};
use analog_solver::ode::{FixedStepIntegrator, OdeSystem};
use analog_solver::SolverError;
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::error::JaError;
use ja_hysteresis::model::JilesAtherton;
use ja_hysteresis::time_domain::MagnetisationOde;
use magnetics::bh::BhCurve;
use magnetics::material::JaParameters;
use waveform::Waveform;

/// The timeless model embedded in an AMS-style fixed-step transient loop.
#[derive(Debug, Clone)]
pub struct AmsTimelessModel {
    model: JilesAtherton,
}

impl AmsTimelessModel {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`JaError`] for invalid parameters or configuration.
    pub fn new(params: JaParameters, config: JaConfig) -> Result<Self, JaError> {
        Ok(Self {
            model: JilesAtherton::with_config(params, config)?,
        })
    }

    /// Read access to the wrapped model (state and statistics).
    pub fn model(&self) -> &JilesAtherton {
        &self.model
    }

    /// Runs a transient simulation: the waveform is sampled every `dt`
    /// seconds from `t = 0` to `t_end` and each sample is applied to the
    /// timeless model.  The sampling grid is
    /// [`crate::scenario::Excitation::sampled`], so a transient run here and
    /// a scenario run over the same waveform see the identical stimulus.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] for non-positive `dt`/`t_end` and
    /// propagates model errors.
    pub fn run_transient<W: Waveform>(
        &mut self,
        waveform: &W,
        t_end: f64,
        dt: f64,
    ) -> Result<BhCurve, JaError> {
        let excitation = crate::scenario::Excitation::sampled(waveform, t_end, dt)?;
        self.run_samples(excitation.to_samples())
    }

    /// Runs a timeless DC sweep over explicit field samples (the AMS model
    /// used "quiescently", for direct comparison with the SystemC port).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn run_samples<I: IntoIterator<Item = f64>>(
        &mut self,
        samples: I,
    ) -> Result<BhCurve, JaError> {
        let result = ja_hysteresis::sweep::sweep_samples(&mut self.model, samples)?;
        Ok(result.into_curve())
    }
}

impl ja_hysteresis::backend::HysteresisBackend for AmsTimelessModel {
    fn label(&self) -> &'static str {
        "ams-timeless"
    }

    fn apply_field(&mut self, h: f64) -> Result<ja_hysteresis::model::JaSample, JaError> {
        self.model.apply_field(h)
    }

    fn statistics(&self) -> ja_hysteresis::model::JaStatistics {
        self.model.statistics()
    }

    fn reset(&mut self) -> Result<(), JaError> {
        self.model.reset();
        Ok(())
    }
}

/// Integration method used by the solver-integrated baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverMethod {
    /// Explicit forward Euler over time.
    ForwardEuler,
    /// Implicit backward Euler (Newton per step).
    BackwardEuler,
    /// Trapezoidal rule (Newton per step) — the SPICE default.
    Trapezoidal,
    /// Adaptive RKF45 with the given relative tolerance.
    AdaptiveRkf45 {
        /// Relative error tolerance per step.
        rel_tol: f64,
    },
}

/// Outcome of a baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// The BH trace.
    pub curve: BhCurve,
    /// Number of slope (right-hand-side) evaluations the solver used.
    pub rhs_evaluations: usize,
    /// Newton iterations (implicit methods only).
    pub newton_iterations: usize,
    /// Steps whose Newton solve failed to converge (implicit methods only).
    pub non_converged_steps: usize,
    /// Accepted + rejected step counts (adaptive method only).
    pub adaptive_steps: Option<(usize, usize)>,
}

/// The conventional solver-integrated JA model.
pub struct SolverIntegratedBaseline {
    params: JaParameters,
    config: JaConfig,
}

struct BaselineOde<'a, W> {
    ode: MagnetisationOde<'a, W>,
}

impl<W: Waveform> OdeSystem for BaselineOde<'_, W> {
    fn dim(&self) -> usize {
        1
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        dydt[0] = self.ode.dm_dt(t, y[0]);
    }
}

impl SolverIntegratedBaseline {
    /// Creates the baseline with the given material parameters and the
    /// slope-guard configuration (the guards apply to the slope evaluation
    /// only; the integration itself is the solver's).
    ///
    /// # Errors
    ///
    /// Returns [`JaError`] for invalid parameters or configuration.
    pub fn new(params: JaParameters, config: JaConfig) -> Result<Self, JaError> {
        params.validate()?;
        config.validate()?;
        Ok(Self { params, config })
    }

    /// Runs the baseline over `[0, t_end]` with step `dt` (ignored by the
    /// adaptive method, which controls its own step).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError`] for solver failures (step-size underflow,
    /// singular iteration matrix) — the very failures the experiment counts —
    /// and [`SolverError::InvalidStep`] for invalid time parameters.
    /// Configuration errors surface as [`SolverError::InvalidCircuit`].
    pub fn run<W: Waveform>(
        &self,
        waveform: &W,
        t_end: f64,
        dt: f64,
        method: SolverMethod,
    ) -> Result<BaselineResult, SolverError> {
        let ode_inner =
            MagnetisationOde::new(self.params, &self.config, waveform).map_err(|err| {
                SolverError::InvalidCircuit {
                    reason: err.to_string(),
                }
            })?;
        let system = BaselineOde { ode: ode_inner };
        let m_sat = self.params.m_sat.value();

        let build_curve = |times: &[f64], magnetisations: Vec<f64>| {
            let mut curve = BhCurve::with_capacity(times.len());
            for (&t, m) in times.iter().zip(magnetisations) {
                let h = waveform.value(t);
                curve.push_raw(h, magnetics::constants::MU0 * (h + m * m_sat), m * m_sat);
            }
            curve
        };

        match method {
            SolverMethod::ForwardEuler => {
                let trajectory = ForwardEuler.integrate(&system, &[0.0], 0.0, t_end, dt)?;
                Ok(BaselineResult {
                    curve: build_curve(trajectory.times(), trajectory.component(0)),
                    rhs_evaluations: trajectory.rhs_evaluations(),
                    newton_iterations: 0,
                    non_converged_steps: 0,
                    adaptive_steps: None,
                })
            }
            SolverMethod::BackwardEuler => {
                let (trajectory, stats) = BackwardEuler::default().integrate_with_stats(
                    &system,
                    &[0.0],
                    0.0,
                    t_end,
                    dt,
                )?;
                Ok(BaselineResult {
                    curve: build_curve(trajectory.times(), trajectory.component(0)),
                    rhs_evaluations: trajectory.rhs_evaluations(),
                    newton_iterations: stats.newton_iterations,
                    non_converged_steps: stats.non_converged_steps,
                    adaptive_steps: None,
                })
            }
            SolverMethod::Trapezoidal => {
                let (trajectory, stats) =
                    Trapezoidal::default().integrate_with_stats(&system, &[0.0], 0.0, t_end, dt)?;
                Ok(BaselineResult {
                    curve: build_curve(trajectory.times(), trajectory.component(0)),
                    rhs_evaluations: trajectory.rhs_evaluations(),
                    newton_iterations: stats.newton_iterations,
                    non_converged_steps: stats.non_converged_steps,
                    adaptive_steps: None,
                })
            }
            SolverMethod::AdaptiveRkf45 { rel_tol } => {
                let integrator = Rkf45::new(AdaptiveOptions {
                    rel_tol,
                    abs_tol: rel_tol * 1e-3,
                    initial_step: dt,
                    min_step: 1e-15,
                    max_step: dt * 100.0,
                });
                let result = integrator.integrate(&system, &[0.0], 0.0, t_end)?;
                Ok(BaselineResult {
                    curve: build_curve(result.trajectory.times(), result.trajectory.component(0)),
                    rhs_evaluations: result.trajectory.rhs_evaluations(),
                    newton_iterations: 0,
                    non_converged_steps: 0,
                    adaptive_steps: Some((result.accepted_steps, result.rejected_steps)),
                })
            }
        }
    }
}

impl std::fmt::Debug for SolverIntegratedBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverIntegratedBaseline")
            .field("params", &self.params)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::loop_analysis;
    use waveform::triangular::Triangular;

    fn paper_waveform() -> Triangular {
        Triangular::new(10_000.0, 1.0).expect("valid waveform")
    }

    #[test]
    fn ams_timeless_transient_produces_loop() {
        let mut model =
            AmsTimelessModel::new(JaParameters::date2006(), JaConfig::default()).unwrap();
        let waveform = paper_waveform();
        let curve = model.run_transient(&waveform, 2.0, 2.0 / 8000.0).unwrap();
        let metrics = loop_analysis::loop_metrics(&curve).unwrap();
        assert!(metrics.b_max.as_tesla() > 1.5);
        assert!(metrics.coercivity.value() > 1000.0);
        assert_eq!(metrics.negative_slope_samples, 0);
        assert!(model.model().statistics().updates > 1000);
    }

    #[test]
    fn ams_timeless_rejects_bad_time_parameters() {
        let mut model =
            AmsTimelessModel::new(JaParameters::date2006(), JaConfig::default()).unwrap();
        let waveform = paper_waveform();
        assert!(model.run_transient(&waveform, 1.0, 0.0).is_err());
        assert!(model.run_transient(&waveform, -1.0, 1e-3).is_err());
    }

    #[test]
    fn ams_run_samples_matches_direct_sweep() {
        let mut model =
            AmsTimelessModel::new(JaParameters::date2006(), JaConfig::default()).unwrap();
        let samples: Vec<f64> = (0..=1000).map(|i| i as f64 * 10.0).collect();
        let curve = model.run_samples(samples).unwrap();
        assert_eq!(curve.len(), 1001);
        assert!(curve.last().unwrap().b.as_tesla() > 1.2);
    }

    #[test]
    fn baseline_rk_solvers_reproduce_loop_shape() {
        let baseline =
            SolverIntegratedBaseline::new(JaParameters::date2006(), JaConfig::default()).unwrap();
        let waveform = paper_waveform();
        let result = baseline
            .run(&waveform, 2.0, 2.0 / 4000.0, SolverMethod::BackwardEuler)
            .unwrap();
        let metrics = loop_analysis::loop_metrics(&result.curve).unwrap();
        assert!(metrics.b_max.as_tesla() > 1.2);
        assert!(result.newton_iterations > 0);
        assert!(result.rhs_evaluations > 4000);
    }

    #[test]
    fn baseline_forward_euler_and_trapezoidal_run() {
        let baseline =
            SolverIntegratedBaseline::new(JaParameters::date2006(), JaConfig::default()).unwrap();
        let waveform = paper_waveform();
        let fe = baseline
            .run(&waveform, 1.0, 1.0 / 4000.0, SolverMethod::ForwardEuler)
            .unwrap();
        assert_eq!(fe.newton_iterations, 0);
        assert!(fe.curve.peak_flux_density().unwrap().as_tesla() > 1.0);
        let trap = baseline
            .run(&waveform, 1.0, 1.0 / 2000.0, SolverMethod::Trapezoidal)
            .unwrap();
        assert!(trap.newton_iterations > 0);
    }

    #[test]
    fn baseline_adaptive_reports_step_statistics() {
        let baseline =
            SolverIntegratedBaseline::new(JaParameters::date2006(), JaConfig::default()).unwrap();
        let waveform = paper_waveform();
        let result = baseline
            .run(
                &waveform,
                1.0,
                1e-4,
                SolverMethod::AdaptiveRkf45 { rel_tol: 1e-5 },
            )
            .unwrap();
        let (accepted, _rejected) = result.adaptive_steps.unwrap();
        assert!(accepted > 100);
    }

    #[test]
    fn baseline_propagates_invalid_time_step() {
        let baseline =
            SolverIntegratedBaseline::new(JaParameters::date2006(), JaConfig::default()).unwrap();
        let waveform = paper_waveform();
        assert!(baseline
            .run(&waveform, 1.0, 0.0, SolverMethod::ForwardEuler)
            .is_err());
    }
}
