//! Inverse (flux-driven) operation of the timeless model.
//!
//! Transformer-style simulations impose the flux density `B(t)` (it follows
//! from the applied voltage) and need the field `H` — the inverse of the
//! usual field-driven model.  Because the timeless model is cheap to clone
//! and advance, the inverse is solved directly: for each target `B` the
//! required `H` is bracketed and refined by bisection on a trial copy of the
//! model, and only the accepted field is committed to the real history.

use magnetics::bh::BhCurve;
use magnetics::constants::MU0;

use crate::error::JaError;
use crate::model::JilesAtherton;

/// Options of the inverse solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverseOptions {
    /// Absolute tolerance on the achieved flux density (T).
    pub b_tolerance: f64,
    /// Maximum bisection iterations per sample.
    pub max_iterations: usize,
    /// Largest |H| the solver may apply (A/m); protects against targets
    /// beyond saturation, which would otherwise need unbounded fields.
    pub h_limit: f64,
}

impl Default for InverseOptions {
    fn default() -> Self {
        Self {
            b_tolerance: 1e-6,
            max_iterations: 80,
            h_limit: 1.0e6,
        }
    }
}

impl InverseOptions {
    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] when `b_tolerance` or `h_limit`
    /// is not finite and strictly positive, or `max_iterations` is zero
    /// (bisection would never refine the bracket).
    pub fn validate(&self) -> Result<(), JaError> {
        if !self.b_tolerance.is_finite() || self.b_tolerance <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "b_tolerance",
                value: self.b_tolerance,
                requirement: "finite and > 0",
            });
        }
        if self.max_iterations == 0 {
            return Err(JaError::InvalidConfig {
                name: "max_iterations",
                value: 0.0,
                requirement: ">= 1 bisection iteration",
            });
        }
        if !self.h_limit.is_finite() || self.h_limit <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "h_limit",
                value: self.h_limit,
                requirement: "finite and > 0",
            });
        }
        Ok(())
    }
}

/// A flux-driven wrapper around [`JilesAtherton`].
#[derive(Debug, Clone)]
pub struct FluxDrivenJa {
    model: JilesAtherton,
    options: InverseOptions,
}

impl FluxDrivenJa {
    /// Wraps a model with default inverse options.
    ///
    /// The wrapped model is switched to sub-divided increment integration:
    /// the inverse solver probes trial fields far from the current state,
    /// and a single forward-Euler step across such a jump would overshoot
    /// badly, so every increment is integrated in `ΔH_max`-sized sub-steps
    /// instead.
    pub fn new(model: JilesAtherton) -> Self {
        let config = model.config().with_subdivision();
        let mut inner = JilesAtherton::with_config(*model.params(), config)
            .expect("parameters and configuration were already validated");
        inner.set_state(*model.state());
        Self {
            model: inner,
            options: InverseOptions::default(),
        }
    }

    /// Overrides the inverse-solve options.
    pub fn with_options(mut self, options: InverseOptions) -> Self {
        self.options = options;
        self
    }

    /// Read access to the wrapped (field-driven) model.
    pub fn model(&self) -> &JilesAtherton {
        &self.model
    }

    /// Finds and applies the field that brings the flux density to
    /// `b_target` (T), returning that field in A/m.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::NonFiniteField`] for a non-finite target and
    /// [`JaError::InvalidConfig`] for invalid [`InverseOptions`] or when
    /// the target cannot be reached within the configured field limit
    /// (beyond saturation).
    pub fn apply_flux_density(&mut self, b_target: f64) -> Result<f64, JaError> {
        self.options.validate()?;
        if !b_target.is_finite() {
            return Err(JaError::NonFiniteField { value: b_target });
        }
        let b_now = self.model.flux_density().as_tesla();
        if (b_now - b_target).abs() <= self.options.b_tolerance {
            // Keep the history in sync even for a no-op target.
            let h_now = self.model.state().h;
            self.model.apply_field(h_now)?;
            return Ok(h_now);
        }

        // Bracket the target: B(H) is non-decreasing in H for the guarded
        // model, so march outward from the current field until the target is
        // enclosed.
        let h_now = self.model.state().h;
        let direction = if b_target > b_now { 1.0 } else { -1.0 };
        let mut step = (b_target - b_now).abs() / MU0 * 0.001 + self.model.config().dh_max;
        let mut h_far = h_now;
        let mut b_far = b_now;
        while (b_target - b_far) * direction > 0.0 {
            h_far += direction * step;
            step *= 2.0;
            if h_far.abs() > self.options.h_limit {
                return Err(JaError::InvalidConfig {
                    name: "b_target",
                    value: b_target,
                    requirement: "reachable within the configured field limit",
                });
            }
            b_far = self.trial_b(h_far)?;
        }

        // Bisection between h_now and h_far.
        let (mut lo, mut hi) = if direction > 0.0 {
            (h_now, h_far)
        } else {
            (h_far, h_now)
        };
        let mut h_best = h_far;
        for _ in 0..self.options.max_iterations {
            let mid = 0.5 * (lo + hi);
            let b_mid = self.trial_b(mid)?;
            h_best = mid;
            if (b_mid - b_target).abs() <= self.options.b_tolerance {
                break;
            }
            if b_mid < b_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }

        self.model.apply_field(h_best)?;
        Ok(h_best)
    }

    /// Follows a whole flux-density waveform sample by sample, returning the
    /// resulting BH trajectory.
    ///
    /// # Errors
    ///
    /// Propagates [`FluxDrivenJa::apply_flux_density`] errors.
    pub fn follow_flux_density<I>(&mut self, targets: I) -> Result<BhCurve, JaError>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut curve = BhCurve::new();
        for b_target in targets {
            let h = self.apply_flux_density(b_target)?;
            let sample = self.model.sample();
            curve.push_raw(h, sample.b.as_tesla(), sample.m.value());
        }
        Ok(curve)
    }

    fn trial_b(&self, h: f64) -> Result<f64, JaError> {
        let mut trial = self.model.clone();
        Ok(trial.apply_field(h)?.b.as_tesla())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::material::JaParameters;

    fn flux_driven() -> FluxDrivenJa {
        FluxDrivenJa::new(JilesAtherton::new(JaParameters::date2006()).expect("valid"))
    }

    #[test]
    fn reaches_a_moderate_flux_density_target() {
        let mut inv = flux_driven();
        let h = inv.apply_flux_density(1.0).unwrap();
        assert!(h > 0.0);
        let achieved = inv.model().flux_density().as_tesla();
        assert!((achieved - 1.0).abs() < 1e-3, "achieved {achieved} T");
    }

    #[test]
    fn negative_targets_need_negative_fields() {
        let mut inv = flux_driven();
        let h = inv.apply_flux_density(-1.2).unwrap();
        assert!(h < 0.0);
        assert!((inv.model().flux_density().as_tesla() + 1.2).abs() < 1e-3);
    }

    #[test]
    fn unreachable_target_is_rejected() {
        let mut inv = flux_driven().with_options(InverseOptions {
            h_limit: 20_000.0,
            ..InverseOptions::default()
        });
        // 3 T exceeds what ±20 kA/m can produce with Msat = 1.6 MA/m.
        assert!(matches!(
            inv.apply_flux_density(3.0),
            Err(JaError::InvalidConfig { .. })
        ));
        assert!(inv.apply_flux_density(f64::NAN).is_err());
    }

    #[test]
    fn flux_driven_cycle_shows_hysteresis_in_h() {
        // Drive B sinusoidally between ±1.2 T; the required H on the way up
        // must exceed the H on the way down at the same B (coercive offset).
        let mut inv = flux_driven();
        let n = 120;
        let targets: Vec<f64> = (0..=2 * n)
            .map(|i| 1.2 * (std::f64::consts::PI * i as f64 / n as f64).sin())
            .collect();
        let curve = inv.follow_flux_density(targets).unwrap();
        assert_eq!(curve.len(), 2 * n + 1);
        // Compare H at B ~ +0.6 T on the rising and falling branches.
        let rising = curve
            .points()
            .iter()
            .take(n / 2)
            .min_by(|a, b| {
                (a.b.as_tesla() - 0.6)
                    .abs()
                    .total_cmp(&(b.b.as_tesla() - 0.6).abs())
            })
            .unwrap();
        let falling = curve
            .points()
            .iter()
            .skip(n / 2)
            .take(n)
            .min_by(|a, b| {
                (a.b.as_tesla() - 0.6)
                    .abs()
                    .total_cmp(&(b.b.as_tesla() - 0.6).abs())
            })
            .unwrap();
        assert!(
            rising.h.value() > falling.h.value() + 100.0,
            "rising H {} vs falling H {}",
            rising.h.value(),
            falling.h.value()
        );
    }

    #[test]
    fn unreachable_target_reports_the_target_value() {
        let mut inv = flux_driven().with_options(InverseOptions {
            h_limit: 20_000.0,
            ..InverseOptions::default()
        });
        // Beyond-saturation target: B_sat for the paper's material is ~2 T,
        // so 3 T cannot be reached no matter the field budget — the solver
        // must stop at the field limit and name the offending target.
        match inv.apply_flux_density(3.0).unwrap_err() {
            JaError::InvalidConfig { name, value, .. } => {
                assert_eq!(name, "b_target");
                assert_eq!(value, 3.0);
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
        // The failed solve committed nothing: the model is still usable and
        // a reachable target still converges.
        assert!(inv.apply_flux_density(1.0).is_ok());
    }

    #[test]
    fn invalid_options_are_rejected_before_solving() {
        for (options, name) in [
            (
                InverseOptions {
                    b_tolerance: 0.0,
                    ..InverseOptions::default()
                },
                "b_tolerance",
            ),
            (
                InverseOptions {
                    b_tolerance: f64::NAN,
                    ..InverseOptions::default()
                },
                "b_tolerance",
            ),
            (
                InverseOptions {
                    max_iterations: 0,
                    ..InverseOptions::default()
                },
                "max_iterations",
            ),
            (
                InverseOptions {
                    h_limit: -1.0,
                    ..InverseOptions::default()
                },
                "h_limit",
            ),
        ] {
            let mut inv = flux_driven().with_options(options);
            match inv.apply_flux_density(0.5).unwrap_err() {
                JaError::InvalidConfig { name: got, .. } => assert_eq!(got, name),
                other => panic!("expected InvalidConfig for {name}, got {other}"),
            }
        }
    }

    #[test]
    fn empty_target_sequence_yields_an_empty_trace() {
        let mut inv = flux_driven();
        let curve = inv.follow_flux_density(std::iter::empty()).unwrap();
        assert!(curve.is_empty());
    }

    #[test]
    fn follow_flux_density_propagates_solver_errors() {
        let mut inv = flux_driven().with_options(InverseOptions {
            h_limit: 20_000.0,
            ..InverseOptions::default()
        });
        // Second target is unreachable -> the whole follow fails.
        assert!(inv.follow_flux_density([0.5, 3.0]).is_err());
    }

    #[test]
    fn no_op_target_keeps_state() {
        let mut inv = flux_driven();
        inv.apply_flux_density(0.8).unwrap();
        let h_before = inv.model().state().h;
        let b_before = inv.model().flux_density().as_tesla();
        let h = inv.apply_flux_density(b_before).unwrap();
        assert!((h - h_before).abs() < 1e-9);
    }
}
