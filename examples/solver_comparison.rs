//! Timeless discretisation versus solver-integrated baseline (experiments
//! E4/E5): stability at the turning points and work spent, as a function of
//! the time step handed to the analogue solver.
//!
//! The timeless side runs as scenarios through the scenario engine (the
//! waveform is pre-sampled into field samples); the baseline genuinely
//! integrates `dM/dt` with the analogue solver.
//!
//! Run with: `cargo run --example solver_comparison`

use std::error::Error;

use ja_repro::hdl_models::ams::{SolverIntegratedBaseline, SolverMethod};
use ja_repro::hdl_models::scenario::{BackendKind, Excitation, Scenario};
use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::waveform::triangular::Triangular;

fn timeless_scenario(
    waveform: &Triangular,
    t_end: f64,
    dt: f64,
) -> Result<Scenario, Box<dyn Error>> {
    Ok(Scenario::new(
        format!("solver-comparison/timeless/dt{dt}"),
        JaParameters::date2006(),
        JaConfig::default(),
        BackendKind::AmsTimeless,
        Excitation::sampled(waveform, t_end, dt)?,
    ))
}

fn main() -> Result<(), Box<dyn Error>> {
    let waveform = Triangular::new(10_000.0, 1.0)?;
    let t_end = 2.0;
    let params = JaParameters::date2006();

    println!("== turning-point stability (E4): timeless vs backward-Euler baseline ==");
    println!("dt [s]      timeless Bmax  baseline Bmax  shape err  newton its  non-conv  neg.slope (baseline)");
    let baseline = SolverIntegratedBaseline::new(params, JaConfig::default())?;
    for &dt in &[
        2.0 / 16_000.0,
        2.0 / 8_000.0,
        2.0 / 4_000.0,
        2.0 / 2_000.0,
        2.0 / 1_000.0,
    ] {
        let timeless = timeless_scenario(&waveform, t_end, dt)?.run()?;
        let timeless_b_max = timeless.full_metrics()?.b_max.as_tesla();
        let result = baseline.run(&waveform, t_end, dt, SolverMethod::BackwardEuler)?;
        let baseline_b_max = result.curve.peak_flux_density()?.as_tesla();
        println!(
            "{:<10.2e}  {:>12.3}  {:>12.3}  {:>8.3}  {:>10}  {:>8}  {:>10}",
            dt,
            timeless_b_max,
            baseline_b_max,
            (baseline_b_max - timeless_b_max).abs() / timeless_b_max,
            result.newton_iterations,
            result.non_converged_steps,
            result.curve.negative_slope_samples(),
        );
    }

    println!("\n== runtime comparison (E5): one full cycle of the paper's sweep ==");
    let dt = 2.0 / 8_000.0;

    let outcome = timeless_scenario(&waveform, t_end, dt)?.run()?;
    println!(
        "  timeless model      : {:>9.3} ms, {} slope evaluations, {} samples",
        outcome.runtime.as_secs_f64() * 1e3,
        outcome.stats.slope_evaluations,
        outcome.curve.len()
    );

    for (name, method) in [
        ("forward Euler (time)", SolverMethod::ForwardEuler),
        ("backward Euler      ", SolverMethod::BackwardEuler),
        ("trapezoidal         ", SolverMethod::Trapezoidal),
        (
            "adaptive RKF45      ",
            SolverMethod::AdaptiveRkf45 { rel_tol: 1e-6 },
        ),
    ] {
        let start = std::time::Instant::now();
        let result = baseline.run(&waveform, t_end, dt, method)?;
        let elapsed = start.elapsed();
        println!(
            "  baseline {name}: {:>9.3} ms, {} rhs evaluations, {} newton iterations",
            elapsed.as_secs_f64() * 1e3,
            result.rhs_evaluations,
            result.newton_iterations
        );
    }
    Ok(())
}
