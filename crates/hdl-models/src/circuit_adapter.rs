//! Adapter that lets the timeless JA model act as the core of a wound
//! inductor inside the MNA circuit simulator — the "JA model in SPICE"
//! setting the paper's introduction refers to.

use analog_solver::circuit::MagneticCoreModel;
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::error::JaError;
use ja_hysteresis::model::JilesAtherton;
use magnetics::material::JaParameters;

/// Wraps a [`JilesAtherton`] model behind the
/// [`MagneticCoreModel`] interface of the circuit simulator.
///
/// The circuit's Newton iteration needs *trial* evaluations that do not
/// disturb the hysteresis history; the adapter provides them by cloning the
/// lightweight model state, applying the trial field to the clone and
/// reading back `B` and a finite-difference `dB/dH`.  Only
/// [`commit`](MagneticCoreModel::commit) advances the real history.
#[derive(Debug, Clone)]
pub struct JaCoreAdapter {
    model: JilesAtherton,
    derivative_step: f64,
}

impl JaCoreAdapter {
    /// Creates an adapter around a freshly demagnetised model.
    ///
    /// # Errors
    ///
    /// Returns [`JaError`] for invalid parameters or configuration.
    pub fn new(params: JaParameters, config: JaConfig) -> Result<Self, JaError> {
        Ok(Self {
            model: JilesAtherton::with_config(params, config)?,
            derivative_step: 1.0,
        })
    }

    /// Creates an adapter with the paper's parameters and configuration.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the paper's parameters are valid); the
    /// `Result` mirrors [`JaCoreAdapter::new`].
    pub fn date2006() -> Result<Self, JaError> {
        Self::new(JaParameters::date2006(), JaConfig::default())
    }

    /// Access to the wrapped model (e.g. for statistics).
    pub fn model(&self) -> &JilesAtherton {
        &self.model
    }
}

impl MagneticCoreModel for JaCoreAdapter {
    fn evaluate(&self, h_new: f64) -> (f64, f64) {
        let mut trial = self.model.clone();
        let b = trial
            .apply_field(h_new)
            .map(|s| s.b.as_tesla())
            .unwrap_or(self.model.flux_density().as_tesla());
        let mut trial_up = self.model.clone();
        let b_up = trial_up
            .apply_field(h_new + self.derivative_step)
            .map(|s| s.b.as_tesla())
            .unwrap_or(b);
        let db_dh = ((b_up - b) / self.derivative_step).max(magnetics::constants::MU0);
        (b, db_dh)
    }

    fn commit(&mut self, h_new: f64) {
        // The field handed over by the circuit is always finite (it came out
        // of a successful linear solve); if it were not, keeping the previous
        // state is the safest fallback.
        let _ = self.model.apply_field(h_new);
    }

    fn flux_density(&self) -> f64 {
        self.model.flux_density().as_tesla()
    }

    fn field(&self) -> f64 {
        self.model.state().h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_solver::circuit::elements::{NonlinearInductor, Resistor, VoltageSource};
    use analog_solver::circuit::{Circuit, Node, TransientAnalysis};
    use waveform::sine::Sine;

    #[test]
    fn evaluate_is_side_effect_free() {
        let adapter = JaCoreAdapter::date2006().unwrap();
        let (b1, db1) = adapter.evaluate(5_000.0);
        let (b2, db2) = adapter.evaluate(5_000.0);
        assert_eq!(b1, b2);
        assert_eq!(db1, db2);
        assert!(b1 > 0.0);
        assert!(db1 > 0.0);
        assert_eq!(adapter.field(), 0.0);
    }

    #[test]
    fn commit_advances_history() {
        let mut adapter = JaCoreAdapter::date2006().unwrap();
        adapter.commit(5_000.0);
        assert_eq!(adapter.field(), 5_000.0);
        assert!(adapter.flux_density() > 0.0);
        assert!(adapter.model().statistics().samples > 0);
    }

    #[test]
    fn hysteretic_inductor_in_a_driven_circuit() {
        // A 50 Hz sine source driving a wound hysteretic core through a
        // series resistor: the magnetising current must saturate (grow
        // faster than linearly once the core saturates).
        let mut circuit = Circuit::new();
        let vin = circuit.node();
        let vl = circuit.node();
        circuit
            .add(
                "V1",
                VoltageSource::new(vin, Node::GROUND, Sine::new(30.0, 50.0).unwrap()),
            )
            .unwrap();
        circuit
            .add("R1", Resistor::new(vin, vl, 1.0).unwrap())
            .unwrap();
        let core_idx = circuit
            .add(
                "CORE",
                NonlinearInductor::new(
                    vl,
                    Node::GROUND,
                    200.0,
                    1.0e-4,
                    0.1,
                    JaCoreAdapter::date2006().unwrap(),
                )
                .unwrap(),
            )
            .unwrap();

        let analysis = TransientAnalysis::new(5e-5, 0.04).unwrap();
        let result = analysis.run(&mut circuit).unwrap();
        let current = result.branch_current(core_idx, 0).unwrap();
        let peak_current = current.iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
        assert!(
            peak_current > 1.0,
            "peak magnetising current {peak_current} A"
        );
        assert!(result.stats().newton_iterations > 0);
        // The node voltage across the core must stay bounded by the source.
        let v = result.voltage(vl).unwrap();
        assert!(v.iter().all(|x| x.abs() <= 31.0));
    }
}
