//! The `ja` subcommands.

pub mod batch;
pub mod bench_gate;
pub mod bench_serve;
pub mod compare;
pub mod fit;
pub mod inverse;
pub mod lossmap;
pub mod serve;
pub mod sweep;
pub mod transient;
