//! Temperature dependence of Jiles–Atherton parameters.
//!
//! The parameter presets in [`crate::material`] are quoted at the
//! reference temperature ([`REFERENCE_TEMPERATURE_C`], 20 °C).  Real
//! cores drift: the saturation magnetisation collapses towards the Curie
//! point following the mean-field critical law `Ms(T) ∝ (1 − T/Tc)^β`,
//! and the pinning (`k`) and anhysteretic shape (`a`, `a2`) parameters
//! drift roughly linearly over the operating range of a power magnetic.
//!
//! [`ThermalCoefficients`] carries the material-specific constants of
//! both effects; [`JaParameters::at_temperature`] applies them, returning
//! a fresh **validated** parameter set.  The mapping is pure and
//! deterministic — the same `(params, coefficients, temperature)` triple
//! always produces the bit-identical derived set — so thermally derived
//! parameters can feed the scalar and SoA lockstep execution paths
//! interchangeably without disturbing their bit-equality contract.

use crate::error::MagneticsError;
use crate::material::JaParameters;
use crate::units::Magnetisation;

/// The temperature (°C) at which the material presets are quoted.
pub const REFERENCE_TEMPERATURE_C: f64 = 20.0;

/// Absolute zero in °C; no physical operating point sits below it.
pub const ABSOLUTE_ZERO_C: f64 = -273.15;

/// Material-specific constants of the thermal model.
///
/// Saturation scaling is the Curie-law `Ms(T) = Ms·(1 − T/Tc)^β`
/// normalised to the reference temperature, i.e. the applied factor is
/// `((Tc − T)/(Tc − T_ref))^β` (Celsius differences equal Kelvin
/// differences, so the quotient form is exact).  `k`, `a` and `a2` drift
/// linearly: `k(T) = k·(1 + k_drift·(T − T_ref))` and likewise for the
/// shape parameters with `a_drift`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalCoefficients {
    /// Curie temperature `Tc` (°C); saturation vanishes there.
    pub curie_temperature_c: f64,
    /// Critical exponent `β` of the saturation law (mean-field ≈ 0.36
    /// for iron-like materials, ≈ 0.5 for soft ferrites).
    pub ms_exponent: f64,
    /// Relative drift of the pinning parameter `k` per °C (usually
    /// negative: coercivity shrinks as thermal agitation helps walls
    /// depin).
    pub k_drift_per_c: f64,
    /// Relative drift of the anhysteretic shape parameters `a`/`a2`
    /// per °C (usually positive: the anhysteretic flattens with
    /// temperature).
    pub a_drift_per_c: f64,
}

impl ThermalCoefficients {
    /// Validates and constructs a coefficient set.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidParameter`] when the Curie
    /// temperature does not sit above the reference temperature, the
    /// exponent is outside `(0, 1]`, or a drift coefficient is not
    /// finite.
    pub fn new(
        curie_temperature_c: f64,
        ms_exponent: f64,
        k_drift_per_c: f64,
        a_drift_per_c: f64,
    ) -> Result<Self, MagneticsError> {
        let candidate = Self {
            curie_temperature_c,
            ms_exponent,
            k_drift_per_c,
            a_drift_per_c,
        };
        candidate.validate()?;
        Ok(candidate)
    }

    /// Iron-like coefficients for the paper's material: silicon-steel
    /// Curie point, mean-field exponent, mild pinning softening.
    pub fn date2006() -> Self {
        Self {
            curie_temperature_c: 745.0,
            ms_exponent: 0.36,
            k_drift_per_c: -8.0e-4,
            a_drift_per_c: 5.0e-4,
        }
    }

    /// Annealed iron (the Jiles–Atherton 1984 parameter set).
    pub fn jiles_atherton_1984() -> Self {
        Self {
            curie_temperature_c: 770.0,
            ms_exponent: 0.36,
            k_drift_per_c: -6.0e-4,
            a_drift_per_c: 4.0e-4,
        }
    }

    /// MnZn-ferrite-like coefficients: low Curie point, near-mean-field
    /// exponent, strong drift — ferrite losses move fast with
    /// temperature.
    pub fn soft_ferrite() -> Self {
        Self {
            curie_temperature_c: 220.0,
            ms_exponent: 0.5,
            k_drift_per_c: -2.0e-3,
            a_drift_per_c: 1.0e-3,
        }
    }

    /// Hard-steel-like coefficients: high Curie point and a loop shape
    /// that barely moves over the industrial temperature range.
    pub fn hard_steel() -> Self {
        Self {
            curie_temperature_c: 750.0,
            ms_exponent: 0.36,
            k_drift_per_c: -4.0e-4,
            a_drift_per_c: 3.0e-4,
        }
    }

    /// A generic iron-like fallback (the paper material's coefficients)
    /// for parameter sets without a dedicated preset.
    pub fn generic() -> Self {
        Self::date2006()
    }

    /// Re-validates the coefficient set (useful after manual edits).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThermalCoefficients::new`].
    pub fn validate(&self) -> Result<(), MagneticsError> {
        if !self.curie_temperature_c.is_finite()
            || self.curie_temperature_c <= REFERENCE_TEMPERATURE_C
        {
            return Err(MagneticsError::InvalidParameter {
                name: "curie_temperature_c",
                value: self.curie_temperature_c,
                requirement: "finite and > the 20 C reference temperature",
            });
        }
        if !self.ms_exponent.is_finite() || self.ms_exponent <= 0.0 || self.ms_exponent > 1.0 {
            return Err(MagneticsError::InvalidParameter {
                name: "ms_exponent",
                value: self.ms_exponent,
                requirement: "in (0, 1]",
            });
        }
        if !self.k_drift_per_c.is_finite() {
            return Err(MagneticsError::InvalidParameter {
                name: "k_drift_per_c",
                value: self.k_drift_per_c,
                requirement: "finite",
            });
        }
        if !self.a_drift_per_c.is_finite() {
            return Err(MagneticsError::InvalidParameter {
                name: "a_drift_per_c",
                value: self.a_drift_per_c,
                requirement: "finite",
            });
        }
        Ok(())
    }
}

impl Default for ThermalCoefficients {
    fn default() -> Self {
        Self::generic()
    }
}

impl JaParameters {
    /// Derives the parameter set at operating temperature `t_c` (°C).
    ///
    /// Applies the Curie-law saturation scaling and the linear `k`/`a`
    /// drifts of `thermal` relative to the 20 °C reference, then
    /// re-validates — a temperature that drives any parameter out of its
    /// physical range is rejected rather than silently clamped.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidParameter`] when `t_c` is not a
    /// finite temperature in `(−273.15 °C, Tc)`, when `thermal` is
    /// invalid, or when the derived parameter set fails validation.
    pub fn at_temperature(
        &self,
        t_c: f64,
        thermal: &ThermalCoefficients,
    ) -> Result<JaParameters, MagneticsError> {
        thermal.validate()?;
        if !t_c.is_finite() || t_c <= ABSOLUTE_ZERO_C || t_c >= thermal.curie_temperature_c {
            return Err(MagneticsError::InvalidParameter {
                name: "t_c",
                value: t_c,
                requirement: "finite, above absolute zero and below the Curie temperature",
            });
        }
        let dt = t_c - REFERENCE_TEMPERATURE_C;
        let reduced = (thermal.curie_temperature_c - t_c)
            / (thermal.curie_temperature_c - REFERENCE_TEMPERATURE_C);
        let ms_scale = reduced.powf(thermal.ms_exponent);
        let k_scale = 1.0 + thermal.k_drift_per_c * dt;
        let a_scale = 1.0 + thermal.a_drift_per_c * dt;
        let derived = JaParameters {
            m_sat: Magnetisation::new(self.m_sat.value() * ms_scale),
            a: self.a * a_scale,
            a2: self.a2 * a_scale,
            k: self.k * k_scale,
            alpha: self.alpha,
            c: self.c,
        };
        derived.validate()?;
        Ok(derived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_all_validate() {
        for coeffs in [
            ThermalCoefficients::date2006(),
            ThermalCoefficients::jiles_atherton_1984(),
            ThermalCoefficients::soft_ferrite(),
            ThermalCoefficients::hard_steel(),
            ThermalCoefficients::generic(),
        ] {
            assert!(coeffs.validate().is_ok(), "{coeffs:?}");
        }
        assert_eq!(
            ThermalCoefficients::default(),
            ThermalCoefficients::generic()
        );
    }

    #[test]
    fn reference_temperature_is_the_identity() {
        let base = JaParameters::date2006();
        let derived = base
            .at_temperature(REFERENCE_TEMPERATURE_C, &ThermalCoefficients::date2006())
            .unwrap();
        assert_eq!(derived, base, "20 C must reproduce the preset exactly");
    }

    #[test]
    fn saturation_collapses_towards_the_curie_point() {
        let base = JaParameters::date2006();
        let coeffs = ThermalCoefficients::date2006();
        let cold = base.at_temperature(-40.0, &coeffs).unwrap();
        let warm = base.at_temperature(125.0, &coeffs).unwrap();
        let hot = base.at_temperature(500.0, &coeffs).unwrap();
        assert!(cold.m_sat.value() > base.m_sat.value());
        assert!(warm.m_sat.value() < base.m_sat.value());
        assert!(hot.m_sat.value() < warm.m_sat.value());
        // Monotone drift of the loop-shape parameters too.
        assert!(warm.k < base.k, "pinning softens with temperature");
        assert!(warm.a > base.a, "anhysteretic flattens with temperature");
        // Untouched parameters pass through bit-exactly.
        assert_eq!(warm.alpha, base.alpha);
        assert_eq!(warm.c, base.c);
    }

    #[test]
    fn derivation_is_deterministic() {
        let base = JaParameters::hard_steel();
        let coeffs = ThermalCoefficients::hard_steel();
        let first = base.at_temperature(85.0, &coeffs).unwrap();
        let second = base.at_temperature(85.0, &coeffs).unwrap();
        assert_eq!(
            first.m_sat.value().to_bits(),
            second.m_sat.value().to_bits()
        );
        assert_eq!(first.k.to_bits(), second.k.to_bits());
        assert_eq!(first.a.to_bits(), second.a.to_bits());
        assert_eq!(first.a2.to_bits(), second.a2.to_bits());
    }

    #[test]
    fn rejects_unphysical_temperatures() {
        let base = JaParameters::date2006();
        let coeffs = ThermalCoefficients::date2006();
        for t in [f64::NAN, f64::INFINITY, -300.0, 745.0, 1000.0] {
            let err = base.at_temperature(t, &coeffs).unwrap_err();
            assert!(
                matches!(err, MagneticsError::InvalidParameter { name: "t_c", .. }),
                "{t}: {err}"
            );
        }
    }

    #[test]
    fn rejects_invalid_coefficients() {
        assert!(ThermalCoefficients::new(10.0, 0.36, 0.0, 0.0).is_err());
        assert!(ThermalCoefficients::new(745.0, 0.0, 0.0, 0.0).is_err());
        assert!(ThermalCoefficients::new(745.0, 1.5, 0.0, 0.0).is_err());
        assert!(ThermalCoefficients::new(745.0, 0.36, f64::NAN, 0.0).is_err());
        assert!(ThermalCoefficients::new(745.0, 0.36, 0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn drift_that_kills_a_parameter_is_rejected() {
        // A drift large enough to drive k negative at 125 C must fail
        // derived-set validation, not return an unphysical material.
        let coeffs = ThermalCoefficients::new(745.0, 0.36, -0.02, 0.0).unwrap();
        let err = JaParameters::date2006()
            .at_temperature(125.0, &coeffs)
            .unwrap_err();
        assert!(matches!(
            err,
            MagneticsError::InvalidParameter { name: "k", .. }
        ));
    }
}
