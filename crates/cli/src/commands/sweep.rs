//! `ja sweep` — run one scenario and export the BH trace.

use hdl_models::scenario::Scenario;
use ja_hysteresis::config::JaConfig;
use waveform::export::ascii_plot;

use crate::common::{
    backend_by_name, config_name, enveloped_outcome, material_by_name, write_curve_csv,
    write_output, NamedExcitation,
};
use crate::{opts, CliError};

/// Per-subcommand help (see `ja help sweep`).
pub const HELP: &str = "\
ja sweep — run one scenario and export the BH trace

USAGE:
    ja sweep [OPTIONS]

OPTIONS:
    --backend NAME     direct | systemc | ams | time-domain   [default: direct]
    --material NAME    date2006 | ja1984 | soft-ferrite | hard-steel
                       [default: date2006]
    --dh-max A_PER_M   timeless discretisation threshold      [default: 10]
    --peak A_PER_M     triangular major-loop peak             [default: 10000]
    --step A_PER_M     field step of the stimulus             [default: 10]
    --cycles N         full triangular cycles                 [default: 1]
    --fig1             use the paper's Fig. 1 stimulus (major sweep + nested
                       minor loops) instead of --peak/--cycles
    --format FORMAT    ascii | csv | json                     [default: ascii]
    --width N          ascii plot width                       [default: 72]
    --height N         ascii plot height                      [default: 24]
    --timings          include runtime_ns in the JSON report
    --out PATH         write to PATH instead of stdout

The JSON report is `kind: \"sweep\"` — the envelope plus one scenario entry
(see `ja --help` for the schema).  CSV columns are h, b, m.";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failures for scenario or output errors.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &["fig1", "timings"],
        &[
            "backend", "material", "dh-max", "peak", "step", "cycles", "format", "width", "height",
            "out",
        ],
    )?;
    parsed.no_positionals()?;

    let backend = backend_by_name(parsed.value("backend").unwrap_or("direct"))?;
    let material_name = parsed.value("material").unwrap_or("date2006");
    let params = material_by_name(material_name)?;
    let dh_max = parsed.f64_or("dh-max", 10.0)?;
    let config = JaConfig::default().with_dh_max(dh_max);
    config
        .validate()
        .map_err(|err| CliError::usage(err.to_string()))?;

    let step = parsed.f64_or("step", 10.0)?;
    let named = if parsed.flag("fig1") {
        if parsed.value("peak").is_some() || parsed.value("cycles").is_some() {
            return Err(CliError::usage(
                "--fig1 replaces the triangular stimulus; it excludes --peak and --cycles"
                    .to_owned(),
            ));
        }
        NamedExcitation::fig1(step)?
    } else {
        NamedExcitation::major(
            parsed.f64_or("peak", 10_000.0)?,
            step,
            parsed.usize_or("cycles", 1)?,
        )?
    };

    let scenario = Scenario::new(
        format!(
            "{}/{}/{}/{material_name}",
            named.name,
            backend.label(),
            config_name(dh_max)
        ),
        params,
        config,
        backend,
        named.excitation,
    );
    let outcome = scenario
        .run()
        .map_err(|err| CliError::failure(err.to_string()))?;

    let out = parsed.value("out");
    match parsed.value("format").unwrap_or("ascii") {
        "json" => write_output(
            out,
            &enveloped_outcome("sweep", &outcome, parsed.flag("timings")).to_pretty_string(),
        ),
        "csv" => write_curve_csv(out, &outcome.curve),
        "ascii" => {
            let h: Vec<f64> = outcome.curve.points().iter().map(|p| p.h.value()).collect();
            let b: Vec<f64> = outcome
                .curve
                .points()
                .iter()
                .map(|p| p.b.as_tesla())
                .collect();
            let plot = ascii_plot(
                &h,
                &b,
                parsed.usize_or("width", 72)?,
                parsed.usize_or("height", 24)?,
            )
            .map_err(|err| CliError::failure(err.to_string()))?;
            let mut text = format!(
                "{}  [{} samples]\n{plot}",
                outcome.name,
                outcome.curve.len()
            );
            match &outcome.metrics {
                Some(m) => {
                    for (key, value) in m.named_values() {
                        text.push_str(&format!("{key} = {value}\n"));
                    }
                }
                None => text.push_str("(trace does not form a closable loop; no metrics)\n"),
            }
            write_output(out, &text)
        }
        other => Err(CliError::usage(format!(
            "unknown format `{other}` (expected ascii | csv | json)"
        ))),
    }
}
