//! HDL-style implementations of the timeless Jiles–Atherton core model.
//!
//! The paper presents the same technique twice — once as a SystemC module
//! built from three method processes, once as a VHDL-AMS architecture — and
//! shows that both "produce virtually identical results".  This crate
//! rebuilds that layer on top of the Rust substrates:
//!
//! * [`systemc`] — a faithful port of the paper's SystemC listing
//!   (`core`, `monitorH`, `Integral` processes, `hchanged`/`trig` handshake
//!   signals) running on the [`hdl_kernel`] discrete-event kernel;
//! * [`ams`] — the equation-style (VHDL-AMS-like) implementations: the
//!   timeless model embedded in a fixed-step transient loop, and the
//!   conventional solver-integrated baseline whose `dM/dt` is advanced by
//!   the [`analog_solver`] ODE engines (the "previous work" the paper
//!   criticises);
//! * [`circuit_adapter`] — glue that lets the timeless JA model act as the
//!   [`analog_solver::circuit::MagneticCoreModel`] of a wound-core circuit
//!   element, i.e. the model sitting inside a SPICE-style netlist;
//! * [`scenario`] — the scenario engine: a [`scenario::Scenario`] is one
//!   (material × excitation × backend × config) experiment, run uniformly
//!   through the [`ja_hysteresis::backend::HysteresisBackend`] trait, with
//!   [`scenario::ScenarioGrid`] and [`scenario::run_batch`] for whole
//!   experiment grids.  Excitations may be field-driven (schedules, raw
//!   samples) or circuit-driven ([`scenario::CircuitExcitation`]): a
//!   declarative source→R→wound-core netlist whose transient solution —
//!   fixed-step or adaptive — supplies the applied-field trajectory;
//! * [`exec`] — the parallel batch executor behind `run_batch`:
//!   [`exec::BatchRunner`] distributes a scenario grid over scoped worker
//!   threads with deterministic, input-ordered reports, and exposes the
//!   generic [`exec::parallel_map`] pool underneath;
//! * [`fit`] — multi-start parallel parameter extraction:
//!   [`fit::fit_batch`] fans seeded starting points (and whole libraries
//!   of measured loops) across the same worker pool and keeps the best
//!   fit per loop;
//! * [`report`] — versioned JSON serialization of batch/outcome/agreement
//!   results (the machine-readable interface the `ja` CLI and CI consume);
//! * [`serve`] — the dependency-free serving layer behind `ja serve`:
//!   a strict hand-rolled HTTP/1.1 parser/writer over [`std::net`], a
//!   bounded-queue accept loop with worker threads, 503 admission
//!   control, graceful drain, and the content-addressed
//!   [`serve::ResultCache`] that turns repeated requests into O(1)
//!   byte-identical responses;
//! * [`comparison`] — the experiment drivers used by the benches and
//!   integration tests (Fig. 1 reproduction, implementation equivalence,
//!   turning-point stability, runtime comparisons), now thin wrappers over
//!   the scenario engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ams;
pub mod circuit_adapter;
pub mod comparison;
pub mod exec;
pub mod fit;
pub mod report;
pub mod scenario;
pub mod serve;
pub mod systemc;

pub use ams::{AmsTimelessModel, SolverIntegratedBaseline, SolverMethod};
pub use circuit_adapter::JaCoreAdapter;
pub use exec::{BatchRunner, ErrorPolicy, RunScratch};
pub use fit::{fit_batch, FitJob, FitReport, LoopFit, MultiStartOptions, StartFit};
pub use scenario::{
    BackendKind, CircuitExcitation, CircuitRun, Excitation, Scenario, ScenarioGrid,
    ScenarioOutcome, SourceWaveform,
};
pub use systemc::SystemCJaCore;
