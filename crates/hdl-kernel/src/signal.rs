//! Signals with evaluate/update (delta-cycle) semantics.

use crate::error::KernelError;
use crate::value::Value;

/// Identifier of a signal within a [`SignalStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// The raw index of the signal.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct SignalSlot {
    name: String,
    current: Value,
    pending: Option<Value>,
}

/// Storage for all signals of a kernel.
///
/// Writes performed during process evaluation are *pending* until
/// [`SignalStore::update`] commits them — the core of the delta-cycle
/// semantics the SystemC model relies on: `JA::core()` can read `H` and
/// write `hchanged` without the write being observed in the same
/// evaluation.
#[derive(Debug, Default, Clone)]
pub struct SignalStore {
    slots: Vec<SignalSlot>,
}

impl SignalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a signal with a display name and an initial value.
    pub fn add(&mut self, name: impl Into<String>, initial: Value) -> SignalId {
        let id = SignalId(self.slots.len());
        self.slots.push(SignalSlot {
            name: name.into(),
            current: initial,
            pending: None,
        });
        id
    }

    /// Number of signals.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the store holds no signals.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Display name of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn name(&self, id: SignalId) -> Result<&str, KernelError> {
        self.slot(id).map(|s| s.name.as_str())
    }

    /// Current (committed) value of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn read(&self, id: SignalId) -> Result<Value, KernelError> {
        self.slot(id).map(|s| s.current)
    }

    /// Schedules a new value for the next update phase.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn write(&mut self, id: SignalId, value: Value) -> Result<(), KernelError> {
        self.slot_mut(id)?.pending = Some(value);
        Ok(())
    }

    /// Overwrites the committed value immediately, bypassing the delta
    /// cycle.  Intended for initialisation before the simulation starts.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn force(&mut self, id: SignalId, value: Value) -> Result<(), KernelError> {
        let slot = self.slot_mut(id)?;
        slot.current = value;
        slot.pending = None;
        Ok(())
    }

    /// Commits every pending write and returns the ids of the signals whose
    /// committed value actually changed (writes of an identical value do not
    /// generate events).
    pub fn update(&mut self) -> Vec<SignalId> {
        let mut changed = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(next) = slot.pending.take() {
                if next.differs_from(&slot.current) {
                    slot.current = next;
                    changed.push(SignalId(i));
                }
            }
        }
        changed
    }

    /// `true` when at least one write is waiting to be committed.
    pub fn has_pending(&self) -> bool {
        self.slots.iter().any(|s| s.pending.is_some())
    }

    fn slot(&self, id: SignalId) -> Result<&SignalSlot, KernelError> {
        self.slots
            .get(id.0)
            .ok_or(KernelError::UnknownSignal { id })
    }

    fn slot_mut(&mut self, id: SignalId) -> Result<&mut SignalSlot, KernelError> {
        self.slots
            .get_mut(id.0)
            .ok_or(KernelError::UnknownSignal { id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_read_write_update_cycle() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Real(0.0));
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.name(a).unwrap(), "a");

        store.write(a, Value::Real(5.0)).unwrap();
        // Not yet visible.
        assert_eq!(store.read(a).unwrap(), Value::Real(0.0));
        assert!(store.has_pending());

        let changed = store.update();
        assert_eq!(changed, vec![a]);
        assert_eq!(store.read(a).unwrap(), Value::Real(5.0));
        assert!(!store.has_pending());
    }

    #[test]
    fn identical_write_is_not_an_event() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Bit(false));
        store.write(a, Value::Bit(false)).unwrap();
        assert!(store.update().is_empty());
    }

    #[test]
    fn last_write_wins_within_a_delta() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Int(0));
        store.write(a, Value::Int(1)).unwrap();
        store.write(a, Value::Int(2)).unwrap();
        let changed = store.update();
        assert_eq!(changed.len(), 1);
        assert_eq!(store.read(a).unwrap(), Value::Int(2));
    }

    #[test]
    fn force_bypasses_delta() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Real(0.0));
        store.write(a, Value::Real(9.0)).unwrap();
        store.force(a, Value::Real(1.0)).unwrap();
        assert_eq!(store.read(a).unwrap(), Value::Real(1.0));
        // The pending write was discarded by force().
        assert!(store.update().is_empty());
    }

    #[test]
    fn unknown_signal_rejected() {
        let mut store = SignalStore::new();
        let foreign = SignalId(17);
        assert!(store.read(foreign).is_err());
        assert!(store.write(foreign, Value::Bit(true)).is_err());
        assert!(store.name(foreign).is_err());
        assert!(store.force(foreign, Value::Bit(true)).is_err());
    }

    #[test]
    fn signal_id_index() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Real(0.0));
        let b = store.add("b", Value::Real(0.0));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }
}
