//! Faithful port of the paper's SystemC model onto the discrete-event
//! kernel.
//!
//! The original module has three method processes communicating through
//! signals:
//!
//! * `JA::core()` — triggered by changes of the external field `H` (and here
//!   also by the completion of an integration step): computes the effective
//!   field, the anhysteretic (`Lang_mod`), the reversible and total
//!   magnetisation and the flux density, and raises `hchanged` when the
//!   field has moved by more than `dhmax`;
//! * `JA::monitorH()` — triggered by `hchanged`: latches `deltah`, updates
//!   `lasth` and raises `trig`;
//! * `JA::Integral()` — triggered by `trig`: performs the timeless forward
//!   Euler step of the irreversible magnetisation, with the negative-slope
//!   clamp and the opposing-update rejection.
//!
//! Module-internal variables (`mirr`, `mtotal`, `man`, `lasth`, `deltah`)
//! are shared between the processes through an `Rc` of `Cell` fields,
//! mirroring SystemC member variables.  `Cell` rather than `RefCell`
//! because the accesses are plain loads and stores: the process bodies run
//! on the order of ten times per field sample (the magnetisation feedback
//! fixpoint), so a per-activation borrow-flag check is measurable.

use std::cell::Cell;
use std::rc::Rc;

use hdl_kernel::kernel::Kernel;
use hdl_kernel::recorder::Recorder;
use hdl_kernel::signal::SignalId;
use hdl_kernel::value::Value;
use hdl_kernel::KernelError;
use ja_hysteresis::error::JaError;
use magnetics::bh::BhCurve;
use magnetics::constants::MU0;
use magnetics::material::JaParameters;
use magnetics::units::{FieldStrength, FluxDensity, Magnetisation};
use waveform::schedule::FieldSchedule;

/// Internal module variables shared by the three processes — the SystemC
/// member variables of the paper's `JA` module.  `params` and `dhmax` are
/// construction-time constants; everything else is mutable simulation
/// state behind `Cell`s.
#[derive(Debug, Clone)]
struct CoreVars {
    params: JaParameters,
    dhmax: f64,
    man: Cell<f64>,
    mirr: Cell<f64>,
    mtotal: Cell<f64>,
    lasth: Cell<f64>,
    deltah: Cell<f64>,
    // Cost counters of the Integral process, mirroring the library model's
    // `JaStatistics` so the module can stand behind `HysteresisBackend`.
    integral_steps: Cell<u64>,
    negative_slope_events: Cell<u64>,
    rejected_updates: Cell<u64>,
}

impl CoreVars {
    fn new(params: JaParameters, dhmax: f64) -> Self {
        Self {
            params,
            dhmax,
            man: Cell::new(0.0),
            mirr: Cell::new(0.0),
            mtotal: Cell::new(0.0),
            lasth: Cell::new(0.0),
            deltah: Cell::new(0.0),
            integral_steps: Cell::new(0),
            negative_slope_events: Cell::new(0),
            rejected_updates: Cell::new(0),
        }
    }

    /// Rewinds the mutable state to its construction-time values, keeping
    /// the material parameters.
    fn clear(&self) {
        self.man.set(0.0);
        self.mirr.set(0.0);
        self.mtotal.set(0.0);
        self.lasth.set(0.0);
        self.deltah.set(0.0);
        self.integral_steps.set(0);
        self.negative_slope_events.set(0);
        self.rejected_updates.set(0);
    }

    /// The paper's `Lang_mod`: the modified Langevin `(2/π)·atan(x)`.
    fn lang_mod(x: f64) -> f64 {
        std::f64::consts::FRAC_2_PI * x.atan()
    }
}

/// The SystemC-style Jiles–Atherton core model.
pub struct SystemCJaCore {
    kernel: Kernel,
    vars: Rc<CoreVars>,
    h: SignalId,
    m_sig: SignalId,
    b_sig: SignalId,
    samples: u64,
}

impl SystemCJaCore {
    /// Builds the module with the given material parameters and `dhmax`
    /// threshold (the paper's update threshold, in A/m).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] if process registration fails (cannot happen
    /// with the signals created here) and panics never.
    pub fn new(params: JaParameters, dhmax: f64) -> Result<Self, KernelError> {
        let mut kernel = Kernel::new();
        let vars = Rc::new(CoreVars::new(params, dhmax));

        // Signals of the original module.
        let h = kernel.add_signal("H", Value::Real(0.0));
        let hchanged = kernel.add_signal("hchanged", Value::Bit(false));
        let trig = kernel.add_signal("trig", Value::Bit(false));
        let idone = kernel.add_signal("integral_done", Value::Bit(false));
        let m_sig = kernel.add_signal("Msig", Value::Real(0.0));
        let b_sig = kernel.add_signal("Bsig", Value::Real(0.0));

        // void JA::core()
        //
        // Sensitive to the external field, to the completion of an
        // integration step and to its own magnetisation output: the latter
        // makes the reversible part settle over delta cycles (the effective
        // field depends on the total magnetisation the process itself
        // computes), exactly as an `sc_signal` feedback loop would in the
        // original SystemC module.
        let core_vars = Rc::clone(&vars);
        kernel.add_process("core", &[h, idone, m_sig], move |ctx| {
            let v = &*core_vars;
            let h_now = ctx.read_real(h)?;
            if (h_now - v.lasth.get()).abs() > v.dhmax {
                ctx.write_bit(hchanged, true)?;
            }
            let ms = v.params.m_sat.value();
            let he = h_now + v.params.alpha * ms * v.mtotal.get(); // effective field
            let man = CoreVars::lang_mod(he / v.params.a); // anhysteretic
            v.man.set(man);
            let mrev = v.params.c * man / (1.0 + v.params.c);
            let mtotal = mrev + v.mirr.get(); // total magnetisation
            v.mtotal.set(mtotal);
            let b = MU0 * (ms * mtotal + h_now); // flux density
            ctx.write_real(m_sig, mtotal)?;
            ctx.write_real(b_sig, b)?;
            Ok(())
        })?;

        // void JA::monitorH()
        let monitor_vars = Rc::clone(&vars);
        kernel.add_process("monitorH", &[hchanged], move |ctx| {
            if !ctx.read_bit(hchanged)? {
                return Ok(());
            }
            let v = &*monitor_vars;
            let h_now = ctx.read_real(h)?;
            let dh = h_now - v.lasth.get();
            if dh.abs() > v.dhmax {
                v.deltah.set(dh);
                v.lasth.set(h_now);
                ctx.write_bit(trig, true)?;
                ctx.write_bit(hchanged, false)?;
            }
            Ok(())
        })?;

        // void JA::Integral()
        let integral_vars = Rc::clone(&vars);
        kernel.add_process("Integral", &[trig], move |ctx| {
            if !ctx.read_bit(trig)? {
                return Ok(());
            }
            let v = &*integral_vars;
            let ms = v.params.m_sat.value();
            // Get the field direction.
            let dk = if v.deltah.get() > 0.0 {
                v.params.k
            } else {
                -v.params.k
            };
            // Forward Euler integration method.
            let dh = v.deltah.get();
            let deltam = v.man.get() - v.mtotal.get();
            let dmdh1 = deltam / ((1.0 + v.params.c) * (dk - v.params.alpha * ms * deltam));
            let dmdh = if dmdh1 > 0.0 { dmdh1 } else { 0.0 }; // positive slopes only
            let mut dm = dh * dmdh;
            if dm * dh < 0.0 {
                dm = 0.0;
                v.rejected_updates.set(v.rejected_updates.get() + 1);
            }
            v.integral_steps.set(v.integral_steps.get() + 1);
            if dmdh1 < 0.0 {
                v.negative_slope_events
                    .set(v.negative_slope_events.get() + 1);
            }
            v.mirr.set(v.mirr.get() + dm);
            ctx.write_bit(trig, false)?;
            // Let core() re-evaluate the magnetisation with the new mirr.
            let done = ctx.read_bit(idone)?;
            ctx.write_bit(idone, !done)?;
            Ok(())
        })?;

        Ok(Self {
            kernel,
            vars,
            h,
            m_sig,
            b_sig,
            samples: 0,
        })
    }

    /// Builds the module with the paper's parameters and a 10 A/m `dhmax`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SystemCJaCore::new`].
    pub fn date2006() -> Result<Self, KernelError> {
        Self::new(JaParameters::date2006(), 10.0)
    }

    /// Applies a new field sample (DC-sweep style: the kernel settles all
    /// delta cycles before returning) and returns `(B, M_normalised)`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (delta-cycle limit, process failure).
    pub fn apply_field(&mut self, h: f64) -> Result<(f64, f64), KernelError> {
        self.kernel.write_initial(self.h, Value::Real(h))?;
        self.kernel.settle()?;
        self.samples += 1;
        Ok((
            self.kernel.read_real(self.b_sig)?,
            self.kernel.read_real(self.m_sig)?,
        ))
    }

    /// Runs a complete timeless DC sweep over a field schedule, returning
    /// the BH curve.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn run_schedule(&mut self, schedule: &FieldSchedule) -> Result<BhCurve, KernelError> {
        let mut curve = BhCurve::with_capacity(schedule.len());
        let m_sat = self.vars.params.m_sat.value();
        for h in schedule.iter() {
            let (b, m_norm) = self.apply_field(h)?;
            curve.push_raw(h, b, m_norm * m_sat);
        }
        Ok(curve)
    }

    /// Runs a timed testbench: the field samples are scheduled as timed
    /// writes `dt` apart and the kernel advances through them, recording `H`
    /// and `B` after every event.  Demonstrates that the same module also
    /// works under a conventional timed simulation.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn run_timed(
        &mut self,
        samples: &[f64],
        dt_seconds: f64,
    ) -> Result<(BhCurve, Recorder), KernelError> {
        let mut recorder =
            Recorder::with_channel_capacity(&[("H", self.h), ("B", self.b_sig)], samples.len());
        let m_sat = self.vars.params.m_sat.value();
        let mut curve = BhCurve::with_capacity(samples.len());
        for (i, &h) in samples.iter().enumerate() {
            let at = hdl_kernel::SimTime::from_seconds((i + 1) as f64 * dt_seconds);
            self.kernel.schedule_write(at, self.h, Value::Real(h));
        }
        for (i, &h) in samples.iter().enumerate() {
            let until = hdl_kernel::SimTime::from_seconds((i + 1) as f64 * dt_seconds);
            self.kernel.run_until(until)?;
            recorder.sample(&self.kernel)?;
            let b = self.kernel.read_real(self.b_sig)?;
            let m = self.kernel.read_real(self.m_sig)?;
            curve.push_raw(h, b, m * m_sat);
        }
        Ok((curve, recorder))
    }

    /// Number of process activations executed so far (event-driven cost
    /// metric).
    pub fn activations(&self) -> u64 {
        self.kernel.activations()
    }

    /// Number of delta cycles executed so far.
    pub fn delta_cycles(&self) -> u64 {
        self.kernel.delta_cycles_run()
    }

    /// Number of timed events scheduled so far (testbench stimulus plus
    /// process wake-ups; zero for pure DC sweeps).
    pub fn events_scheduled(&self) -> u64 {
        self.kernel.events_scheduled()
    }

    /// The material parameters the module was built with.
    pub fn params(&self) -> JaParameters {
        self.vars.params
    }

    /// The update threshold `dhmax` the module was built with (A/m).
    pub fn dhmax(&self) -> f64 {
        self.vars.dhmax
    }

    /// The current normalised anhysteretic magnetisation (the module's
    /// `man` member variable).
    pub fn anhysteretic_magnetisation(&self) -> f64 {
        self.vars.man.get()
    }
}

impl ja_hysteresis::backend::HysteresisBackend for SystemCJaCore {
    fn label(&self) -> &'static str {
        "systemc-event-kernel"
    }

    fn apply_field(&mut self, h: f64) -> Result<ja_hysteresis::model::JaSample, JaError> {
        if !h.is_finite() {
            return Err(JaError::NonFiniteField { value: h });
        }
        let (b, m_norm) = SystemCJaCore::apply_field(self, h).map_err(|err| JaError::Backend {
            backend: "systemc-event-kernel",
            reason: err.to_string(),
        })?;
        let v = &*self.vars;
        let m = m_norm * v.params.m_sat.value();
        if !(b.is_finite() && m.is_finite()) {
            return Err(JaError::StateDiverged { at_field: h });
        }
        Ok(ja_hysteresis::model::JaSample {
            h: FieldStrength::new(h),
            b: FluxDensity::new(b),
            m: Magnetisation::new(m),
            m_an: v.man.get(),
        })
    }

    fn statistics(&self) -> ja_hysteresis::model::JaStatistics {
        let v = &*self.vars;
        ja_hysteresis::model::JaStatistics {
            samples: self.samples,
            updates: v.integral_steps.get(),
            // The paper's Integral process is forward Euler: exactly one
            // slope evaluation per integration step.
            slope_evaluations: v.integral_steps.get(),
            negative_slope_events: v.negative_slope_events.get(),
            // In the paper's listing the slope clamp precedes the sign
            // check, so `dm·dh < 0` is unreachable and this stays 0 — the
            // module genuinely never rejects an update, unlike the library
            // model whose guards are independently switchable.
            rejected_updates: v.rejected_updates.get(),
        }
    }

    fn reset(&mut self) -> Result<(), JaError> {
        // Rewind the kernel in place instead of rebuilding the module:
        // signals return to their initial values, the queue and counters
        // clear, and the next settle re-initialises every process exactly
        // as on a fresh kernel — so the process network (three boxed
        // closures, six signals, the shared `Rc<CoreVars>`) is
        // constructed once and reused across scenarios, the way
        // `RunScratch` already reuses the equation-style backends.
        self.kernel.reset();
        self.vars.clear();
        self.samples = 0;
        Ok(())
    }

    fn kernel_statistics(&self) -> Option<ja_hysteresis::backend::KernelStatistics> {
        Some(ja_hysteresis::backend::KernelStatistics {
            delta_cycles: self.kernel.delta_cycles_run(),
            events_scheduled: self.kernel.events_scheduled(),
            process_activations: self.kernel.activations(),
        })
    }
}

impl std::fmt::Debug for SystemCJaCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemCJaCore")
            .field("kernel", &self.kernel)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::loop_analysis;

    #[test]
    fn initial_state_is_demagnetised() {
        let mut core = SystemCJaCore::date2006().unwrap();
        let (b, m) = core.apply_field(0.0).unwrap();
        assert!(b.abs() < 1e-12);
        assert!(m.abs() < 1e-12);
    }

    #[test]
    fn saturates_under_large_field() {
        let mut core = SystemCJaCore::date2006().unwrap();
        let mut b_last = 0.0;
        let mut h = 0.0;
        while h <= 10_000.0 {
            let (b, _) = core.apply_field(h).unwrap();
            assert!(
                b >= b_last - 1e-12,
                "B must not decrease on the initial curve"
            );
            b_last = b;
            h += 10.0;
        }
        assert!(b_last > 1.2 && b_last < 2.3, "B(10 kA/m) = {b_last}");
        assert!(core.activations() > 1000);
        assert!(core.delta_cycles() > 1000);
    }

    #[test]
    fn major_loop_has_hysteresis() {
        let mut core = SystemCJaCore::date2006().unwrap();
        let schedule = FieldSchedule::major_loop(10_000.0, 10.0, 2).unwrap();
        let curve = core.run_schedule(&schedule).unwrap();
        let metrics = loop_analysis::loop_metrics(&curve).unwrap();
        assert!(metrics.b_max.as_tesla() > 1.5);
        assert!(metrics.coercivity.value() > 1_000.0);
        assert!(metrics.remanence.as_tesla() > 0.3);
        assert_eq!(metrics.negative_slope_samples, 0);
    }

    #[test]
    fn small_changes_below_dhmax_do_not_integrate() {
        let mut core = SystemCJaCore::new(JaParameters::date2006(), 100.0).unwrap();
        core.apply_field(0.0).unwrap();
        let activations_before = core.activations();
        // 50 A/m < dhmax = 100 A/m: core runs but no integration is
        // triggered, so the flux only reflects the reversible response.
        let (b, _) = core.apply_field(50.0).unwrap();
        assert!(b > 0.0);
        assert!(b < 0.01);
        assert!(core.activations() > activations_before);
    }

    #[test]
    fn timed_testbench_matches_dc_sweep() {
        let schedule = FieldSchedule::major_loop(10_000.0, 50.0, 1).unwrap();
        let samples = schedule.to_samples();

        let mut dc = SystemCJaCore::date2006().unwrap();
        let dc_curve = dc.run_schedule(&schedule).unwrap();

        let mut timed = SystemCJaCore::date2006().unwrap();
        let (timed_curve, recorder) = timed.run_timed(&samples, 1e-6).unwrap();

        assert_eq!(dc_curve.len(), timed_curve.len());
        let max_diff = dc_curve
            .points()
            .iter()
            .zip(timed_curve.points())
            .map(|(a, b)| (a.b.as_tesla() - b.b.as_tesla()).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-9, "timed vs DC sweep differ by {max_diff}");
        assert_eq!(recorder.len(), samples.len());
    }

    #[test]
    fn reset_reuses_the_kernel_bit_identically() {
        use ja_hysteresis::backend::HysteresisBackend;
        let schedule =
            FieldSchedule::nested_minor_loops(10_000.0, &[7_500.0, 5_000.0, 2_500.0], 50.0)
                .unwrap();

        let mut fresh = SystemCJaCore::date2006().unwrap();
        let fresh_curve = fresh.run_schedule(&schedule).unwrap();

        // Dirty a second module with an unrelated sweep, then reset: the
        // reused kernel must replay the fig1 stimulus bit-identically to
        // the fresh one, with identical kernel counters.
        let mut reused = SystemCJaCore::date2006().unwrap();
        reused
            .run_schedule(&FieldSchedule::major_loop(8_000.0, 100.0, 1).unwrap())
            .unwrap();
        HysteresisBackend::reset(&mut reused).unwrap();
        assert_eq!(reused.delta_cycles(), 0);
        assert_eq!(reused.activations(), 0);
        assert_eq!(reused.events_scheduled(), 0);

        let reused_curve = reused.run_schedule(&schedule).unwrap();
        assert_eq!(fresh_curve, reused_curve);
        assert_eq!(fresh.delta_cycles(), reused.delta_cycles());
        assert_eq!(fresh.activations(), reused.activations());
        assert_eq!(
            fresh.kernel_statistics(),
            reused.kernel_statistics(),
            "kernel counters must match a fresh module after reset"
        );
    }

    #[test]
    fn debug_output() {
        let core = SystemCJaCore::date2006().unwrap();
        assert!(format!("{core:?}").contains("SystemCJaCore"));
        assert_eq!(core.params().k, 4000.0);
    }
}
