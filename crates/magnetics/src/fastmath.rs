//! Branch-light polynomial elementary functions shared by the scalar and
//! lockstep (structure-of-arrays) execution paths.
//!
//! `std`'s [`f64::atan`] goes through libm: an opaque call the compiler can
//! neither inline nor vectorise, which serialises the hot fixed-point loop
//! of the Jiles–Atherton models (several arctangents per field sample, all
//! on independent lanes).  [`atan`] replaces it with a fixed sequence of
//! plain IEEE arithmetic — an odd degree-39 polynomial plus one reciprocal
//! argument reduction — so the compiler can inline it, pipeline independent
//! evaluations and auto-vectorise lane-parallel loops.  Because the scalar
//! model and the SoA lanes call the *same* inlineable function, the two
//! execution paths stay bit-identical in `f64` mode.
//!
//! The polynomial is the truncation of the closed-form Chebyshev expansion
//! `atan(x) = 2·Σₖ (−1)ᵏ·r^(2k+1)/(2k+1) · T₂ₖ₊₁(x)` with `r = √2 − 1`,
//! converted to the monomial basis at 80-digit precision.  Measured against
//! libm over dense and random sweeps of both reduction branches, the worst
//! absolute error is 1 ulp of `atan`'s range (2.3·10⁻¹⁶); the unit tests
//! assert a 2-ulp bound.

/// Coefficients of `P` in `atan(x) ≈ x·P(x²)` for `|x| ≤ 1` (degree 39 odd
/// polynomial), lowest order first.
const ATAN_POLY: [f64; 20] = [
    0.999_999_999_999_999_6,
    -0.333_333_333_333_193_65,
    0.199_999_999_988_047_85,
    -0.142_857_142_373_270_35,
    0.111_111_099_807_091_07,
    -0.090_908_920_659_459_42,
    0.076_921_303_907_052_54,
    -0.066_653_275_218_770_89,
    0.058_747_627_256_006_7,
    -0.052_300_444_953_379_94,
    0.046_485_202_417_804_35,
    -0.040_382_607_458_505_6,
    0.033_167_221_052_936_575,
    -0.024_675_492_234_660_718,
    0.015_853_424_431_626_063,
    -0.008_361_127_305_899_474,
    0.003_418_743_190_725_262_5,
    -0.001_005_153_860_293_622_3,
    0.000_187_667_259_708_588_57,
    -0.000_016_628_516_116_519_03,
];

/// Polynomial arctangent, bit-reproducible and inlineable.
///
/// Agrees with [`f64::atan`] to within 2 ulp over the full finite range and
/// handles the special values the same way (`±0` and `NaN` propagate,
/// `±∞ → ±π/2`).  Unlike the libm call, the body is a fixed branch-light
/// sequence of IEEE arithmetic, so independent evaluations pipeline and
/// vectorise — the property the lockstep SoA kernel relies on.
#[inline]
#[must_use]
pub fn atan(x: f64) -> f64 {
    let ax = x.abs();
    let big = ax > 1.0;
    // atan(x) = π/2 − atan(1/x) for x > 1 folds the argument into [0, 1].
    let t = if big { 1.0 / ax } else { ax };
    let u = t * t;
    // Estrin evaluation of the degree-19 polynomial in `u`: pairs, then
    // quads, then octs.  Same operation count as Horner but a ~3× shorter
    // dependency chain, which matters because the caller's fixed-point
    // iteration is itself a serial chain of these evaluations.
    let c = &ATAN_POLY;
    let u2 = u * u;
    let u4 = u2 * u2;
    let u8 = u4 * u4;
    let p0 = c[0] + c[1] * u;
    let p1 = c[2] + c[3] * u;
    let p2 = c[4] + c[5] * u;
    let p3 = c[6] + c[7] * u;
    let p4 = c[8] + c[9] * u;
    let p5 = c[10] + c[11] * u;
    let p6 = c[12] + c[13] * u;
    let p7 = c[14] + c[15] * u;
    let p8 = c[16] + c[17] * u;
    let p9 = c[18] + c[19] * u;
    let q0 = p0 + p1 * u2;
    let q1 = p2 + p3 * u2;
    let q2 = p4 + p5 * u2;
    let q3 = p6 + p7 * u2;
    let q4 = p8 + p9 * u2;
    let r0 = q0 + q1 * u4;
    let r1 = q2 + q3 * u4;
    let p = r0 + (r1 + q4 * u8) * u8;
    let y = t * p;
    let y = if big {
        std::f64::consts::FRAC_PI_2 - y
    } else {
        y
    };
    y.copysign(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_ULP: f64 = 2.0 * f64::EPSILON;

    #[test]
    fn matches_libm_within_two_ulp() {
        // Dense sweep of the polynomial branch, geometric sweep of the
        // reduced branch (atan saturates, so absolute error is the right
        // metric on both: the range is bounded by π/2).
        let mut x = -1.0;
        while x <= 1.0 {
            assert!(
                (atan(x) - x.atan()).abs() <= TWO_ULP,
                "x = {x}: {} vs {}",
                atan(x),
                x.atan()
            );
            x += 1.0 / 4096.0;
        }
        let mut x = 1.0;
        while x < 1e300 {
            for sign in [1.0, -1.0] {
                let v = sign * x;
                assert!(
                    (atan(v) - v.atan()).abs() <= TWO_ULP,
                    "x = {v}: {} vs {}",
                    atan(v),
                    v.atan()
                );
            }
            x *= 1.31;
        }
    }

    #[test]
    fn special_values_match_libm() {
        assert_eq!(atan(0.0).to_bits(), 0.0_f64.to_bits());
        assert_eq!(atan(-0.0).to_bits(), (-0.0_f64).to_bits());
        assert_eq!(atan(f64::INFINITY), std::f64::consts::FRAC_PI_2);
        assert_eq!(atan(f64::NEG_INFINITY), -std::f64::consts::FRAC_PI_2);
        assert!(atan(f64::NAN).is_nan());
    }

    #[test]
    fn is_odd() {
        for &x in &[1e-12, 0.25, 0.5, 1.0, 2.0, 1e6] {
            assert_eq!(atan(-x).to_bits(), (-atan(x)).to_bits());
        }
    }
}
