//! Multi-start fitting scaling: parameter extraction as a batch workload.
//!
//! Fits two synthetic "measured" loops with 8 starting points each (16
//! independent local searches) through `hdl_models::fit::fit_batch` at 1,
//! 2, 4 and all available workers, printing the observed wall-clock,
//! aggregate speedup and the best-of cost per loop, then measures each
//! worker count with the Criterion harness.  The report is deterministic
//! at every worker count (asserted by `tests/fit_determinism.rs`); this
//! bench covers the performance side — on a multicore runner the 4-worker
//! row lands at ≥2× over the single worker, since the starts are fully
//! independent.

use criterion::{black_box, Criterion};
use hdl_models::fit::{fit_batch, FitJob, MultiStartOptions};
use ja_hysteresis::backend::HysteresisBackend;
use ja_hysteresis::fitting::FitOptions;
use ja_hysteresis::model::JilesAtherton;
use magnetics::bh::BhCurve;
use magnetics::material::JaParameters;
use waveform::schedule::FieldSchedule;

fn measured_loop(params: JaParameters) -> BhCurve {
    let mut model = JilesAtherton::new(params).expect("valid parameters");
    let schedule = FieldSchedule::major_loop(10_000.0, 100.0, 2).expect("schedule");
    model.run_schedule(&schedule).expect("sweep")
}

fn jobs() -> Vec<FitJob> {
    vec![
        FitJob::with_auto_peak("date2006", measured_loop(JaParameters::date2006())),
        FitJob::with_auto_peak("hard-steel", measured_loop(JaParameters::hard_steel())),
    ]
}

fn options(workers: usize) -> MultiStartOptions {
    MultiStartOptions {
        starts: 8,
        seed: 42,
        workers,
        fit: FitOptions {
            passes: 4,
            sweep_step: 200.0,
            ..FitOptions::default()
        },
        ..MultiStartOptions::default()
    }
}

fn worker_counts() -> Vec<usize> {
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut counts = vec![1, 2, 4];
    if !counts.contains(&available) {
        counts.push(available);
    }
    counts
}

fn print_experiment() {
    println!("== fit multistart: 2 loops x 8 starts (16 independent local searches) ==");
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>14} {:>12}",
        "workers", "elapsed[ms]", "serial[ms]", "speedup", "best cost", "evaluations"
    );
    let mut baseline_elapsed = None;
    for workers in worker_counts() {
        let report = fit_batch(jobs(), &options(workers)).expect("fit batch");
        let elapsed = report.elapsed.as_secs_f64();
        let baseline = *baseline_elapsed.get_or_insert(elapsed);
        let best_cost = report.loops[0].best_fit().map_or(f64::NAN, |fit| fit.cost);
        let evaluations: usize = report.loops.iter().map(|l| l.evaluations()).sum();
        println!(
            "{:<10} {:>12.1} {:>14.1} {:>9.2}x {:>14.4} {:>12}",
            report.workers,
            elapsed * 1e3,
            report.serial_runtime().as_secs_f64() * 1e3,
            if elapsed > 0.0 {
                baseline / elapsed
            } else {
                0.0
            },
            best_cost,
            evaluations
        );
    }
    println!(
        "\n(speedup = 1-worker elapsed over this row's elapsed; the starts are\n\
         independent, so on a multicore machine 4 workers reach >=2x.  Costs\n\
         and evaluation counts are identical on every row — the worker count\n\
         only moves work, never results.)\n"
    );
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_multistart");
    group.sample_size(5);
    for workers in worker_counts() {
        group.bench_function(format!("starts8_workers{workers}"), move |b| {
            b.iter(|| black_box(fit_batch(jobs(), &options(workers)).expect("fit batch")))
        });
    }
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
