//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Provides the API subset used by the workspace's bench targets
//! (`Criterion::default().configure_from_args()`, `benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter`, `finish`,
//! `final_summary`, [`black_box`]) backed by a simple wall-clock timing
//! loop: each benchmark runs `sample_size` samples and reports min /
//! median / max per-iteration time.  There is no statistical analysis,
//! outlier rejection or HTML report generation.
//!
//! Two harness flags extend the real crate's CLI for CI use:
//!
//! * `--smoke` — caps every benchmark at 2 samples (overriding group
//!   `sample_size` settings), so a full bench run completes in seconds and
//!   merely proves the targets still execute;
//! * `--json <path>` — when [`Criterion::final_summary`] runs, writes the
//!   collected medians in the workspace's versioned report format
//!
//!   ```json
//!   {
//!     "schema_version": 1,
//!     "kind": "bench",
//!     "benches": {"bench id": median_ns, ...}
//!   }
//!   ```
//!
//!   seeding the perf-trajectory artifact the CI pipeline uploads and the
//!   `ja bench-gate` regression gate consumes.

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Version of the shared report schema the `--json` output follows.
///
/// This crate is an offline stand-in and must not depend on the workspace's
/// library crates, so the constant is replicated here; it MUST match
/// `ja_hysteresis::json::SCHEMA_VERSION`.  Drift is caught at consumption
/// time: `ja bench-gate` rejects bench reports whose `schema_version`
/// differs from the library's.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point of the timing harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    smoke: bool,
    json_path: Option<PathBuf>,
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            filter: None,
            smoke: false,
            json_path: None,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies command-line arguments: the first free argument (as passed by
    /// `cargo bench -- <filter>`) is used as a substring filter on benchmark
    /// names, `--smoke` and `--json <path>` are honoured as described in the
    /// crate docs, and other harness flags like `--bench` are ignored.
    pub fn configure_from_args(self) -> Self {
        self.apply_args(std::env::args().skip(1))
    }

    fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Self {
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if arg == "--smoke" {
                self.smoke = true;
            } else if arg == "--json" {
                // A missing path must not silently drop the perf artifact
                // (the CI pipeline depends on the file existing).
                let path = args.next().expect("--json requires a path argument");
                self.json_path = Some(PathBuf::from(path));
            } else if let Some(path) = arg.strip_prefix("--json=") {
                self.json_path = Some(PathBuf::from(path));
            } else if arg.starts_with('-') {
                // Other harness flags (--bench, --exact, ...) are ignored.
            } else if self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    /// Prints the closing line of a run (report generation in the real
    /// crate) and, when `--json <path>` was given, writes the collected
    /// medians as a flat JSON object.  I/O failures panic: a CI pipeline
    /// must not silently lose its perf artifact.
    pub fn final_summary(&mut self) {
        if let Some(path) = &self.json_path {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).expect("create --json parent directory");
                }
            }
            std::fs::write(path, self.results_json()).expect("write --json results file");
            println!("\nbench medians written to {}", path.display());
        }
        println!("\nbenchmarks complete (offline criterion stub: wall-clock timing only)");
    }

    /// The collected results in the versioned report envelope
    /// (`schema_version`, `kind: "bench"`, then a `benches` object mapping
    /// bench id to median nanoseconds per iteration, sorted by id).
    fn results_json(&self) -> String {
        let mut sorted: Vec<&(String, f64)> = self.results.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"kind\": \"bench\",\n  \"benches\": {{"
        ));
        for (i, (id, median_ns)) in sorted.iter().enumerate() {
            let comma = if i + 1 < sorted.len() { "," } else { "" };
            out.push_str(&format!(
                "\n    \"{}\": {:.1}{comma}",
                json_escape(id),
                median_ns
            ));
        }
        if !sorted.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let sample_size = if self.smoke {
            sample_size.min(2)
        } else {
            sample_size
        };
        let mut samples = Vec::with_capacity(sample_size);
        // One warm-up call outside the measurement.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        for _ in 0..sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
            }
        }
        if samples.is_empty() {
            println!("  {id:<44} (no measurements)");
            return;
        }
        samples.sort_by(f64::total_cmp);
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let median = median_of_sorted(&samples);
        self.results.push((id.to_owned(), median * 1e9));
        println!(
            "  {id:<44} time: [{} {} {}]",
            format_time(min),
            format_time(median),
            format_time(max)
        );
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&id, sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmarked closure; measures the hot loop.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `routine` (the real crate runs many
    /// iterations per sample; the stub times a single call per sample).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut criterion = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        criterion.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_apply_sample_size_and_prefix() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function(String::from("inner"), |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn smoke_flag_caps_sample_size_even_for_groups() {
        let mut criterion = Criterion::default().apply_args(["--smoke".to_owned()]);
        let mut group = criterion.benchmark_group("g");
        group.sample_size(50);
        let mut calls = 0u32;
        group.bench_function("inner", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // warm-up + 2 smoke samples instead of 50.
        assert_eq!(calls, 3);
    }

    #[test]
    fn args_parse_json_path_smoke_and_filter() {
        let c = Criterion::default().apply_args(
            ["--bench", "--json", "out/bench.json", "--smoke", "fig1"].map(str::to_owned),
        );
        assert_eq!(
            c.json_path.as_deref(),
            Some(std::path::Path::new("out/bench.json"))
        );
        assert!(c.smoke);
        assert_eq!(c.filter.as_deref(), Some("fig1"));
        let c = Criterion::default().apply_args(["--json=x.json".to_owned()]);
        assert_eq!(c.json_path.as_deref(), Some(std::path::Path::new("x.json")));
    }

    #[test]
    #[should_panic(expected = "--json requires a path argument")]
    fn json_flag_without_a_path_panics_instead_of_dropping_the_artifact() {
        let _ = Criterion::default().apply_args(["--json".to_owned()]);
    }

    #[test]
    fn filtered_out_benchmarks_do_not_run_or_record() {
        let mut criterion = Criterion::default()
            .sample_size(2)
            .apply_args(["only_this".to_owned()]);
        let mut calls = 0u32;
        criterion.bench_function("something_else", |b| b.iter(|| calls += 1));
        criterion.bench_function("only_this_one", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3); // warm-up + 2 samples, second bench only
        assert_eq!(criterion.results.len(), 1);
        assert_eq!(criterion.results[0].0, "only_this_one");
    }

    #[test]
    fn median_handles_odd_and_even_sample_counts() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 5.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0, 5.0]), 2.5);
        assert_eq!(median_of_sorted(&[4.0]), 4.0);
    }

    #[test]
    fn json_output_is_sorted_escaped_and_enveloped() {
        let mut criterion = Criterion::default();
        criterion.results.push(("z/bench".to_owned(), 1234.56));
        criterion.results.push(("a\"quote".to_owned(), 7.0));
        let json = criterion.results_json();
        let a = json.find("a\\\"quote").expect("escaped id present");
        let z = json.find("z/bench").expect("second id present");
        assert!(a < z, "entries must be sorted by id:\n{json}");
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        // Versioned envelope, in order: schema_version, kind, benches.
        let version = json
            .find(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}"))
            .expect("schema_version present");
        let kind = json.find("\"kind\": \"bench\"").expect("kind present");
        let benches = json.find("\"benches\"").expect("benches present");
        assert!(version < kind && kind < benches, "{json}");
    }

    #[test]
    fn empty_results_still_emit_a_valid_envelope() {
        let criterion = Criterion::default();
        let json = criterion.results_json();
        assert!(json.contains("\"benches\": {}\n"), "{json}");
    }

    #[test]
    fn final_summary_writes_json_file() {
        let path = std::env::temp_dir().join("criterion_stub_test_bench.json");
        let _ = std::fs::remove_file(&path);
        let mut criterion = Criterion::default()
            .sample_size(3)
            .apply_args([format!("--json={}", path.display())]);
        criterion.bench_function("write_me", |b| b.iter(|| black_box(2 + 2)));
        criterion.final_summary();
        let written = std::fs::read_to_string(&path).expect("json file written");
        assert!(written.contains("\"write_me\":"), "{written}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn format_time_scales_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
