//! Experiment E2: minor loops of various sizes and positions are produced
//! without numerical difficulties.

use criterion::{black_box, Criterion};
use hdl_models::comparison::minor_loop_study;
use hdl_models::scenario::{BackendKind, Excitation, Scenario};
use ja_hysteresis::config::JaConfig;
use magnetics::material::JaParameters;

fn print_experiment() {
    println!("== E2: minor loops at various sizes and positions ==");
    println!("paper claim: \"minor loops with no numerical difficulties for various minor loop sizes and in different positions\"\n");
    let cases = minor_loop_study(
        &[0.0, 2_000.0, 5_000.0, -4_000.0],
        &[500.0, 1_500.0, 3_000.0],
        10.0,
    )
    .expect("study runs");
    println!(
        "{:>10} {:>12} {:>14} {:>16} {:>12}",
        "bias[A/m]", "ampl[A/m]", "area[J/m3]", "closure|dB|[T]", "neg.slope"
    );
    for case in &cases {
        println!(
            "{:>10.0} {:>12.0} {:>14.1} {:>16.4} {:>12}",
            case.bias,
            case.amplitude,
            case.loop_area,
            case.closure_error,
            case.negative_slope_samples
        );
    }
    println!(
        "\nall loops numerically clean: {}\n",
        cases.iter().all(|c| c.negative_slope_samples == 0)
    );
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("minor_loops");
    group.sample_size(10);
    for &amplitude in &[500.0, 1_500.0, 3_000.0] {
        let scenario = Scenario::new(
            format!("minor-loop/amp{amplitude}"),
            JaParameters::date2006(),
            JaConfig::default(),
            BackendKind::DirectTimeless,
            Excitation::biased_minor_loop(2_000.0, amplitude, 3, 10.0).expect("excitation"),
        );
        group.bench_function(format!("biased_loop_amplitude_{amplitude}"), |b| {
            b.iter(|| black_box(scenario.run().expect("sweep")))
        });
    }
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
