//! `ja compare` — backend-agreement table across implementation styles.

use hdl_models::report::agreement_value;
use hdl_models::scenario::backend_agreement;
use ja_hysteresis::config::JaConfig;

use crate::common::{backend_set_by_name, material_by_name, write_output, NamedExcitation};
use crate::{opts, CliError};

/// Per-subcommand help (see `ja help compare`).
pub const HELP: &str = "\
ja compare — run the same stimulus on several backends and compare

USAGE:
    ja compare [OPTIONS]

OPTIONS:
    --backends SET     all | timeless | a single backend name [default: all]
    --material NAME    date2006 | ja1984 | soft-ferrite | hard-steel
                       [default: date2006]
    --dh-max A_PER_M   discretisation threshold               [default: 10]
    --peak A_PER_M     triangular major-loop peak             [default: 10000]
    --step A_PER_M     field step of the stimulus             [default: 50]
    --cycles N         full triangular cycles                 [default: 1]
    --fig1             use the paper's Fig. 1 stimulus
    --format FORMAT    table | json                           [default: table]
    --timings          include runtime_ns in the JSON report
    --out PATH         write to PATH instead of stdout

The three timeless styles (direct, systemc, ams) are expected to agree to
within ~1% of peak B; the time-domain baseline is the conventional
formulation the paper compares against.  The JSON report is
`kind: \"compare\"`: max_abs_diff_b_t, relative_diff, worst_pair and one
entry per backend.";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failures when any backend fails to run.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &["fig1", "timings"],
        &[
            "backends", "material", "dh-max", "peak", "step", "cycles", "format", "out",
        ],
    )?;
    parsed.no_positionals()?;

    let backends = backend_set_by_name(parsed.value("backends").unwrap_or("all"))?;
    let params = material_by_name(parsed.value("material").unwrap_or("date2006"))?;
    let config = JaConfig::default().with_dh_max(parsed.f64_or("dh-max", 10.0)?);
    config
        .validate()
        .map_err(|err| CliError::usage(err.to_string()))?;
    let step = parsed.f64_or("step", 50.0)?;
    let named = if parsed.flag("fig1") {
        if parsed.value("peak").is_some() || parsed.value("cycles").is_some() {
            return Err(CliError::usage(
                "--fig1 replaces the triangular stimulus; it excludes --peak and --cycles"
                    .to_owned(),
            ));
        }
        NamedExcitation::fig1(step)?
    } else {
        NamedExcitation::major(
            parsed.f64_or("peak", 10_000.0)?,
            step,
            parsed.usize_or("cycles", 1)?,
        )?
    };

    let report = backend_agreement(params, config, &named.excitation, &backends)
        .map_err(|err| CliError::failure(err.to_string()))?;

    let out = parsed.value("out");
    match parsed.value("format").unwrap_or("table") {
        "json" => write_output(
            out,
            &agreement_value(&report, parsed.flag("timings")).to_pretty_string(),
        ),
        "table" => {
            let mut text = format!("stimulus: {}\n\n", named.name);
            text.push_str(&format!(
                "{:<24} {:>8} {:>10} {:>12} {:>10} {:>14}\n",
                "backend", "samples", "B_max (T)", "Hc (A/m)", "Br (T)", "area (J/m3)"
            ));
            for outcome in &report.outcomes {
                match &outcome.metrics {
                    Some(m) => text.push_str(&format!(
                        "{:<24} {:>8} {:>10.4} {:>12.2} {:>10.4} {:>14.1}\n",
                        outcome.backend.label(),
                        outcome.curve.len(),
                        m.b_max.as_tesla(),
                        m.coercivity.value(),
                        m.remanence.as_tesla(),
                        m.loop_area,
                    )),
                    None => text.push_str(&format!(
                        "{:<24} {:>8} {:>10} {:>12} {:>10} {:>14}\n",
                        outcome.backend.label(),
                        outcome.curve.len(),
                        "-",
                        "-",
                        "-",
                        "-",
                    )),
                }
            }
            text.push_str(&format!(
                "\nworst pairwise |dB|: {:.6} T ({:.4}% of peak B)\n",
                report.max_abs_diff_b,
                report.relative_diff * 100.0
            ));
            if let Some((a, b)) = report.worst_pair {
                text.push_str(&format!("worst pair: {} vs {}\n", a.label(), b.label()));
            }
            write_output(out, &text)
        }
        other => Err(CliError::usage(format!(
            "unknown format `{other}` (expected table | json)"
        ))),
    }
}
