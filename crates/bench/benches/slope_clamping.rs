//! Experiment E3: the positive-slope guard removes the unphysical negative
//! slopes of the raw Jiles–Atherton equations (the Brown et al. criticism
//! cited by the paper).

use criterion::{black_box, Criterion};
use hdl_models::comparison::{slope_clamping_study, DEFAULT_STEP};
use hdl_models::scenario::{BackendKind, Excitation, Scenario};
use ja_hysteresis::config::JaConfig;
use magnetics::material::JaParameters;

fn print_experiment() {
    println!("== E3: slope clamping (guards on vs raw JA equations) ==");
    let report = slope_clamping_study(DEFAULT_STEP).expect("study runs");
    println!(
        "guarded model   : {} negative-slope samples, B_max = {:.3} T",
        report.guarded_negative_samples, report.guarded_b_max
    );
    println!(
        "raw (no guards) : {} negative-slope samples, B_max = {:.3} T",
        report.unguarded_negative_samples, report.unguarded_b_max
    );
    println!(
        "negative raw slopes encountered and clamped by the guarded model: {}\n",
        report.clamped_events
    );
}

fn benches(c: &mut Criterion) {
    let excitation = Excitation::fig1(DEFAULT_STEP).expect("excitation");
    let mut group = c.benchmark_group("slope_clamping");
    group.sample_size(10);
    for (name, config) in [
        ("guarded", JaConfig::default()),
        ("unguarded", JaConfig::default().without_guards()),
    ] {
        let scenario = Scenario::new(
            format!("clamping/{name}"),
            JaParameters::date2006(),
            config,
            BackendKind::DirectTimeless,
            excitation.clone(),
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(scenario.run().expect("sweep")))
        });
    }
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
