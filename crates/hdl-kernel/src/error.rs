//! Error type for the discrete-event kernel.

use std::error::Error;
use std::fmt;

use crate::signal::SignalId;
use crate::time::SimTime;

/// Errors produced by kernel construction or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A signal id did not refer to a signal of this kernel.
    UnknownSignal {
        /// The offending id.
        id: SignalId,
    },
    /// A value of one kind was read as another (e.g. a bit read as a real).
    TypeMismatch {
        /// What the caller expected.
        expected: &'static str,
        /// What the signal actually holds.
        found: &'static str,
    },
    /// The delta-cycle loop did not settle within the iteration limit,
    /// which almost always indicates combinational feedback between
    /// processes (the discrete-event analogue of non-convergence).
    DeltaCycleLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A wake-up was scheduled in the past.
    ScheduleInPast {
        /// Current simulation time.
        now: SimTime,
        /// Requested wake-up time.
        requested: SimTime,
    },
    /// A process body returned an error (wrapped as a string to keep the
    /// kernel independent of model error types).
    ProcessFailure {
        /// Name of the failing process.
        process: String,
        /// Stringified model error.
        message: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownSignal { id } => write!(f, "unknown signal id {id:?}"),
            KernelError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "signal type mismatch: expected {expected}, found {found}"
                )
            }
            KernelError::DeltaCycleLimit { limit } => write!(
                f,
                "delta cycles did not settle within {limit} iterations (combinational feedback?)"
            ),
            KernelError::ScheduleInPast { now, requested } => write!(
                f,
                "wake-up requested at {requested} which is before current time {now}"
            ),
            KernelError::ProcessFailure { process, message } => {
                write!(f, "process `{process}` failed: {message}")
            }
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let err = KernelError::TypeMismatch {
            expected: "real",
            found: "bit",
        };
        assert!(err.to_string().contains("expected real"));

        let err = KernelError::DeltaCycleLimit { limit: 1000 };
        assert!(err.to_string().contains("1000"));

        let err = KernelError::ProcessFailure {
            process: "core".into(),
            message: "boom".into(),
        };
        assert!(err.to_string().contains("`core`"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<KernelError>();
    }
}
