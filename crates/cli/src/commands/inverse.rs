//! `ja inverse` — flux-driven solve: target B trace in, required H out.

use hdl_models::report::{metrics_value, report_envelope};
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::inverse::{FluxDrivenJa, InverseOptions};
use ja_hysteresis::json::JsonValue;
use ja_hysteresis::model::JilesAtherton;
use magnetics::loop_analysis::loop_metrics;
use waveform::export::read_csv;

use crate::commands::fit::column;
use crate::common::{material_by_name, read_input, write_curve_csv, write_output};
use crate::{opts, CliError};

/// Per-subcommand help (see `ja help inverse`).
pub const HELP: &str = "\
ja inverse — flux-driven operation: impose B(t), solve for the required H

USAGE:
    ja inverse --input PATH [OPTIONS]

OPTIONS:
    --input PATH          target flux-density CSV (required).  Uses the
                          `b` column, or the only column of a single-column
                          file, or --column.
    --column NAME         target column name
    --material NAME       date2006 | ja1984 | soft-ferrite | hard-steel
                          [default: date2006]
    --dh-max A_PER_M      discretisation threshold            [default: 10]
    --b-tolerance T       absolute tolerance on achieved B    [default: 1e-6]
    --h-limit A_PER_M     largest |H| the solver may apply    [default: 1e6]
    --max-iterations N    bisection iterations per sample     [default: 80]
    --format FORMAT       csv | json                          [default: csv]
    --out PATH            write to PATH instead of stdout

CSV output is the resulting trajectory (columns h, b, m).  The JSON report
is `kind: \"inverse\"`: samples, h_peak_a_per_m, b_peak_t and the loop
metrics of the trajectory (null when it does not close a loop).";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failures for unreadable input or an
/// unreachable target.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &[],
        &[
            "input",
            "column",
            "material",
            "dh-max",
            "b-tolerance",
            "h-limit",
            "max-iterations",
            "format",
            "out",
        ],
    )?;
    parsed.no_positionals()?;

    let text = read_input(parsed.require("input")?)?;
    let input = read_csv(&text).map_err(|err| CliError::failure(err.to_string()))?;
    let targets: &[f64] = match parsed.value("column") {
        Some(name) => column(&input, name)?,
        None if input.width() == 1 => input.column_at(0).expect("width checked"),
        None => column(&input, "b")?,
    };

    let params = material_by_name(parsed.value("material").unwrap_or("date2006"))?;
    let config = JaConfig::default().with_dh_max(parsed.f64_or("dh-max", 10.0)?);
    config
        .validate()
        .map_err(|err| CliError::usage(err.to_string()))?;
    let model = JilesAtherton::with_config(params, config)
        .map_err(|err| CliError::failure(err.to_string()))?;
    let defaults = InverseOptions::default();
    let options = InverseOptions {
        b_tolerance: parsed.f64_or("b-tolerance", defaults.b_tolerance)?,
        max_iterations: parsed.usize_or("max-iterations", defaults.max_iterations)?,
        h_limit: parsed.f64_or("h-limit", defaults.h_limit)?,
    };
    options
        .validate()
        .map_err(|err| CliError::usage(err.to_string()))?;

    let mut solver = FluxDrivenJa::new(model).with_options(options);
    let curve = solver
        .follow_flux_density(targets.iter().copied())
        .map_err(|err| CliError::failure(err.to_string()))?;

    let out = parsed.value("out");
    match parsed.value("format").unwrap_or("csv") {
        "csv" => write_curve_csv(out, &curve),
        "json" => {
            let h_peak = curve
                .points()
                .iter()
                .fold(0.0_f64, |acc, p| acc.max(p.h.value().abs()));
            let b_peak = curve
                .points()
                .iter()
                .fold(0.0_f64, |acc, p| acc.max(p.b.as_tesla().abs()));
            let doc = report_envelope("inverse")
                .with("samples", curve.len())
                .with("h_peak_a_per_m", h_peak)
                .with("b_peak_t", b_peak)
                .with(
                    "metrics",
                    loop_metrics(&curve)
                        .map(|m| metrics_value(&m))
                        .unwrap_or(JsonValue::Null),
                );
            write_output(out, &doc.to_pretty_string())
        }
        other => Err(CliError::usage(format!(
            "unknown format `{other}` (expected csv | json)"
        ))),
    }
}
