//! Model configuration: discretisation threshold, integration order,
//! formulation and numerical guards.

use crate::error::JaError;
use crate::params::AnhystereticChoice;

/// Integration method used for the timeless slope integration.
///
/// The paper uses forward Euler; the higher-order variants integrate the
/// same slope expression with intermediate evaluations within the field
/// increment and exist for the accuracy/cost ablation (experiment E8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlopeIntegration {
    /// Forward Euler in `H` — the paper's method.
    #[default]
    ForwardEuler,
    /// Heun's method (two slope evaluations per field increment).
    Heun,
    /// Classic RK4 in `H` (four slope evaluations per field increment).
    RungeKutta4,
}

/// Which variant of the JA equations the model integrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Formulation {
    /// The formulation of the paper's SystemC listing: the reversible part
    /// is `M_rev = c·M_an/(1+c)` and the irreversible slope is driven by
    /// `M_an − M_total`.
    #[default]
    Date2006,
    /// The textbook Jiles–Atherton formulation: `M_rev = c·(M_an − M_irr)`
    /// and the irreversible slope is driven by `M_an − M_irr`.
    Classic,
}

/// Full model configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaConfig {
    /// Field-change threshold `ΔH_max` (A/m): the slope is re-integrated
    /// whenever the applied field has moved by at least this much since the
    /// last update (the paper's `dhmax`).
    pub dh_max: f64,
    /// Integration method used within a field increment.
    pub integration: SlopeIntegration,
    /// Equation variant.
    pub formulation: Formulation,
    /// Anhysteretic law.
    pub anhysteretic: AnhystereticChoice,
    /// Clamp negative slopes to zero (the paper's `if (dmdh1 > 0.0)` guard).
    pub clamp_negative_slope: bool,
    /// Reject magnetisation updates whose sign opposes the field increment
    /// (the paper's `if (dm * dh < 0.0) dm = 0.0` guard).
    pub reject_opposing_update: bool,
    /// Subdivide a field increment larger than `dh_max` into sub-steps of at
    /// most `dh_max` (improves accuracy for coarse excitations; the paper's
    /// listing takes a single step, so this defaults to `false`).
    pub subdivide_increment: bool,
}

impl Default for JaConfig {
    fn default() -> Self {
        Self {
            dh_max: 10.0,
            integration: SlopeIntegration::ForwardEuler,
            formulation: Formulation::Date2006,
            anhysteretic: AnhystereticChoice::ModifiedLangevin,
            clamp_negative_slope: true,
            reject_opposing_update: true,
            subdivide_increment: false,
        }
    }
}

impl JaConfig {
    /// The configuration that mirrors the paper's SystemC listing with a
    /// `ΔH_max` of 10 A/m.
    pub fn date2006() -> Self {
        Self::default()
    }

    /// Builder-style setter for `ΔH_max`.
    pub fn with_dh_max(mut self, dh_max: f64) -> Self {
        self.dh_max = dh_max;
        self
    }

    /// Builder-style setter for the integration method.
    pub fn with_integration(mut self, integration: SlopeIntegration) -> Self {
        self.integration = integration;
        self
    }

    /// Builder-style setter for the formulation.
    pub fn with_formulation(mut self, formulation: Formulation) -> Self {
        self.formulation = formulation;
        self
    }

    /// Builder-style setter for the anhysteretic law.
    pub fn with_anhysteretic(mut self, anhysteretic: AnhystereticChoice) -> Self {
        self.anhysteretic = anhysteretic;
        self
    }

    /// Disables both numerical guards — reproduces the raw JA behaviour
    /// (negative slopes and all) for experiment E3.
    pub fn without_guards(mut self) -> Self {
        self.clamp_negative_slope = false;
        self.reject_opposing_update = false;
        self
    }

    /// Enables sub-division of large field increments.
    pub fn with_subdivision(mut self) -> Self {
        self.subdivide_increment = true;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] when `dh_max` is not finite and
    /// strictly positive.
    pub fn validate(&self) -> Result<(), JaError> {
        if !self.dh_max.is_finite() || self.dh_max <= 0.0 {
            return Err(JaError::InvalidConfig {
                name: "dh_max",
                value: self.dh_max,
                requirement: "finite and > 0",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_guards() {
        let c = JaConfig::default();
        assert!(c.clamp_negative_slope);
        assert!(c.reject_opposing_update);
        assert!(!c.subdivide_increment);
        assert_eq!(c.integration, SlopeIntegration::ForwardEuler);
        assert_eq!(c.formulation, Formulation::Date2006);
        assert!(c.validate().is_ok());
        assert_eq!(JaConfig::date2006(), JaConfig::default());
    }

    #[test]
    fn builder_setters() {
        let c = JaConfig::default()
            .with_dh_max(25.0)
            .with_integration(SlopeIntegration::RungeKutta4)
            .with_formulation(Formulation::Classic)
            .with_anhysteretic(AnhystereticChoice::Langevin)
            .with_subdivision();
        assert_eq!(c.dh_max, 25.0);
        assert_eq!(c.integration, SlopeIntegration::RungeKutta4);
        assert_eq!(c.formulation, Formulation::Classic);
        assert_eq!(c.anhysteretic, AnhystereticChoice::Langevin);
        assert!(c.subdivide_increment);
    }

    #[test]
    fn without_guards_disables_both() {
        let c = JaConfig::default().without_guards();
        assert!(!c.clamp_negative_slope);
        assert!(!c.reject_opposing_update);
    }

    #[test]
    fn validation_rejects_bad_dh_max() {
        assert!(JaConfig::default().with_dh_max(0.0).validate().is_err());
        assert!(JaConfig::default()
            .with_dh_max(f64::NAN)
            .validate()
            .is_err());
        assert!(JaConfig::default().with_dh_max(-3.0).validate().is_err());
    }
}
