//! A hysteretic wound core inside a circuit: the "JA model in a circuit
//! simulator" setting of the paper's introduction, here running on the MNA
//! transient engine with the timeless core model plugged in as the
//! magnetic material.
//!
//! The circuit is a 50 Hz sine source driving a 200-turn winding on the
//! paper's core material through a small series resistance — a classic
//! magnetising-inrush setup.
//!
//! Run with: `cargo run --example inductor_circuit`

use std::error::Error;

use ja_repro::analog_solver::circuit::elements::{NonlinearInductor, Resistor, VoltageSource};
use ja_repro::analog_solver::circuit::{Circuit, Node, StepControl, TransientAnalysis};
use ja_repro::hdl_models::circuit_adapter::JaCoreAdapter;
use ja_repro::hdl_models::scenario::CircuitExcitation;
use ja_repro::waveform::export::ascii_plot;
use ja_repro::waveform::sine::Sine;

fn build_circuit() -> Result<(Circuit, usize, Node), Box<dyn Error>> {
    let mut circuit = Circuit::new();
    let v_in = circuit.node();
    let v_core = circuit.node();

    circuit.add(
        "V1",
        VoltageSource::new(v_in, Node::GROUND, Sine::new(30.0, 50.0)?),
    )?;
    circuit.add("R1", Resistor::new(v_in, v_core, 1.0)?)?;
    let core_index = circuit.add(
        "CORE",
        NonlinearInductor::new(
            v_core,
            Node::GROUND,
            200.0,  // turns
            1.0e-4, // core area, m^2
            0.1,    // magnetic path length, m
            JaCoreAdapter::date2006()?,
        )?,
    )?;
    Ok((circuit, core_index, v_core))
}

fn main() -> Result<(), Box<dyn Error>> {
    let (mut circuit, core_index, v_core) = build_circuit()?;

    let analysis = TransientAnalysis::new(2e-5, 0.1)?; // five 50 Hz cycles
    let result = analysis.run(&mut circuit)?;

    let stats = result.stats();
    println!("== transient statistics (fixed 20 µs steps) ==");
    println!("  time points        = {}", result.len());
    println!("  newton iterations  = {}", stats.newton_iterations);
    println!("  LU solves          = {}", stats.lu_solves);
    println!("  non-converged steps= {}", stats.non_converged_steps);

    // The same circuit under the adaptive controller: the LTE estimate
    // stretches the step through the saturated stretches and tightens it
    // around the magnetising-current spikes.
    let (mut adaptive_circuit, _, _) = build_circuit()?;
    let adaptive = TransientAnalysis::new(2e-5, 0.1)?
        .with_step_control(StepControl::Adaptive(CircuitExcitation::adaptive_defaults()))
        .run(&mut adaptive_circuit)?;
    println!("\n== transient statistics (adaptive step control) ==");
    println!("  accepted steps     = {}", adaptive.stats().accepted_steps);
    println!("  rejected steps     = {}", adaptive.stats().rejected_steps);
    println!(
        "  newton iterations  = {}",
        adaptive.stats().newton_iterations
    );
    println!(
        "  step economy       = {} accepted vs {} fixed",
        adaptive.stats().accepted_steps,
        result.len() - 1
    );

    let current = result.branch_current(core_index, 0)?;
    let voltage = result.voltage(v_core)?;
    let peak_i = current.iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
    let peak_v = voltage.iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
    println!("\n== waveforms ==");
    println!("  peak magnetising current = {peak_i:.2} A");
    println!("  peak core voltage        = {peak_v:.2} V");

    // The saturating core distorts the current: compare the peak with the
    // RMS — a sine has crest factor sqrt(2) ~ 1.41, a saturating inductor
    // much more.
    let rms = (current.iter().map(|i| i * i).sum::<f64>() / current.len() as f64).sqrt();
    println!(
        "  current crest factor     = {:.2} (sine would be 1.41)",
        peak_i / rms
    );

    println!("\nmagnetising current over time (x: sample, y: A):");
    let t: Vec<f64> = (0..current.len()).map(|i| i as f64).collect();
    println!("{}", ascii_plot(&t, &current, 78, 20)?);
    Ok(())
}
