//! Circuit elements and the MNA stamping interface.
//!
//! Every element implements [`Element`]: it declares its nodes and the
//! number of extra branch-current unknowns it needs, stamps its linearised
//! contribution into the MNA system on every Newton iteration, and commits
//! its internal state once the step is accepted.
//!
//! Sign conventions:
//!
//! * node equations state "sum of currents *leaving* the node through
//!   elements equals the sum of known currents *injected* into the node";
//! * a branch current is positive when it flows from the element's first
//!   node (`a`) through the element to its second node (`b`).

use crate::circuit::core_model::MagneticCoreModel;
use crate::circuit::Node;
use crate::linalg::Matrix;
use waveform::Waveform;

/// Mutable view of the MNA system handed to elements during stamping.
pub struct StampContext<'a> {
    pub(crate) matrix: &'a mut Matrix,
    pub(crate) rhs: &'a mut [f64],
    pub(crate) x_guess: &'a [f64],
    pub(crate) x_prev: &'a [f64],
    pub(crate) node_count: usize,
    pub(crate) branch_offset: usize,
    pub(crate) time: f64,
    pub(crate) dt: f64,
}

impl StampContext<'_> {
    fn node_var(&self, node: Node) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.0 - 1)
        }
    }

    fn branch_var(&self, local: usize) -> usize {
        self.node_count - 1 + self.branch_offset + local
    }

    /// The time at the end of the step being assembled.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The time-step size.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Node voltage at the current Newton iterate.
    pub fn voltage(&self, node: Node) -> f64 {
        self.node_var(node).map_or(0.0, |i| self.x_guess[i])
    }

    /// Node voltage at the previous accepted time point.
    pub fn prev_voltage(&self, node: Node) -> f64 {
        self.node_var(node).map_or(0.0, |i| self.x_prev[i])
    }

    /// Branch current (local index) at the current Newton iterate.
    pub fn branch_current(&self, local: usize) -> f64 {
        self.x_guess[self.branch_var(local)]
    }

    /// Branch current (local index) at the previous accepted time point.
    pub fn prev_branch_current(&self, local: usize) -> f64 {
        self.x_prev[self.branch_var(local)]
    }

    /// Stamps a conductance `g` between nodes `a` and `b`.
    pub fn stamp_conductance(&mut self, a: Node, b: Node, g: f64) {
        if let Some(i) = self.node_var(a) {
            self.matrix.add(i, i, g);
            if let Some(j) = self.node_var(b) {
                self.matrix.add(i, j, -g);
            }
        }
        if let Some(j) = self.node_var(b) {
            self.matrix.add(j, j, g);
            if let Some(i) = self.node_var(a) {
                self.matrix.add(j, i, -g);
            }
        }
    }

    /// Records a known current `i` injected *into* `node`.
    pub fn stamp_injection(&mut self, node: Node, i: f64) {
        if let Some(row) = self.node_var(node) {
            self.rhs[row] += i;
        }
    }

    /// Couples a branch current into the KCL equations: the branch current
    /// (local index) leaves node `a` and enters node `b`.
    pub fn stamp_branch_kcl(&mut self, local: usize, a: Node, b: Node) {
        let col = self.branch_var(local);
        if let Some(row) = self.node_var(a) {
            self.matrix.add(row, col, 1.0);
        }
        if let Some(row) = self.node_var(b) {
            self.matrix.add(row, col, -1.0);
        }
    }

    /// Adds `coeff · v(node)` to the branch equation `local`.
    pub fn stamp_branch_voltage(&mut self, local: usize, node: Node, coeff: f64) {
        if let Some(col) = self.node_var(node) {
            let row = self.branch_var(local);
            self.matrix.add(row, col, coeff);
        }
    }

    /// Adds `coeff · i(branch)` to the branch equation `local`.
    pub fn stamp_branch_current(&mut self, local: usize, coeff: f64) {
        let row = self.branch_var(local);
        let col = self.branch_var(local);
        self.matrix.add(row, col, coeff);
    }

    /// Adds a constant to the right-hand side of the branch equation.
    pub fn stamp_branch_rhs(&mut self, local: usize, value: f64) {
        let row = self.branch_var(local);
        self.rhs[row] += value;
    }
}

/// Read-only view of the accepted solution handed to elements at commit
/// time.
pub struct CommitContext<'a> {
    pub(crate) x: &'a [f64],
    pub(crate) node_count: usize,
    pub(crate) branch_offset: usize,
    pub(crate) time: f64,
    pub(crate) dt: f64,
}

impl CommitContext<'_> {
    /// The time at the end of the accepted step.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The time-step size.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Accepted node voltage.
    pub fn voltage(&self, node: Node) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.0 - 1]
        }
    }

    /// Accepted branch current (local index).
    pub fn branch_current(&self, local: usize) -> f64 {
        self.x[self.node_count - 1 + self.branch_offset + local]
    }
}

/// A circuit element that can stamp itself into the MNA system.
pub trait Element {
    /// The nodes this element is connected to (used for validation).
    fn nodes(&self) -> Vec<Node>;

    /// Number of extra branch-current unknowns this element introduces.
    fn branch_count(&self) -> usize {
        0
    }

    /// Stamps the element's linearised contribution for the step being
    /// assembled.
    fn stamp(&self, ctx: &mut StampContext<'_>);

    /// Commits internal state after the step has been accepted.
    fn commit(&mut self, _ctx: &CommitContext<'_>) {}
}

/// An ideal resistor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resistor {
    a: Node,
    b: Node,
    ohms: f64,
}

impl Resistor {
    /// Creates a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SolverError::InvalidCircuit`] for a non-finite or
    /// non-positive resistance.
    pub fn new(a: Node, b: Node, ohms: f64) -> Result<Self, crate::SolverError> {
        if !ohms.is_finite() || ohms <= 0.0 {
            return Err(crate::SolverError::InvalidCircuit {
                reason: format!("resistance must be finite and positive, got {ohms}"),
            });
        }
        Ok(Self { a, b, ohms })
    }
}

impl Element for Resistor {
    fn nodes(&self) -> Vec<Node> {
        vec![self.a, self.b]
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        ctx.stamp_conductance(self.a, self.b, 1.0 / self.ohms);
    }
}

/// An ideal capacitor, discretised with backward Euler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    a: Node,
    b: Node,
    farads: f64,
}

impl Capacitor {
    /// Creates a capacitor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SolverError::InvalidCircuit`] for a non-finite or
    /// non-positive capacitance.
    pub fn new(a: Node, b: Node, farads: f64) -> Result<Self, crate::SolverError> {
        if !farads.is_finite() || farads <= 0.0 {
            return Err(crate::SolverError::InvalidCircuit {
                reason: format!("capacitance must be finite and positive, got {farads}"),
            });
        }
        Ok(Self { a, b, farads })
    }
}

impl Element for Capacitor {
    fn nodes(&self) -> Vec<Node> {
        vec![self.a, self.b]
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let g = self.farads / ctx.dt();
        let v_prev = ctx.prev_voltage(self.a) - ctx.prev_voltage(self.b);
        ctx.stamp_conductance(self.a, self.b, g);
        // Companion current source: i = g·v − g·v_prev; the constant term is
        // a known injection of +g·v_prev into `a` and −g·v_prev into `b`.
        ctx.stamp_injection(self.a, g * v_prev);
        ctx.stamp_injection(self.b, -g * v_prev);
    }
}

/// An ideal linear inductor, discretised with backward Euler.  Uses one
/// branch-current unknown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inductor {
    a: Node,
    b: Node,
    henries: f64,
}

impl Inductor {
    /// Creates an inductor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SolverError::InvalidCircuit`] for a non-finite or
    /// non-positive inductance.
    pub fn new(a: Node, b: Node, henries: f64) -> Result<Self, crate::SolverError> {
        if !henries.is_finite() || henries <= 0.0 {
            return Err(crate::SolverError::InvalidCircuit {
                reason: format!("inductance must be finite and positive, got {henries}"),
            });
        }
        Ok(Self { a, b, henries })
    }
}

impl Element for Inductor {
    fn nodes(&self) -> Vec<Node> {
        vec![self.a, self.b]
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        // Branch equation: v_a − v_b − (L/dt)·i = −(L/dt)·i_prev
        let l_over_dt = self.henries / ctx.dt();
        let i_prev = ctx.prev_branch_current(0);
        ctx.stamp_branch_kcl(0, self.a, self.b);
        ctx.stamp_branch_voltage(0, self.a, 1.0);
        ctx.stamp_branch_voltage(0, self.b, -1.0);
        ctx.stamp_branch_current(0, -l_over_dt);
        ctx.stamp_branch_rhs(0, -l_over_dt * i_prev);
    }
}

/// An independent voltage source driven by a [`Waveform`].  Uses one
/// branch-current unknown; the positive terminal is node `a`.
pub struct VoltageSource<W> {
    a: Node,
    b: Node,
    waveform: W,
}

impl<W: Waveform> VoltageSource<W> {
    /// Creates a voltage source whose positive terminal is `a`.
    pub fn new(a: Node, b: Node, waveform: W) -> Self {
        Self { a, b, waveform }
    }
}

impl<W: Waveform> Element for VoltageSource<W> {
    fn nodes(&self) -> Vec<Node> {
        vec![self.a, self.b]
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        ctx.stamp_branch_kcl(0, self.a, self.b);
        ctx.stamp_branch_voltage(0, self.a, 1.0);
        ctx.stamp_branch_voltage(0, self.b, -1.0);
        let v = self.waveform.value(ctx.time());
        ctx.stamp_branch_rhs(0, v);
    }
}

/// An independent current source driven by a [`Waveform`]; positive current
/// flows out of node `a`, through the source, into node `b`.
pub struct CurrentSource<W> {
    a: Node,
    b: Node,
    waveform: W,
}

impl<W: Waveform> CurrentSource<W> {
    /// Creates a current source pushing current from `a` to `b`.
    pub fn new(a: Node, b: Node, waveform: W) -> Self {
        Self { a, b, waveform }
    }
}

impl<W: Waveform> Element for CurrentSource<W> {
    fn nodes(&self) -> Vec<Node> {
        vec![self.a, self.b]
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let i = self.waveform.value(ctx.time());
        // Current i leaves `a` (a negative injection) and enters `b`.
        ctx.stamp_injection(self.a, -i);
        ctx.stamp_injection(self.b, i);
    }
}

/// A wound magnetic core: `N` turns on a core of cross-section `area` and
/// magnetic path length `path_length`, whose material behaviour is supplied
/// by a [`MagneticCoreModel`].
///
/// The element keeps one branch-current unknown.  Its branch equation links
/// the terminal voltage to the rate of change of core flux:
/// `v_a − v_b = N·A·(B(H) − B_prev)/dt`, with `H = N·i / l`.
pub struct NonlinearInductor<M> {
    a: Node,
    b: Node,
    turns: f64,
    area: f64,
    path_length: f64,
    core: M,
    b_prev: f64,
}

impl<M: MagneticCoreModel> NonlinearInductor<M> {
    /// Creates a wound core element.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SolverError::InvalidCircuit`] when turns, area or
    /// path length are not finite and positive.
    pub fn new(
        a: Node,
        b: Node,
        turns: f64,
        area: f64,
        path_length: f64,
        core: M,
    ) -> Result<Self, crate::SolverError> {
        for (name, v) in [
            ("turns", turns),
            ("area", area),
            ("path_length", path_length),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(crate::SolverError::InvalidCircuit {
                    reason: format!("{name} must be finite and positive, got {v}"),
                });
            }
        }
        let b_prev = core.flux_density();
        Ok(Self {
            a,
            b,
            turns,
            area,
            path_length,
            core,
            b_prev,
        })
    }

    /// Access to the underlying core model (e.g. to read its BH history
    /// after a transient run).
    pub fn core(&self) -> &M {
        &self.core
    }

    /// Field strength corresponding to a winding current.
    pub fn field_for_current(&self, current: f64) -> f64 {
        self.turns * current / self.path_length
    }
}

impl<M: MagneticCoreModel> Element for NonlinearInductor<M> {
    fn nodes(&self) -> Vec<Node> {
        vec![self.a, self.b]
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let i_guess = ctx.branch_current(0);
        let h_guess = self.field_for_current(i_guess);
        let (b_flux, db_dh) = self.core.evaluate(h_guess);
        let na_over_dt = self.turns * self.area / ctx.dt();
        // dV/di of the flux term.
        let r_eq = na_over_dt * db_dh * self.turns / self.path_length;

        // Branch equation, linearised about i_guess:
        //   v_a − v_b − r_eq·i = N·A/dt·(B(h_guess) − B_prev) − r_eq·i_guess
        ctx.stamp_branch_kcl(0, self.a, self.b);
        ctx.stamp_branch_voltage(0, self.a, 1.0);
        ctx.stamp_branch_voltage(0, self.b, -1.0);
        ctx.stamp_branch_current(0, -r_eq);
        ctx.stamp_branch_rhs(0, na_over_dt * (b_flux - self.b_prev) - r_eq * i_guess);
    }

    fn commit(&mut self, ctx: &CommitContext<'_>) {
        let i = ctx.branch_current(0);
        let h = self.field_for_current(i);
        self.core.commit(h);
        self.b_prev = self.core.flux_density();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::core_model::LinearCore;

    #[test]
    fn element_constructors_validate() {
        assert!(Resistor::new(Node(1), Node::GROUND, -1.0).is_err());
        assert!(Resistor::new(Node(1), Node::GROUND, 100.0).is_ok());
        assert!(Capacitor::new(Node(1), Node::GROUND, 0.0).is_err());
        assert!(Inductor::new(Node(1), Node::GROUND, f64::NAN).is_err());
        assert!(NonlinearInductor::new(
            Node(1),
            Node::GROUND,
            0.0,
            1e-4,
            0.1,
            LinearCore::new(1000.0)
        )
        .is_err());
    }

    #[test]
    fn branch_counts() {
        let r = Resistor::new(Node(1), Node::GROUND, 1.0).unwrap();
        let l = Inductor::new(Node(1), Node::GROUND, 1.0).unwrap();
        let n =
            NonlinearInductor::new(Node(1), Node::GROUND, 10.0, 1e-4, 0.1, LinearCore::new(1.0))
                .unwrap();
        assert_eq!(r.branch_count(), 0);
        assert_eq!(l.branch_count(), 1);
        assert_eq!(n.branch_count(), 1);
        assert_eq!(r.nodes(), vec![Node(1), Node::GROUND]);
    }

    #[test]
    fn nonlinear_inductor_field_conversion() {
        let n = NonlinearInductor::new(
            Node(1),
            Node::GROUND,
            100.0,
            1e-4,
            0.1,
            LinearCore::new(1.0),
        )
        .unwrap();
        assert!((n.field_for_current(2.0) - 2000.0).abs() < 1e-9);
        assert_eq!(n.core().mu_r(), 1.0);
    }

    #[test]
    fn resistor_stamp_produces_symmetric_conductance() {
        let r = Resistor::new(Node(1), Node(2), 2.0).unwrap();
        let mut matrix = Matrix::zeros(2, 2);
        let mut rhs = vec![0.0; 2];
        let x = vec![0.0; 2];
        let mut ctx = StampContext {
            matrix: &mut matrix,
            rhs: &mut rhs,
            x_guess: &x,
            x_prev: &x,
            node_count: 3,
            branch_offset: 0,
            time: 0.0,
            dt: 1e-6,
        };
        r.stamp(&mut ctx);
        assert!((matrix[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((matrix[(1, 1)] - 0.5).abs() < 1e-12);
        assert!((matrix[(0, 1)] + 0.5).abs() < 1e-12);
        assert!((matrix[(1, 0)] + 0.5).abs() < 1e-12);
    }
}
