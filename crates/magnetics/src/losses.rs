//! Core-loss estimation from BH traces.
//!
//! The hysteresis loop area gives the energy dissipated per cycle and unit
//! volume; combined with a [`crate::geometry::CoreGeometry`] and an
//! excitation frequency it yields the hysteresis loss in watts.  The
//! classical eddy-current term for thin laminations and a Steinmetz-style
//! power-law fit are provided as well, so the reproduction can report the
//! loss breakdown a magnetics engineer would expect from a core model.

use crate::bh::BhCurve;
use crate::error::MagneticsError;
use crate::geometry::CoreGeometry;
use crate::loop_analysis::loop_area;

/// Loss breakdown of a core under periodic excitation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreLoss {
    /// Hysteresis loss in watts.
    pub hysteresis_w: f64,
    /// Classical eddy-current loss in watts.
    pub eddy_w: f64,
    /// Total of the two contributions in watts.
    pub total_w: f64,
    /// Energy lost to hysteresis per cycle, in joules.
    pub energy_per_cycle_j: f64,
}

/// Parameters of the classical eddy-current loss model for laminated cores:
/// `P_e = (π²/6) · σ · d² · f² · B_pk² · V`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaminationSpec {
    /// Electrical conductivity of the lamination material (S/m).
    pub conductivity_s_per_m: f64,
    /// Lamination thickness (m).
    pub thickness_m: f64,
}

impl LaminationSpec {
    /// A typical 0.35 mm silicon-steel lamination.
    pub fn silicon_steel_0p35mm() -> Self {
        Self {
            conductivity_s_per_m: 2.0e6,
            thickness_m: 0.35e-3,
        }
    }
}

/// Computes the loss breakdown of one excitation cycle.
///
/// `curve` must contain exactly one full cycle of the BH trajectory (its
/// enclosed area is taken as the per-cycle hysteresis energy density).
///
/// # Errors
///
/// Returns [`MagneticsError::InvalidParameter`] when the frequency is not
/// finite and positive, or [`MagneticsError::InsufficientSamples`] when the
/// curve holds fewer than 8 samples.
pub fn core_loss(
    curve: &BhCurve,
    geometry: &CoreGeometry,
    frequency_hz: f64,
    lamination: Option<LaminationSpec>,
) -> Result<CoreLoss, MagneticsError> {
    if !frequency_hz.is_finite() || frequency_hz <= 0.0 {
        return Err(MagneticsError::InvalidParameter {
            name: "frequency_hz",
            value: frequency_hz,
            requirement: "finite and > 0",
        });
    }
    if curve.len() < 8 {
        return Err(MagneticsError::InsufficientSamples {
            required: 8,
            available: curve.len(),
        });
    }
    let volume = geometry.volume_m3();
    let energy_density = loop_area(curve); // J/m^3 per cycle
    let energy_per_cycle = energy_density * volume;
    let hysteresis_w = energy_per_cycle * frequency_hz;

    let eddy_w = match lamination {
        Some(spec) => {
            let b_pk = curve.peak_flux_density()?.as_tesla();
            (std::f64::consts::PI.powi(2) / 6.0)
                * spec.conductivity_s_per_m
                * spec.thickness_m.powi(2)
                * frequency_hz.powi(2)
                * b_pk.powi(2)
                * volume
        }
        None => 0.0,
    };

    Ok(CoreLoss {
        hysteresis_w,
        eddy_w,
        total_w: hysteresis_w + eddy_w,
        energy_per_cycle_j: energy_per_cycle,
    })
}

/// Rejects points whose components are not all finite and strictly
/// positive (the log-space fits need every coordinate's logarithm).
fn check_points_positive(points: &[(f64, f64, f64)]) -> Result<(), MagneticsError> {
    for &(f, b, p) in points {
        for value in [f, b, p] {
            if !(value.is_finite() && value > 0.0) {
                return Err(MagneticsError::InvalidParameter {
                    name: "points",
                    value,
                    requirement: "finite and > 0",
                });
            }
        }
    }
    Ok(())
}

/// Fits a Steinmetz power law `P = k_h · f · B_pk^β` (hysteresis-only form,
/// the `α = 1` special case of [`fit_steinmetz_full`]) to a set of
/// `(frequency, peak flux density, measured loss)` points, returning
/// `(k_h, β)`.
///
/// The fit is a linear least-squares in log space; at least two points with
/// distinct peak flux densities are required.
///
/// # Errors
///
/// Returns [`MagneticsError::InsufficientSamples`] for fewer than two
/// points, and [`MagneticsError::InvalidParameter`] when any point is not
/// finite and strictly positive or the peak flux densities are degenerate.
pub fn fit_steinmetz(points: &[(f64, f64, f64)]) -> Result<(f64, f64), MagneticsError> {
    if points.len() < 2 {
        return Err(MagneticsError::InsufficientSamples {
            required: 2,
            available: points.len(),
        });
    }
    check_points_positive(points)?;
    // log(P/f) = log(k_h) + beta * log(B)
    let xs: Vec<f64> = points.iter().map(|&(_, b, _)| b.ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(f, _, p)| (p / f).ln()).collect();
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    if sxx < 1e-12 {
        return Err(MagneticsError::InvalidParameter {
            name: "points",
            value: sxx,
            requirement: "at least two distinct peak flux densities",
        });
    }
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let beta = sxy / sxx;
    let k_h = (mean_y - beta * mean_x).exp();
    Ok((k_h, beta))
}

/// Fits the full two-exponent Steinmetz law `P = k · f^α · B_pk^β` to a
/// set of `(frequency, peak flux density, measured loss)` points,
/// returning `(k, α, β)`.
///
/// This is a two-regressor linear least-squares in log space
/// (`ln P = ln k + α·ln f + β·ln B`), solved through its 2×2 normal
/// equations on the centred regressors.  Recovering both exponents needs
/// points that vary frequency and flux density *independently* — a grid
/// with at least two frequencies and two peak flux densities that are not
/// perfectly collinear in log space.  For loss data known to scale
/// linearly with frequency, prefer [`fit_steinmetz`], the documented
/// `α = 1` special case.
///
/// # Errors
///
/// Returns [`MagneticsError::InsufficientSamples`] for fewer than three
/// points, and [`MagneticsError::InvalidParameter`] when any point is not
/// finite and strictly positive or the regressors are (near-)collinear.
pub fn fit_steinmetz_full(points: &[(f64, f64, f64)]) -> Result<(f64, f64, f64), MagneticsError> {
    if points.len() < 3 {
        return Err(MagneticsError::InsufficientSamples {
            required: 3,
            available: points.len(),
        });
    }
    check_points_positive(points)?;
    let n = points.len() as f64;
    let xf: Vec<f64> = points.iter().map(|&(f, _, _)| f.ln()).collect();
    let xb: Vec<f64> = points.iter().map(|&(_, b, _)| b.ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, _, p)| p.ln()).collect();
    let mean_f = xf.iter().sum::<f64>() / n;
    let mean_b = xb.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sff = 0.0;
    let mut sbb = 0.0;
    let mut sfb = 0.0;
    let mut sfy = 0.0;
    let mut sby = 0.0;
    for i in 0..points.len() {
        let df = xf[i] - mean_f;
        let db = xb[i] - mean_b;
        let dy = ys[i] - mean_y;
        sff += df * df;
        sbb += db * db;
        sfb += df * db;
        sfy += df * dy;
        sby += db * dy;
    }
    // The normal equations [sff sfb; sfb sbb]·[α; β] = [sfy; sby] are
    // singular exactly when the centred regressors are collinear (all one
    // frequency, all one flux density, or f and B locked to a power law
    // of each other).
    let det = sff * sbb - sfb * sfb;
    if det <= 1e-12 * (1.0 + sff * sbb) {
        return Err(MagneticsError::InvalidParameter {
            name: "points",
            value: det,
            requirement: "frequencies and peak flux densities varying independently",
        });
    }
    let alpha = (sfy * sbb - sby * sfb) / det;
    let beta = (sby * sff - sfy * sfb) / det;
    let k = (mean_y - alpha * mean_f - beta * mean_b).exp();
    Ok((k, alpha, beta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bh::BhCurve;

    fn rectangular_loop(b_s: f64, h_c: f64, n: usize) -> BhCurve {
        // An idealised rectangular loop of area ~ 4 * Hc * Bs.
        let mut curve = BhCurve::new();
        for i in 0..=n {
            let h = -3.0 * h_c + 6.0 * h_c * i as f64 / n as f64;
            let b = if h > -h_c { b_s } else { -b_s };
            curve.push_raw(h, b, 0.0);
        }
        for i in 0..=n {
            let h = 3.0 * h_c - 6.0 * h_c * i as f64 / n as f64;
            let b = if h < h_c { -b_s } else { b_s };
            curve.push_raw(h, b, 0.0);
        }
        curve
    }

    #[test]
    fn hysteresis_loss_scales_with_frequency_and_volume() {
        let curve = rectangular_loop(1.5, 1000.0, 400);
        let geom = CoreGeometry::new(1e-4, 0.1).unwrap();
        let at_50 = core_loss(&curve, &geom, 50.0, None).unwrap();
        let at_100 = core_loss(&curve, &geom, 100.0, None).unwrap();
        assert!(at_50.hysteresis_w > 0.0);
        assert!((at_100.hysteresis_w / at_50.hysteresis_w - 2.0).abs() < 1e-9);
        assert_eq!(at_50.eddy_w, 0.0);
        assert!((at_50.total_w - at_50.hysteresis_w).abs() < 1e-12);
        // Loop area of the ideal rectangle is 4*Hc*Bs = 6000 J/m^3.
        let expected_energy = 6000.0 * geom.volume_m3();
        assert!((at_50.energy_per_cycle_j - expected_energy).abs() / expected_energy < 0.05);
    }

    #[test]
    fn eddy_loss_scales_with_frequency_squared() {
        let curve = rectangular_loop(1.5, 1000.0, 400);
        let geom = CoreGeometry::new(1e-4, 0.1).unwrap();
        let spec = LaminationSpec::silicon_steel_0p35mm();
        let at_50 = core_loss(&curve, &geom, 50.0, Some(spec)).unwrap();
        let at_100 = core_loss(&curve, &geom, 100.0, Some(spec)).unwrap();
        assert!(at_50.eddy_w > 0.0);
        assert!((at_100.eddy_w / at_50.eddy_w - 4.0).abs() < 1e-9);
        assert!(at_100.total_w > at_100.hysteresis_w);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let curve = rectangular_loop(1.5, 1000.0, 400);
        let geom = CoreGeometry::demo();
        assert!(core_loss(&curve, &geom, 0.0, None).is_err());
        let short = BhCurve::new();
        assert!(core_loss(&short, &geom, 50.0, None).is_err());
    }

    #[test]
    fn steinmetz_fit_recovers_known_exponent() {
        // Synthesise P = 2.5 * f * B^1.8
        let points: Vec<(f64, f64, f64)> = [(50.0, 0.5), (50.0, 1.0), (100.0, 1.5), (200.0, 0.8)]
            .iter()
            .map(|&(f, b): &(f64, f64)| (f, b, 2.5 * f * b.powf(1.8)))
            .collect();
        let (k_h, beta) = fit_steinmetz(&points).unwrap();
        assert!((k_h - 2.5).abs() < 1e-6);
        assert!((beta - 1.8).abs() < 1e-6);
    }

    #[test]
    fn steinmetz_fit_rejects_degenerate_input() {
        assert!(fit_steinmetz(&[(50.0, 1.0, 10.0)]).is_err());
        assert!(fit_steinmetz(&[(50.0, 1.0, 10.0), (60.0, 1.0, 12.0)]).is_err());
        assert!(fit_steinmetz(&[(50.0, -1.0, 10.0), (60.0, 1.0, 12.0)]).is_err());
    }

    #[test]
    fn steinmetz_fit_reports_non_positive_points_as_invalid_parameters() {
        // Regression: a negative loss is a range violation, not a NaN;
        // it must be reported as an InvalidParameter naming the actual
        // requirement rather than as NonFiniteInput.
        let err = fit_steinmetz(&[(50.0, 1.0, -10.0), (60.0, 2.0, 12.0)]).unwrap_err();
        assert_eq!(
            err,
            MagneticsError::InvalidParameter {
                name: "points",
                value: -10.0,
                requirement: "finite and > 0",
            }
        );
        let err = fit_steinmetz_full(&[(50.0, 1.0, 10.0), (60.0, -2.0, 12.0), (100.0, 1.5, 30.0)])
            .unwrap_err();
        assert_eq!(
            err,
            MagneticsError::InvalidParameter {
                name: "points",
                value: -2.0,
                requirement: "finite and > 0",
            }
        );
        // NaN still lands on the same variant with the same requirement.
        assert!(matches!(
            fit_steinmetz(&[(f64::NAN, 1.0, 10.0), (60.0, 2.0, 12.0)]).unwrap_err(),
            MagneticsError::InvalidParameter {
                name: "points",
                requirement: "finite and > 0",
                ..
            }
        ));
    }

    #[test]
    fn full_steinmetz_fit_recovers_both_exponents() {
        // Synthesise P = 0.7 * f^1.3 * B^2.1 over an independent f x B grid.
        let mut points = Vec::new();
        for &f in &[50.0_f64, 100.0, 200.0, 400.0] {
            for &b in &[0.4_f64, 0.8, 1.2, 1.6] {
                points.push((f, b, 0.7 * f.powf(1.3) * b.powf(2.1)));
            }
        }
        let (k, alpha, beta) = fit_steinmetz_full(&points).unwrap();
        assert!((k - 0.7).abs() < 1e-9, "k = {k}");
        assert!((alpha - 1.3).abs() < 1e-9, "alpha = {alpha}");
        assert!((beta - 2.1).abs() < 1e-9, "beta = {beta}");
    }

    #[test]
    fn full_steinmetz_fit_agrees_with_the_hysteresis_special_case() {
        // Data that really is P = k_h * f * B^beta: the full fit must find
        // alpha ~= 1 and the same k/beta the two-parameter form reports.
        let points: Vec<(f64, f64, f64)> = [(50.0, 0.5), (100.0, 1.0), (200.0, 1.5), (400.0, 0.8)]
            .iter()
            .map(|&(f, b): &(f64, f64)| (f, b, 2.5 * f * b.powf(1.8)))
            .collect();
        let (k_h, beta_h) = fit_steinmetz(&points).unwrap();
        let (k, alpha, beta) = fit_steinmetz_full(&points).unwrap();
        assert!((alpha - 1.0).abs() < 1e-9, "alpha = {alpha}");
        assert!((k - k_h).abs() < 1e-6);
        assert!((beta - beta_h).abs() < 1e-6);
    }

    #[test]
    fn full_steinmetz_fit_rejects_collinear_regressors() {
        // Fewer than three points.
        assert!(fit_steinmetz_full(&[(50.0, 1.0, 10.0), (100.0, 2.0, 40.0)]).is_err());
        // Single frequency: alpha is unidentifiable.
        assert!(
            fit_steinmetz_full(&[(50.0, 0.5, 5.0), (50.0, 1.0, 20.0), (50.0, 1.5, 45.0)]).is_err()
        );
        // Single flux density: beta is unidentifiable.
        assert!(
            fit_steinmetz_full(&[(50.0, 1.0, 5.0), (100.0, 1.0, 10.0), (200.0, 1.0, 20.0)])
                .is_err()
        );
        // B locked to a power of f: log-space collinear.
        assert!(fit_steinmetz_full(&[
            (50.0, 50.0, 5.0),
            (100.0, 100.0, 10.0),
            (200.0, 200.0, 20.0)
        ])
        .is_err());
    }
}
