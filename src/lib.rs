//! Workspace-level facade for the timeless Jiles–Atherton reproduction.
//!
//! This crate exists so that the repository root can host the runnable
//! `examples/` and cross-crate integration `tests/` required by the project
//! layout.  It re-exports the individual crates so examples can use a single
//! dependency.
//!
//! See the individual crates for the actual functionality:
//!
//! * [`ja_hysteresis`] — the paper's contribution (timeless discretisation).
//! * [`magnetics`] — magnetic domain types and loop analysis.
//! * [`waveform`] — excitation generators and traces.
//! * [`hdl_kernel`] — SystemC-like discrete-event kernel.
//! * [`analog_solver`] — MNA analogue solver substrate.
//! * [`hdl_models`] — the SystemC-style and AMS-style model implementations.
//!
//! The executable front door is the `ja` binary in `crates/cli` (`cargo run
//! --release -p ja-cli -- --help`): sweeps, scenario batches, fitting,
//! inverse solves, backend comparison and the CI bench-regression gate,
//! emitting the versioned JSON report format of [`ja_hysteresis::json`].

pub use analog_solver;
pub use hdl_kernel;
pub use hdl_models;
pub use ja_hysteresis;
pub use magnetics;
pub use waveform;
