//! Damped Newton–Raphson iteration for nonlinear algebraic systems.
//!
//! The transient engine calls this at every time point; its convergence (or
//! failure to converge) is exactly the phenomenon the paper's experiments on
//! turning-point stability measure.

use crate::error::SolverError;
use crate::linalg::{norm_inf, Matrix};

/// A nonlinear algebraic system `F(x) = 0` with an analytic Jacobian.
pub trait NonlinearSystem {
    /// Number of unknowns.
    fn dim(&self) -> usize;

    /// Evaluates the residual `F(x)` into `residual`.
    fn residual(&self, x: &[f64], residual: &mut [f64]);

    /// Evaluates the Jacobian `∂F/∂x` into `jacobian` (pre-sized
    /// `dim × dim`, zeroed by the caller).
    fn jacobian(&self, x: &[f64], jacobian: &mut Matrix);
}

/// Options controlling the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum number of iterations before reporting non-convergence.
    pub max_iterations: usize,
    /// Convergence threshold on the residual infinity norm.
    pub residual_tolerance: f64,
    /// Convergence threshold on the update infinity norm.
    pub step_tolerance: f64,
    /// Damping factor in `(0, 1]` applied to every update (1 = full Newton).
    pub damping: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            residual_tolerance: 1e-9,
            step_tolerance: 1e-12,
            damping: 1.0,
        }
    }
}

/// Outcome of a successful Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonSolution {
    /// The converged solution vector.
    pub x: Vec<f64>,
    /// Number of iterations used.
    pub iterations: usize,
    /// Residual infinity norm at the solution.
    pub residual_norm: f64,
}

/// Solves `F(x) = 0` starting from `x0`.
///
/// # Errors
///
/// Returns [`SolverError::NonConvergence`] when the iteration limit is
/// reached, [`SolverError::SingularMatrix`] when the Jacobian cannot be
/// factorised, and [`SolverError::BadStateLength`] when `x0` has the wrong
/// length.
pub fn solve<S: NonlinearSystem>(
    system: &S,
    x0: &[f64],
    options: &NewtonOptions,
) -> Result<NewtonSolution, SolverError> {
    let n = system.dim();
    if x0.len() != n {
        return Err(SolverError::BadStateLength {
            expected: n,
            actual: x0.len(),
        });
    }
    if !(options.damping > 0.0 && options.damping <= 1.0) {
        return Err(SolverError::InvalidStep {
            name: "damping",
            value: options.damping,
        });
    }

    let mut x = x0.to_vec();
    let mut residual = vec![0.0; n];
    let mut jacobian = Matrix::zeros(n, n);

    system.residual(&x, &mut residual);
    let mut res_norm = norm_inf(&residual);

    for iteration in 0..options.max_iterations {
        if res_norm <= options.residual_tolerance {
            return Ok(NewtonSolution {
                x,
                iterations: iteration,
                residual_norm: res_norm,
            });
        }
        jacobian.clear();
        system.jacobian(&x, &mut jacobian);
        // Newton update: J·dx = -F
        let neg_res: Vec<f64> = residual.iter().map(|r| -r).collect();
        let dx = jacobian.solve(&neg_res)?;
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += options.damping * di;
        }
        system.residual(&x, &mut residual);
        res_norm = norm_inf(&residual);
        if norm_inf(&dx) * options.damping <= options.step_tolerance
            && res_norm <= options.residual_tolerance.max(1e-6)
        {
            return Ok(NewtonSolution {
                x,
                iterations: iteration + 1,
                residual_norm: res_norm,
            });
        }
    }

    Err(SolverError::NonConvergence {
        iterations: options.max_iterations,
        residual: res_norm,
    })
}

/// A [`NonlinearSystem`] whose Jacobian is approximated by forward finite
/// differences of the residual — used by the implicit ODE integrators, whose
/// systems do not expose analytic Jacobians.
pub struct FiniteDifferenceJacobian<F> {
    dim: usize,
    residual_fn: F,
    perturbation: f64,
}

impl<F> FiniteDifferenceJacobian<F>
where
    F: Fn(&[f64], &mut [f64]),
{
    /// Wraps a residual closure, approximating the Jacobian with forward
    /// differences of relative size `perturbation` (1e-7 is a good default).
    pub fn new(dim: usize, residual_fn: F, perturbation: f64) -> Self {
        Self {
            dim,
            residual_fn,
            perturbation,
        }
    }
}

impl<F> NonlinearSystem for FiniteDifferenceJacobian<F>
where
    F: Fn(&[f64], &mut [f64]),
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn residual(&self, x: &[f64], residual: &mut [f64]) {
        (self.residual_fn)(x, residual);
    }

    fn jacobian(&self, x: &[f64], jacobian: &mut Matrix) {
        let n = self.dim;
        let mut base = vec![0.0; n];
        (self.residual_fn)(x, &mut base);
        let mut perturbed = vec![0.0; n];
        let mut x_pert = x.to_vec();
        for j in 0..n {
            let h = self.perturbation * (1.0 + x[j].abs());
            x_pert[j] = x[j] + h;
            (self.residual_fn)(&x_pert, &mut perturbed);
            x_pert[j] = x[j];
            for i in 0..n {
                jacobian[(i, j)] = (perturbed[i] - base[i]) / h;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x² − 4 = 0, root at ±2.
    struct Quadratic;

    impl NonlinearSystem for Quadratic {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], r: &mut [f64]) {
            r[0] = x[0] * x[0] - 4.0;
        }
        fn jacobian(&self, x: &[f64], j: &mut Matrix) {
            j[(0, 0)] = 2.0 * x[0];
        }
    }

    /// Coupled system: x² + y² = 5, x·y = 2  (solution (1,2) or (2,1)).
    struct Coupled;

    impl NonlinearSystem for Coupled {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], r: &mut [f64]) {
            r[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
            r[1] = x[0] * x[1] - 2.0;
        }
        fn jacobian(&self, x: &[f64], j: &mut Matrix) {
            j[(0, 0)] = 2.0 * x[0];
            j[(0, 1)] = 2.0 * x[1];
            j[(1, 0)] = x[1];
            j[(1, 1)] = x[0];
        }
    }

    #[test]
    fn scalar_root() {
        let sol = solve(&Quadratic, &[1.0], &NewtonOptions::default()).unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!(sol.iterations > 0);
        assert!(sol.residual_norm <= 1e-9);
    }

    #[test]
    fn negative_start_finds_negative_root() {
        let sol = solve(&Quadratic, &[-1.0], &NewtonOptions::default()).unwrap();
        assert!((sol.x[0] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn coupled_system_converges() {
        let sol = solve(&Coupled, &[0.5, 2.5], &NewtonOptions::default()).unwrap();
        let (x, y) = (sol.x[0], sol.x[1]);
        assert!((x * x + y * y - 5.0).abs() < 1e-8);
        assert!((x * y - 2.0).abs() < 1e-8);
    }

    #[test]
    fn iteration_limit_reported() {
        let options = NewtonOptions {
            max_iterations: 2,
            residual_tolerance: 1e-15,
            ..NewtonOptions::default()
        };
        // Start far away so 2 iterations cannot converge.
        let err = solve(&Quadratic, &[1000.0], &options).unwrap_err();
        assert!(matches!(
            err,
            SolverError::NonConvergence { iterations: 2, .. }
        ));
    }

    #[test]
    fn zero_jacobian_reports_singular() {
        struct Flat;
        impl NonlinearSystem for Flat {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, _x: &[f64], r: &mut [f64]) {
                r[0] = 1.0;
            }
            fn jacobian(&self, _x: &[f64], _j: &mut Matrix) {}
        }
        assert!(matches!(
            solve(&Flat, &[0.0], &NewtonOptions::default()),
            Err(SolverError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn wrong_initial_length_rejected() {
        assert!(matches!(
            solve(&Quadratic, &[1.0, 2.0], &NewtonOptions::default()),
            Err(SolverError::BadStateLength { .. })
        ));
    }

    #[test]
    fn invalid_damping_rejected() {
        let options = NewtonOptions {
            damping: 0.0,
            ..NewtonOptions::default()
        };
        assert!(matches!(
            solve(&Quadratic, &[1.0], &options),
            Err(SolverError::InvalidStep {
                name: "damping",
                ..
            })
        ));
    }

    #[test]
    fn damped_newton_still_converges() {
        let options = NewtonOptions {
            damping: 0.5,
            max_iterations: 200,
            ..NewtonOptions::default()
        };
        let sol = solve(&Quadratic, &[10.0], &options).unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn finite_difference_jacobian_matches_analytic() {
        let fd = FiniteDifferenceJacobian::new(
            2,
            |x: &[f64], r: &mut [f64]| {
                r[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
                r[1] = x[0] * x[1] - 2.0;
            },
            1e-7,
        );
        let sol = solve(&fd, &[0.5, 2.5], &NewtonOptions::default()).unwrap();
        assert!((sol.x[0] * sol.x[1] - 2.0).abs() < 1e-6);

        // Compare the approximated Jacobian against the analytic one.
        let mut j_fd = Matrix::zeros(2, 2);
        fd.jacobian(&[1.0, 2.0], &mut j_fd);
        let mut j_an = Matrix::zeros(2, 2);
        Coupled.jacobian(&[1.0, 2.0], &mut j_an);
        for i in 0..2 {
            for k in 0..2 {
                assert!((j_fd[(i, k)] - j_an[(i, k)]).abs() < 1e-5);
            }
        }
    }
}
