//! Bipolar pulse-width-modulated (PWM) waveform.
//!
//! The drive a switching converter's H-bridge applies to a magnetic
//! component: `+A` for the first `duty` fraction of every switching
//! period, `−A` for the remainder.  Driving the circuit scenarios with
//! this waveform exercises the hysteresis models under the paper's
//! power-electronics application conditions rather than a lab sine.

use crate::error::WaveformError;
use crate::generator::Waveform;

/// Bipolar PWM: `x(t) = +A` while `frac(t·f) < duty`, else `−A`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pwm {
    amplitude: f64,
    frequency: f64,
    duty: f64,
}

impl Pwm {
    /// Creates a bipolar PWM waveform from amplitude, switching frequency
    /// (Hz) and duty cycle (fraction of the period spent at `+A`).
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] when the amplitude is
    /// not finite and non-negative, the frequency is not finite and
    /// positive, or the duty cycle is outside the open interval `(0, 1)`
    /// (a duty of exactly 0 or 1 is a DC rail, not a switching waveform).
    pub fn new(amplitude: f64, frequency: f64, duty: f64) -> Result<Self, WaveformError> {
        if !amplitude.is_finite() || amplitude < 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "amplitude",
                value: amplitude,
                requirement: "finite and >= 0",
            });
        }
        if !frequency.is_finite() || frequency <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "frequency",
                value: frequency,
                requirement: "finite and > 0",
            });
        }
        if !duty.is_finite() || duty <= 0.0 || duty >= 1.0 {
            return Err(WaveformError::InvalidParameter {
                name: "duty",
                value: duty,
                requirement: "in (0, 1)",
            });
        }
        Ok(Self {
            amplitude,
            frequency,
            duty,
        })
    }

    /// Peak amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Switching frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Duty cycle (fraction of the period at `+A`).
    pub fn duty(&self) -> f64 {
        self.duty
    }
}

impl Waveform for Pwm {
    fn value(&self, t: f64) -> f64 {
        let phase = (t * self.frequency).rem_euclid(1.0);
        if phase < self.duty {
            self.amplitude
        } else {
            -self.amplitude
        }
    }

    fn period(&self) -> Option<f64> {
        Some(1.0 / self.frequency)
    }

    /// Zero almost everywhere; the switching edges are ideal
    /// discontinuities the transient solver resolves by stepping, not by
    /// slope information.
    fn derivative(&self, _t: f64) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Pwm::new(-1.0, 50.0, 0.5).is_err());
        assert!(Pwm::new(1.0, 0.0, 0.5).is_err());
        assert!(Pwm::new(1.0, 50.0, 0.0).is_err());
        assert!(Pwm::new(1.0, 50.0, 1.0).is_err());
        assert!(Pwm::new(1.0, 50.0, f64::NAN).is_err());
        assert!(Pwm::new(1.0, 50.0, 0.5).is_ok());
    }

    #[test]
    fn switches_at_the_duty_fraction() {
        let w = Pwm::new(2.0, 100.0, 0.25).unwrap(); // 10 ms period, 2.5 ms high
        assert_eq!(w.value(0.0), 2.0);
        assert_eq!(w.value(0.002), 2.0);
        assert_eq!(w.value(0.003), -2.0);
        assert_eq!(w.value(0.009), -2.0);
        // Periodicity.
        assert_eq!(w.value(0.012), 2.0);
        assert_eq!(w.value(0.013), -2.0);
        assert_eq!(w.period(), Some(0.01));
        assert_eq!(w.derivative(0.004), 0.0);
    }

    #[test]
    fn mean_value_follows_the_duty_cycle() {
        let w = Pwm::new(1.0, 50.0, 0.7).unwrap();
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| w.value(i as f64 * 0.02 / n as f64))
            .sum::<f64>()
            / n as f64;
        // Bipolar PWM mean = A * (2*duty - 1).
        assert!((mean - 0.4).abs() < 1e-2, "mean = {mean}");
    }

    #[test]
    fn accessors_round_trip() {
        let w = Pwm::new(30.0, 400.0, 0.35).unwrap();
        assert_eq!(w.amplitude(), 30.0);
        assert_eq!(w.frequency(), 400.0);
        assert_eq!(w.duty(), 0.35);
    }
}
