//! Magnetisation state variables.
//!
//! Internally the model works with *normalised* magnetisations
//! (`m = M / M_sat`), exactly like the paper's SystemC listing where `man`,
//! `mrev`, `mirr` and `mtotal` are all normalised.  The absolute values are
//! recovered through the parameter set when needed.

use magnetics::constants::MU0;
use magnetics::material::JaParameters;
use magnetics::units::{FieldStrength, FluxDensity, Magnetisation};

/// The state of one Jiles–Atherton core.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JaState {
    /// Normalised irreversible magnetisation `M_irr / M_sat`.
    pub m_irr: f64,
    /// Normalised reversible magnetisation `M_rev / M_sat`.
    pub m_rev: f64,
    /// Normalised total magnetisation `M / M_sat`.
    pub m_total: f64,
    /// Normalised anhysteretic magnetisation at the last evaluation.
    pub m_an: f64,
    /// Applied field at the last evaluation (A/m).
    pub h: f64,
    /// Applied field at the last *slope update* (the paper's `lasth`, A/m).
    pub h_last_update: f64,
    /// Number of slope-integration updates performed so far.
    pub updates: u64,
}

impl JaState {
    /// A demagnetised core at zero field.
    pub fn demagnetised() -> Self {
        Self::default()
    }

    /// A core pre-magnetised to a normalised total magnetisation
    /// (`M/M_sat`); the irreversible part absorbs all of it.
    pub fn premagnetised(m_normalised: f64) -> Self {
        Self {
            m_irr: m_normalised,
            m_rev: 0.0,
            m_total: m_normalised,
            ..Self::default()
        }
    }

    /// Absolute total magnetisation.
    pub fn magnetisation(&self, params: &JaParameters) -> Magnetisation {
        Magnetisation::new(self.m_total * params.m_sat.value())
    }

    /// Absolute irreversible magnetisation.
    pub fn irreversible_magnetisation(&self, params: &JaParameters) -> Magnetisation {
        Magnetisation::new(self.m_irr * params.m_sat.value())
    }

    /// Flux density `B = µ0·(H + M)` at the current state.
    pub fn flux_density(&self, params: &JaParameters) -> FluxDensity {
        FluxDensity::new(MU0 * (self.h + self.m_total * params.m_sat.value()))
    }

    /// The applied field at the current state.
    pub fn field(&self) -> FieldStrength {
        FieldStrength::new(self.h)
    }

    /// `true` when every state variable is finite.
    pub fn is_finite(&self) -> bool {
        self.m_irr.is_finite()
            && self.m_rev.is_finite()
            && self.m_total.is_finite()
            && self.m_an.is_finite()
            && self.h.is_finite()
            && self.h_last_update.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demagnetised_state_is_zero() {
        let s = JaState::demagnetised();
        assert_eq!(s.m_total, 0.0);
        assert_eq!(s.m_irr, 0.0);
        assert_eq!(s.updates, 0);
        assert!(s.is_finite());
    }

    #[test]
    fn premagnetised_state_carries_magnetisation() {
        let s = JaState::premagnetised(0.5);
        let p = JaParameters::date2006();
        assert_eq!(s.m_total, 0.5);
        assert!((s.magnetisation(&p).value() - 0.8e6).abs() < 1e-6);
        assert!((s.irreversible_magnetisation(&p).value() - 0.8e6).abs() < 1e-6);
    }

    #[test]
    fn flux_density_combines_field_and_magnetisation() {
        let p = JaParameters::date2006();
        let mut s = JaState::premagnetised(1.0);
        s.h = 10_000.0;
        let b = s.flux_density(&p);
        let expected = MU0 * (10_000.0 + 1.6e6);
        assert!((b.as_tesla() - expected).abs() < 1e-12);
        assert_eq!(s.field().value(), 10_000.0);
    }

    #[test]
    fn non_finite_state_detected() {
        let mut s = JaState::demagnetised();
        s.m_irr = f64::NAN;
        assert!(!s.is_finite());
    }
}
