//! Experiment drivers: the functions behind every figure / claim
//! reproduction (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! Since the introduction of the [`crate::scenario`] engine these are thin
//! wrappers: each experiment declares its scenarios (material × excitation
//! × backend × config) and reads the numbers it reports out of the
//! [`ScenarioOutcome`]s.  Only the solver-in-the-loop baseline of
//! experiments E4/E5 still drives [`SolverIntegratedBaseline`] directly —
//! genuine time integration cannot stand behind the sample-driven
//! [`ja_hysteresis::backend::HysteresisBackend`] API.

use ja_hysteresis::config::{JaConfig, SlopeIntegration};
use ja_hysteresis::error::JaError;
use magnetics::bh::BhCurve;
use magnetics::loop_analysis::{self, LoopMetrics};
use magnetics::material::JaParameters;
use waveform::schedule::FieldSchedule;
use waveform::triangular::Triangular;
use waveform::WaveformError;

use crate::ams::{SolverIntegratedBaseline, SolverMethod};
use crate::scenario::{backend_agreement, BackendKind, Excitation, Scenario, ScenarioOutcome};

/// Peak field of the paper's Fig. 1 sweep (±10 kA/m).
pub const FIG1_H_PEAK: f64 = 10_000.0;

/// Minor-loop amplitudes used for the non-biased minor loops of Fig. 1.
pub const FIG1_MINOR_AMPLITUDES: [f64; 3] = [7_500.0, 5_000.0, 2_500.0];

/// Default field step (ΔH_max) used by the experiments, in A/m.
pub const DEFAULT_STEP: f64 = 10.0;

/// Builds the Fig. 1 excitation: a triangular major sweep to ±10 kA/m
/// followed by non-biased minor loops of decreasing amplitude.
///
/// # Errors
///
/// Returns [`WaveformError`] only if the constants above were edited into an
/// inconsistent state.
pub fn fig1_schedule(step: f64) -> Result<FieldSchedule, WaveformError> {
    FieldSchedule::nested_minor_loops(FIG1_H_PEAK, &FIG1_MINOR_AMPLITUDES, step)
}

/// Runs the Fig. 1 experiment (E1) on one backend and returns the full
/// outcome.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn fig1_outcome(backend: BackendKind, step: f64) -> Result<ScenarioOutcome, JaError> {
    Scenario::fig1(backend, step)?.run()
}

/// Runs the Fig. 1 experiment on the SystemC-style model and returns the BH
/// curve (experiment E1).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn fig1_systemc_curve(step: f64) -> Result<BhCurve, JaError> {
    Ok(fig1_outcome(BackendKind::SystemC, step)?.curve)
}

/// Runs the Fig. 1 experiment on the direct (library) timeless model.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn fig1_direct_curve(step: f64, config: JaConfig) -> Result<BhCurve, JaError> {
    let outcome = Scenario::new(
        "fig1/direct-timeless",
        JaParameters::date2006(),
        config,
        BackendKind::DirectTimeless,
        Excitation::fig1(step)?,
    )
    .run()?;
    Ok(outcome.curve)
}

/// Summary of the implementation-equivalence experiment (E6): the
/// event-driven SystemC port versus the equation-style AMS model on the
/// same stimulus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalenceReport {
    /// Maximum |ΔB| between the two implementations (T).
    pub max_abs_diff_b: f64,
    /// `max_abs_diff_b` relative to the peak flux density.
    pub relative_diff: f64,
    /// Slope-integration steps of the event-driven implementation (the
    /// `Integral` process executions).
    pub systemc_updates: u64,
    /// Slope-integration updates of the equation-style implementation.
    pub ams_updates: u64,
    /// Number of samples compared.
    pub samples: usize,
}

/// Runs both implementations over the same schedule through the backend
/// trait and compares them sample by sample (experiment E6).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn implementation_equivalence(step: f64) -> Result<EquivalenceReport, JaError> {
    let report = backend_agreement(
        JaParameters::date2006(),
        JaConfig::default(),
        &Excitation::fig1(step)?,
        &[BackendKind::SystemC, BackendKind::AmsTimeless],
    )?;
    let systemc = &report.outcomes[0];
    let ams = &report.outcomes[1];
    Ok(EquivalenceReport {
        max_abs_diff_b: report.max_abs_diff_b,
        relative_diff: report.relative_diff,
        systemc_updates: systemc.stats.updates,
        ams_updates: ams.stats.updates,
        samples: systemc.curve.len(),
    })
}

/// One row of the minor-loop robustness study (experiment E2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinorLoopCase {
    /// Bias (loop centre) in A/m.
    pub bias: f64,
    /// Amplitude in A/m.
    pub amplitude: f64,
    /// Loop-closure error |ΔB| between successive cycles (T).
    pub closure_error: f64,
    /// Enclosed area of the trace (J/m³).
    pub loop_area: f64,
    /// Number of negative-slope samples (must be 0).
    pub negative_slope_samples: usize,
}

/// Runs minor loops of several sizes and positions (experiment E2):
/// every combination of the given biases and amplitudes, five cycles each,
/// each case as one scenario on the direct backend.
///
/// # Errors
///
/// Propagates waveform or scenario errors.
pub fn minor_loop_study(
    biases: &[f64],
    amplitudes: &[f64],
    step: f64,
) -> Result<Vec<MinorLoopCase>, JaError> {
    let mut cases = Vec::with_capacity(biases.len() * amplitudes.len());
    for &bias in biases {
        for &amplitude in amplitudes {
            let outcome = Scenario::new(
                format!("minor-loop/bias{bias}/amp{amplitude}"),
                JaParameters::date2006(),
                JaConfig::default(),
                BackendKind::DirectTimeless,
                Excitation::biased_minor_loop(bias, amplitude, 5, step)?,
            )
            .run()?;
            let period = (4.0 * amplitude / step).round() as usize;
            let closure_error =
                loop_analysis::loop_closure_error(&outcome.curve, period).unwrap_or(f64::NAN);
            cases.push(MinorLoopCase {
                bias,
                amplitude,
                closure_error,
                loop_area: loop_analysis::loop_area(&outcome.curve),
                negative_slope_samples: outcome.curve.negative_slope_samples(),
            });
        }
    }
    Ok(cases)
}

/// Report of the slope-clamping experiment (E3): guarded versus raw slope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClampingReport {
    /// Negative-slope samples in the guarded curve (expected 0).
    pub guarded_negative_samples: usize,
    /// Negative-slope samples in the unguarded curve.
    pub unguarded_negative_samples: usize,
    /// Raw negative-slope evaluations encountered (and clamped) by the
    /// guarded model.
    pub clamped_events: u64,
    /// Peak flux density of the guarded curve (T).
    pub guarded_b_max: f64,
    /// Peak flux density of the unguarded curve (T), which may be distorted.
    pub unguarded_b_max: f64,
}

/// Runs the same sweep with and without the paper's numerical guards
/// (experiment E3) — two scenarios differing only in configuration.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn slope_clamping_study(step: f64) -> Result<ClampingReport, JaError> {
    let excitation = Excitation::fig1(step)?;
    let run = |name: &str, config: JaConfig| {
        Scenario::new(
            format!("clamping/{name}"),
            JaParameters::date2006(),
            config,
            BackendKind::DirectTimeless,
            excitation.clone(),
        )
        .run()
    };
    let guarded = run("guarded", JaConfig::default())?;
    let guarded_metrics = guarded.full_metrics()?;
    let raw = run("unguarded", JaConfig::default().without_guards())?;

    Ok(ClampingReport {
        guarded_negative_samples: guarded_metrics.negative_slope_samples,
        unguarded_negative_samples: raw.curve.negative_slope_samples(),
        clamped_events: guarded.stats.negative_slope_events,
        guarded_b_max: guarded_metrics.b_max.as_tesla(),
        unguarded_b_max: raw.curve.peak_flux_density()?.as_tesla(),
    })
}

/// Report of the turning-point stability experiment (E4) for one step size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurningPointReport {
    /// Time step used by the solver baseline (s) — the timeless model has no
    /// time step; it sees the same number of field samples.
    pub dt: f64,
    /// Peak flux density of the timeless model (T).
    pub timeless_b_max: f64,
    /// Peak flux density of the solver baseline (T).
    pub baseline_b_max: f64,
    /// Overshoot of the baseline beyond the timeless peak, relative.
    pub baseline_overshoot: f64,
    /// Relative loop-shape error of the baseline: |B_max(baseline) −
    /// B_max(timeless)| / B_max(timeless).  Grows with the time step because
    /// the time-based integration misses the slope discontinuity at the
    /// reversal, truncating the loop tips; the timeless model is immune.
    pub baseline_shape_error: f64,
    /// Newton iterations the baseline spent.
    pub baseline_newton_iterations: usize,
    /// Baseline steps that failed to converge.
    pub baseline_non_converged: usize,
    /// Negative-slope samples in the baseline output.
    pub baseline_negative_samples: usize,
    /// Negative-slope samples in the timeless output (expected 0).
    pub timeless_negative_samples: usize,
}

/// Compares the timeless model against the solver-integrated baseline for a
/// triangular excitation sampled with time step `dt` (experiment E4).  The
/// timeless side runs as a scenario over the sampled waveform; the baseline
/// genuinely integrates over time.
///
/// # Errors
///
/// Propagates model and solver errors (a baseline failure is itself a
/// result; callers that sweep `dt` may prefer to catch it and record it).
pub fn turning_point_comparison(
    dt: f64,
    method: SolverMethod,
) -> Result<TurningPointReport, JaError> {
    let waveform = Triangular::new(FIG1_H_PEAK, 1.0).expect("valid waveform");
    let t_end = 2.0;

    let timeless = Scenario::new(
        format!("turning-point/timeless/dt{dt}"),
        JaParameters::date2006(),
        JaConfig::default(),
        BackendKind::AmsTimeless,
        Excitation::sampled(&waveform, t_end, dt)?,
    )
    .run()?;

    let baseline = SolverIntegratedBaseline::new(JaParameters::date2006(), JaConfig::default())?;
    let baseline_result =
        baseline
            .run(&waveform, t_end, dt, method)
            .map_err(|err| JaError::Backend {
                backend: "solver-integrated-baseline",
                reason: err.to_string(),
            })?;

    let timeless_metrics = timeless.full_metrics()?;
    let timeless_b_max = timeless_metrics.b_max.as_tesla();
    let baseline_b_max = baseline_result.curve.peak_flux_density()?.as_tesla();
    Ok(TurningPointReport {
        dt,
        timeless_b_max,
        baseline_b_max,
        baseline_overshoot: (baseline_b_max - timeless_b_max).max(0.0) / timeless_b_max,
        baseline_shape_error: (baseline_b_max - timeless_b_max).abs() / timeless_b_max,
        baseline_newton_iterations: baseline_result.newton_iterations,
        baseline_non_converged: baseline_result.non_converged_steps,
        baseline_negative_samples: baseline_result.curve.negative_slope_samples(),
        timeless_negative_samples: timeless_metrics.negative_slope_samples,
    })
}

/// One row of the discretisation ablation (experiment E8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationRow {
    /// ΔH_max used (A/m).
    pub dh_max: f64,
    /// Integration method.
    pub integration: SlopeIntegration,
    /// Loop metrics of the resulting curve.
    pub metrics: LoopMetrics,
    /// Slope evaluations spent.
    pub slope_evaluations: u64,
}

/// Sweeps ΔH_max and the integration order over the Fig. 1 stimulus
/// (experiment E8) — a scenario per grid point on the direct backend.
///
/// # Errors
///
/// Propagates waveform or scenario errors.
pub fn discretisation_ablation(
    dh_max_values: &[f64],
    methods: &[SlopeIntegration],
) -> Result<Vec<AblationRow>, JaError> {
    let mut rows = Vec::with_capacity(dh_max_values.len() * methods.len());
    for &dh_max in dh_max_values {
        for &integration in methods {
            let config = JaConfig::default()
                .with_dh_max(dh_max)
                .with_integration(integration)
                .with_subdivision();
            // The excitation always advances in steps of dh_max so the model
            // updates on every sample, like the paper's DC sweep.
            let outcome = Scenario::new(
                format!("ablation/{integration:?}/dh{dh_max}"),
                JaParameters::date2006(),
                config,
                BackendKind::DirectTimeless,
                Excitation::major_loop(FIG1_H_PEAK, dh_max, 2)?,
            )
            .run()?;
            rows.push(AblationRow {
                dh_max,
                integration,
                metrics: outcome.full_metrics()?,
                slope_evaluations: outcome.stats.slope_evaluations,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_systemc_reproduces_figure_envelope() {
        let curve = fig1_systemc_curve(DEFAULT_STEP).unwrap();
        let metrics = loop_analysis::loop_metrics(&curve).unwrap();
        assert!(metrics.b_max.as_tesla() > 1.5 && metrics.b_max.as_tesla() < 2.3);
        assert!((metrics.h_max.value() - FIG1_H_PEAK).abs() < 1e-9);
        assert_eq!(metrics.negative_slope_samples, 0);
    }

    #[test]
    fn fig1_direct_matches_systemc_closely() {
        let systemc = fig1_systemc_curve(DEFAULT_STEP).unwrap();
        let direct = fig1_direct_curve(DEFAULT_STEP, JaConfig::default()).unwrap();
        assert_eq!(systemc.len(), direct.len());
        let max_diff = systemc
            .points()
            .iter()
            .zip(direct.points())
            .map(|(a, b)| (a.b.as_tesla() - b.b.as_tesla()).abs())
            .fold(0.0, f64::max);
        // Same technique, slightly different evaluation ordering: the two
        // must agree to a small fraction of B_sat.
        assert!(max_diff < 0.1, "max diff {max_diff} T");
    }

    #[test]
    fn equivalence_report_shows_near_identical_results() {
        let report = implementation_equivalence(DEFAULT_STEP).unwrap();
        assert!(
            report.relative_diff < 0.05,
            "relative diff {}",
            report.relative_diff
        );
        assert!(report.samples > 5_000);
        assert!(report.systemc_updates > 0);
        assert!(report.ams_updates > 0);
    }

    #[test]
    fn minor_loops_close_at_every_size_and_position() {
        let cases = minor_loop_study(&[0.0, 4_000.0], &[1_000.0, 3_000.0], 20.0).unwrap();
        assert_eq!(cases.len(), 4);
        for case in cases {
            // The paper's claim is numerical robustness ("no numerical
            // difficulties"): every loop must be produced without negative
            // slopes or divergence.  Small-amplitude loops legitimately
            // drift towards the anhysteretic over the first cycles
            // (accommodation), so the closure error is reported, not
            // bounded.
            assert_eq!(case.negative_slope_samples, 0, "{case:?}");
            assert!(case.loop_area.is_finite() && case.loop_area >= 0.0);
            assert!(case.closure_error.is_finite(), "{case:?}");
        }
    }

    #[test]
    fn clamping_study_shows_guard_effect() {
        let report = slope_clamping_study(DEFAULT_STEP).unwrap();
        assert_eq!(report.guarded_negative_samples, 0);
        assert!(report.clamped_events > 0);
        assert!(report.guarded_b_max > 1.5);
    }

    #[test]
    fn turning_point_comparison_runs_both_models() {
        let report = turning_point_comparison(2.0 / 4000.0, SolverMethod::BackwardEuler).unwrap();
        assert_eq!(report.timeless_negative_samples, 0);
        assert!(report.timeless_b_max > 1.5);
        assert!(report.baseline_newton_iterations > 0);
    }

    #[test]
    fn ablation_covers_requested_grid() {
        let rows = discretisation_ablation(
            &[10.0, 100.0],
            &[
                SlopeIntegration::ForwardEuler,
                SlopeIntegration::RungeKutta4,
            ],
        )
        .unwrap();
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert!(row.metrics.b_max.as_tesla() > 1.0, "{row:?}");
            assert!(row.slope_evaluations > 0);
            assert_eq!(row.metrics.negative_slope_samples, 0);
        }
    }
}
