//! Method processes and their execution context.

use crate::error::KernelError;
use crate::signal::{SignalId, SignalStore};
use crate::time::SimTime;
use crate::value::Value;

/// Identifier of a process within a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// The raw index of the process.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The view of the kernel a process body receives while it executes.
///
/// Mirrors what a SystemC method process can do: read signals, write
/// signals (visible after the next delta cycle), inspect the current time
/// and request a timed re-trigger of itself (`next_trigger`).
#[derive(Debug)]
pub struct ProcessContext<'a> {
    signals: &'a mut SignalStore,
    now: SimTime,
    wake_after: Option<SimTime>,
}

impl<'a> ProcessContext<'a> {
    pub(crate) fn new(signals: &'a mut SignalStore, now: SimTime) -> Self {
        Self {
            signals,
            now,
            wake_after: None,
        }
    }

    pub(crate) fn take_wake_request(&mut self) -> Option<SimTime> {
        self.wake_after.take()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Reads a signal's committed value.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    #[inline]
    pub fn read(&self, id: SignalId) -> Result<Value, KernelError> {
        self.signals.read(id)
    }

    /// Reads a real-valued signal.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] or
    /// [`KernelError::TypeMismatch`].
    #[inline]
    pub fn read_real(&self, id: SignalId) -> Result<f64, KernelError> {
        self.signals.read_real(id)
    }

    /// Reads a bit-valued signal.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] or
    /// [`KernelError::TypeMismatch`].
    #[inline]
    pub fn read_bit(&self, id: SignalId) -> Result<bool, KernelError> {
        self.signals.read_bit(id)
    }

    /// Reads an integer-valued signal.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] or
    /// [`KernelError::TypeMismatch`].
    #[inline]
    pub fn read_int(&self, id: SignalId) -> Result<i64, KernelError> {
        self.signals.read_int(id)
    }

    /// Writes a signal; the new value becomes visible after the next delta
    /// cycle.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    #[inline]
    pub fn write(&mut self, id: SignalId, value: Value) -> Result<(), KernelError> {
        self.signals.write(id, value)
    }

    /// Writes a real value (see [`write`](Self::write)).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    #[inline]
    pub fn write_real(&mut self, id: SignalId, value: f64) -> Result<(), KernelError> {
        self.signals.write(id, Value::Real(value))
    }

    /// Writes a bit value (see [`write`](Self::write)).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    #[inline]
    pub fn write_bit(&mut self, id: SignalId, value: bool) -> Result<(), KernelError> {
        self.signals.write(id, Value::Bit(value))
    }

    /// Writes an integer value (see [`write`](Self::write)).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    #[inline]
    pub fn write_int(&mut self, id: SignalId, value: i64) -> Result<(), KernelError> {
        self.signals.write(id, Value::Int(value))
    }

    /// Requests that this process be re-triggered `delay` after the current
    /// time, in addition to its static sensitivity (SystemC's
    /// `next_trigger(delay)`).
    pub fn wake_after(&mut self, delay: SimTime) {
        self.wake_after = Some(delay);
    }
}

/// The boxed body of a method process.
pub type ProcessBody = Box<dyn FnMut(&mut ProcessContext<'_>) -> Result<(), KernelError>>;

/// A registered method process.
pub struct Process {
    pub(crate) name: String,
    pub(crate) body: ProcessBody,
}

impl Process {
    /// Creates a process from a name and a body closure.
    pub fn new(
        name: impl Into<String>,
        body: impl FnMut(&mut ProcessContext<'_>) -> Result<(), KernelError> + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            body: Box::new(body),
        }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_reads_and_writes_are_delta_separated() {
        let mut store = SignalStore::new();
        let a = store.add("a", Value::Real(1.0));
        let mut ctx = ProcessContext::new(&mut store, SimTime::from_nanos(5));
        assert_eq!(ctx.now(), SimTime::from_nanos(5));
        assert_eq!(ctx.read_real(a).unwrap(), 1.0);
        ctx.write_real(a, 2.0).unwrap();
        // Still the old value inside the same evaluation.
        assert_eq!(ctx.read_real(a).unwrap(), 1.0);
        store.update_into(&mut Vec::new());
        assert_eq!(store.read(a).unwrap(), Value::Real(2.0));
    }

    #[test]
    fn context_typed_accessors() {
        let mut store = SignalStore::new();
        let b = store.add("b", Value::Bit(true));
        let i = store.add("i", Value::Int(7));
        let mut ctx = ProcessContext::new(&mut store, SimTime::ZERO);
        assert!(ctx.read_bit(b).unwrap());
        assert_eq!(ctx.read_int(i).unwrap(), 7);
        assert!(ctx.read_real(b).is_err());
        ctx.write_bit(b, false).unwrap();
        ctx.write_int(i, 9).unwrap();
        ctx.write(i, Value::Int(10)).unwrap();
        assert_eq!(ctx.read(i).unwrap(), Value::Int(7));
    }

    #[test]
    fn wake_request_is_captured() {
        let mut store = SignalStore::new();
        let mut ctx = ProcessContext::new(&mut store, SimTime::ZERO);
        assert!(ctx.take_wake_request().is_none());
        ctx.wake_after(SimTime::from_nanos(10));
        assert_eq!(ctx.take_wake_request(), Some(SimTime::from_nanos(10)));
        assert!(ctx.take_wake_request().is_none());
    }

    #[test]
    fn process_debug_and_name() {
        let p = Process::new("core", |_ctx| Ok(()));
        assert_eq!(p.name(), "core");
        assert!(format!("{p:?}").contains("core"));
    }
}
