//! Hand-rolled command-line option parsing.
//!
//! Each subcommand declares which option names are boolean flags and which
//! take a value; [`parse`] sorts the raw arguments into those buckets plus
//! positionals.  Values can be attached (`--step=50`) or separate
//! (`--step 50`).  Unknown options are usage errors — a typo must not
//! silently run a different experiment.

use std::collections::{BTreeMap, BTreeSet};

use crate::CliError;

/// Parsed arguments of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Parsed {
    flags: BTreeSet<String>,
    values: BTreeMap<String, String>,
    positionals: Vec<String>,
}

/// Sorts `args` into flags, valued options and positionals according to the
/// subcommand's accepted option lists (names without the `--` prefix).
///
/// # Errors
///
/// Usage error on an unknown option, a valued option without a value, or a
/// repeated option (repeating is reserved for config files, where an axis
/// is meant to accumulate — on the command line it is almost always a typo).
pub fn parse(args: &[String], flags: &[&str], valued: &[&str]) -> Result<Parsed, CliError> {
    let mut parsed = Parsed::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(stripped) = arg.strip_prefix("--") else {
            parsed.positionals.push(arg.clone());
            continue;
        };
        let (name, attached) = match stripped.split_once('=') {
            Some((name, value)) => (name, Some(value.to_owned())),
            None => (stripped, None),
        };
        if flags.contains(&name) {
            if attached.is_some() {
                return Err(CliError::usage(format!("--{name} does not take a value")));
            }
            if !parsed.flags.insert(name.to_owned()) {
                return Err(CliError::usage(format!("--{name} given twice")));
            }
        } else if valued.contains(&name) {
            let value = match attached {
                Some(value) => value,
                None => iter
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::usage(format!("--{name} requires a value")))?,
            };
            if parsed.values.insert(name.to_owned(), value).is_some() {
                return Err(CliError::usage(format!("--{name} given twice")));
            }
        } else {
            return Err(CliError::usage(format!("unknown option --{name}")));
        }
    }
    Ok(parsed)
}

impl Parsed {
    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The raw value of an option, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A required option's value.
    ///
    /// # Errors
    ///
    /// Usage error when the option is missing.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.value(name)
            .ok_or_else(|| CliError::usage(format!("--{name} is required")))
    }

    /// An `f64` option with a default.
    ///
    /// # Errors
    ///
    /// Usage error when the value does not parse as a finite number.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(text) => match text.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(v),
                _ => Err(CliError::usage(format!(
                    "--{name} expects a finite number, got `{text}`"
                ))),
            },
        }
    }

    /// A `usize` option with a default.
    ///
    /// # Errors
    ///
    /// Usage error when the value does not parse as a non-negative integer.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(text) => text.parse::<usize>().map_err(|_| {
                CliError::usage(format!(
                    "--{name} expects an unsigned integer, got `{text}`"
                ))
            }),
        }
    }

    /// Rejects stray positionals (all current subcommands are option-only).
    ///
    /// # Errors
    ///
    /// Usage error when positionals are present.
    pub fn no_positionals(&self) -> Result<(), CliError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(stray) => Err(CliError::usage(format!("unexpected argument `{stray}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_flags_values_and_positionals() {
        let parsed = parse(
            &args(&["--fig1", "--step", "50", "--out=report.json", "extra"]),
            &["fig1"],
            &["step", "out"],
        )
        .unwrap();
        assert!(parsed.flag("fig1"));
        assert!(!parsed.flag("other"));
        assert_eq!(parsed.value("step"), Some("50"));
        assert_eq!(parsed.value("out"), Some("report.json"));
        assert_eq!(parsed.positionals, ["extra"]);
        let err = parsed.no_positionals().unwrap_err();
        assert!(err.message.contains("extra"));
        assert_eq!(parsed.f64_or("step", 1.0).unwrap(), 50.0);
        assert_eq!(parsed.f64_or("missing", 1.5).unwrap(), 1.5);
        assert_eq!(parsed.require("out").unwrap(), "report.json");
    }

    #[test]
    fn rejects_unknown_repeated_and_malformed_options() {
        assert!(parse(&args(&["--nope"]), &[], &[]).is_err());
        assert!(parse(&args(&["--a", "--a"]), &["a"], &[]).is_err());
        assert!(parse(&args(&["--v", "1", "--v", "2"]), &[], &["v"]).is_err());
        assert!(parse(&args(&["--v"]), &[], &["v"]).is_err());
        assert!(parse(&args(&["--a=1"]), &["a"], &[]).is_err());
        let parsed = parse(&args(&["--v", "abc"]), &[], &["v"]).unwrap();
        assert!(parsed.f64_or("v", 0.0).is_err());
        assert!(parsed.usize_or("v", 0).is_err());
        let parsed = parse(&args(&["--v", "nan"]), &[], &["v"]).unwrap();
        assert!(parsed.f64_or("v", 0.0).is_err());
    }

    #[test]
    fn missing_required_option_is_a_usage_error() {
        let parsed = parse(&[], &[], &["config"]).unwrap();
        let err = parsed.require("config").unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--config"));
    }
}
