//! Property tests of the scheduler's event-ordering contract.
//!
//! The queue promises: events drain in ascending time order, and events
//! scheduled for the *same* time drain in insertion order (SystemC's
//! stable evaluation order).  The kernel-level consequence is that the
//! last same-time write to a signal wins — deterministically, for any
//! interleaving of scheduled writes.

use hdl_kernel::scheduler::{Event, EventQueue};
use hdl_kernel::{Kernel, SimTime, Value};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of (time-bucket, payload) pushes drains sorted by
    /// time, and payloads within one time bucket keep insertion order.
    #[test]
    fn same_time_events_drain_in_insertion_order(
        buckets in vec(0_usize..8, 1..64),
    ) {
        // Signal ids come from a kernel; a scratch one donates `sig`.
        let mut donor = Kernel::new();
        let sig = donor.add_signal("s", Value::Int(0));
        let mut queue = EventQueue::new();
        // Payload i records the insertion position, so the drained
        // sequence is checkable against the pushed one.
        for (i, &bucket) in buckets.iter().enumerate() {
            queue.push(
                SimTime::from_nanos(bucket as u64),
                Event::SignalWrite {
                    signal: sig,
                    value: Value::Int(i as i64),
                },
            );
        }
        prop_assert_eq!(queue.len(), buckets.len());

        let mut drained = Vec::new();
        while let Some(t) = queue.next_time() {
            let before = drained.len();
            queue.pop_into(t, &mut drained);
            // Every event at `t` comes out in one drain.
            prop_assert!(drained.len() > before);
            if let Some(next) = queue.next_time() {
                prop_assert!(next > t, "time buckets drain in ascending order");
            }
        }

        // Reconstruct the expected order: stable sort by bucket keeps
        // insertion order within a bucket — exactly the queue's contract.
        let mut expected: Vec<(usize, i64)> = buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, i as i64))
            .collect();
        expected.sort_by_key(|&(bucket, _)| bucket);
        let got: Vec<i64> = drained
            .iter()
            .map(|event| match event {
                Event::SignalWrite { value: Value::Int(i), .. } => *i,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        let want: Vec<i64> = expected.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(got, want);
    }

    /// Kernel-level consequence: when several writes target one signal at
    /// one timestamp, the last scheduled write is the committed value.
    #[test]
    fn last_same_time_write_wins(
        values in vec(0.0_f64..1000.0, 2..16),
    ) {
        let mut kernel = Kernel::new();
        let sig = kernel.add_signal("s", Value::Real(-1.0));
        let at = SimTime::from_micros(3);
        for &v in &values {
            kernel.schedule_write(at, sig, Value::Real(v));
        }
        kernel.run_until(at).expect("drain");
        let last = *values.last().expect("non-empty");
        prop_assert_eq!(kernel.read(sig).expect("read"), Value::Real(last));
    }
}
