//! Integration tests for experiments E3 (slope clamping) and E4
//! (turning-point stability against the solver-integrated baseline).

use ja_repro::hdl_models::ams::SolverMethod;
use ja_repro::hdl_models::comparison::{
    slope_clamping_study, turning_point_comparison, DEFAULT_STEP,
};

#[test]
fn guards_eliminate_negative_slopes_that_raw_ja_exhibits() {
    let report = slope_clamping_study(DEFAULT_STEP).expect("study runs");
    // The guarded (paper) model never produces a negative dB/dH sample...
    assert_eq!(report.guarded_negative_samples, 0);
    // ...even though the raw slope repeatedly went negative during the sweep
    // (those are the events the clamp absorbed).
    assert!(report.clamped_events > 0, "clamp was never exercised");
    // Both variants stay bounded; the guarded loop reaches a sensible B_max.
    assert!(report.guarded_b_max > 1.4 && report.guarded_b_max < 2.2);
    assert!(report.unguarded_b_max.is_finite());
}

#[test]
fn timeless_model_is_insensitive_to_sampling_rate_at_turning_points() {
    let mut b_max_values = Vec::new();
    for &dt in &[2.0 / 16_000.0, 2.0 / 4_000.0, 2.0 / 1_000.0] {
        let report =
            turning_point_comparison(dt, SolverMethod::BackwardEuler).expect("comparison runs");
        // The timeless model never produces unphysical samples, at any rate.
        assert_eq!(report.timeless_negative_samples, 0, "dt = {dt}");
        b_max_values.push(report.timeless_b_max);
    }
    // And its loop envelope barely moves across an 16x range of sampling
    // rates.
    let min = b_max_values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = b_max_values.iter().copied().fold(0.0_f64, f64::max);
    assert!(
        (max - min) / max < 0.15,
        "timeless B_max varies too much: {b_max_values:?}"
    );
}

#[test]
fn solver_baseline_degrades_as_the_time_step_grows() {
    let fine = turning_point_comparison(2.0 / 16_000.0, SolverMethod::BackwardEuler)
        .expect("fine comparison");
    let coarse = turning_point_comparison(2.0 / 500.0, SolverMethod::BackwardEuler)
        .expect("coarse comparison");

    // At a fine step the baseline tracks the timeless model reasonably well.
    assert!(
        fine.baseline_shape_error < 0.05,
        "fine-step baseline should agree: {fine:?}"
    );
    // At the coarse step the time-based integration shows its turning-point
    // weakness: the loop shape degrades (tip truncation / overshoot grows
    // relative to the fine run), and/or the Newton iteration starts failing.
    let degraded = coarse.baseline_shape_error > 2.0 * fine.baseline_shape_error
        || coarse.baseline_non_converged > 0
        || coarse.baseline_negative_samples > fine.baseline_negative_samples;
    assert!(
        degraded,
        "coarse baseline unexpectedly clean: fine {fine:?} vs coarse {coarse:?}"
    );
    // The timeless model, fed the identical coarse sampling, stays clean.
    assert_eq!(coarse.timeless_negative_samples, 0);
}
