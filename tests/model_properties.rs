//! Cross-crate property-based tests: physical invariants of the timeless
//! model under randomly generated excitations and materials.

use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::ja_hysteresis::model::JilesAtherton;
use ja_repro::ja_hysteresis::sweep::sweep_schedule;
use ja_repro::magnetics::constants::MU0;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::magnetics::units::Magnetisation;
use ja_repro::waveform::schedule::FieldSchedule;
use proptest::prelude::*;

fn arbitrary_material() -> impl Strategy<Value = JaParameters> {
    (
        5.0e5_f64..2.0e6,    // m_sat
        200.0_f64..5_000.0,  // a
        500.0_f64..20_000.0, // k
        1.0e-4_f64..5.0e-3,  // alpha
        0.01_f64..0.8,       // c
    )
        .prop_map(|(m_sat, a, k, alpha, c)| {
            JaParameters::builder()
                .m_sat(Magnetisation::new(m_sat))
                .a(a)
                .a2(a * 1.75)
                .k(k)
                .alpha(alpha)
                .c(c)
                .build()
                .expect("generated parameters are in range")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// |M| never exceeds M_sat and B never exceeds µ0(|H| + M_sat), for any
    /// material in the physical range and any major-loop excitation.
    #[test]
    fn magnetisation_is_bounded_for_random_materials(
        params in arbitrary_material(),
        peak in 2_000.0_f64..30_000.0,
        step in 5.0_f64..100.0,
    ) {
        let mut model = JilesAtherton::new(params).expect("valid material");
        let schedule = FieldSchedule::major_loop(peak, step, 2).expect("valid schedule");
        let result = sweep_schedule(&mut model, &schedule).expect("sweep");
        let m_sat = params.m_sat.value();
        for p in result.curve().points() {
            prop_assert!(p.m.value().abs() <= m_sat * (1.0 + 1e-6));
            let b_bound = MU0 * (p.h.value().abs() + m_sat) * (1.0 + 1e-6);
            prop_assert!(p.b.as_tesla().abs() <= b_bound);
        }
    }

    /// The guarded model never produces a negative differential permeability
    /// sample, for any excitation shape built from nested minor loops.
    #[test]
    fn no_negative_slope_for_random_minor_loop_patterns(
        peak in 5_000.0_f64..20_000.0,
        fractions in proptest::collection::vec(0.1_f64..0.9, 1..4),
        step in 5.0_f64..50.0,
    ) {
        let amplitudes: Vec<f64> = fractions.iter().map(|f| f * peak).collect();
        let schedule = FieldSchedule::nested_minor_loops(peak, &amplitudes, step)
            .expect("valid schedule");
        let mut model = JilesAtherton::new(JaParameters::date2006()).expect("valid material");
        let result = sweep_schedule(&mut model, &schedule).expect("sweep");
        prop_assert_eq!(result.curve().negative_slope_samples(), 0);
    }

    /// Scaling ΔH_max between 5 and 50 A/m changes the loop envelope only
    /// marginally — the discretisation is robust to its one tuning knob.
    #[test]
    fn loop_envelope_is_stable_against_dh_max(step in 5.0_f64..50.0) {
        let reference = {
            let mut model = JilesAtherton::with_config(
                JaParameters::date2006(),
                JaConfig::default().with_dh_max(5.0),
            ).expect("valid");
            let schedule = FieldSchedule::major_loop(10_000.0, 5.0, 2).expect("schedule");
            sweep_schedule(&mut model, &schedule).expect("sweep")
                .curve().peak_flux_density().expect("peak").as_tesla()
        };
        let mut model = JilesAtherton::with_config(
            JaParameters::date2006(),
            JaConfig::default().with_dh_max(step),
        ).expect("valid");
        let schedule = FieldSchedule::major_loop(10_000.0, step, 2).expect("schedule");
        let b = sweep_schedule(&mut model, &schedule).expect("sweep")
            .curve().peak_flux_density().expect("peak").as_tesla();
        prop_assert!((b - reference).abs() / reference < 0.1,
            "B_max {b} vs reference {reference} at dh_max {step}");
    }
}

#[test]
fn demagnetisation_returns_the_core_near_the_origin() {
    let mut model = JilesAtherton::new(JaParameters::date2006()).expect("valid");
    sweep_schedule(
        &mut model,
        &FieldSchedule::major_loop(10_000.0, 10.0, 1).expect("schedule"),
    )
    .expect("magnetising sweep");
    let before = model.flux_density().as_tesla();
    sweep_schedule(
        &mut model,
        &FieldSchedule::demagnetisation(10_000.0, 20.0, 0.9, 10.0).expect("schedule"),
    )
    .expect("demagnetisation sweep");
    let after = model.flux_density().as_tesla();
    assert!(before > 0.5);
    assert!(
        after.abs() < before * 0.35,
        "after = {after} T (before {before} T)"
    );
}
